"""End-to-end automated cheating campaigns (§3.3-§3.4).

Composes the pieces the way an attacker would: crawl intelligence
(:mod:`repro.attack.targeting`) picks victims, a greedy nearest-neighbour
route keeps inter-venue distances (and therefore the T = D x 5 min waits)
small, the scheduler enforces the cheater-code-safe envelope, and any
spoofing channel executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.attack.scheduler import CheckInScheduler, ExecutionReport
from repro.attack.spoofing import SpoofingChannel
from repro.attack.targeting import TargetVenue
from repro.attack.tour import PlannedTour, TourStop
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m
from repro.simnet.clock import SECONDS_PER_DAY, SimClock


def greedy_route(
    targets: Sequence[TargetVenue], start: Optional[GeoPoint] = None
) -> List[TargetVenue]:
    """Order targets by repeated nearest-neighbour hops.

    Minimising hop distance minimises total schedule time, because the
    scheduler's wait grows linearly with distance (T = D x 5 minutes).
    """
    remaining = list(targets)
    if not remaining:
        return []
    route: List[TargetVenue] = []
    if start is None:
        current = remaining.pop(0)
        route.append(current)
        position = GeoPoint(current.latitude, current.longitude)
    else:
        position = start
    while remaining:
        best_index = min(
            range(len(remaining)),
            key=lambda i: haversine_m(
                position,
                GeoPoint(remaining[i].latitude, remaining[i].longitude),
            ),
        )
        nxt = remaining.pop(best_index)
        route.append(nxt)
        position = GeoPoint(nxt.latitude, nxt.longitude)
    return route


def tour_from_targets(targets: Sequence[TargetVenue]) -> PlannedTour:
    """Wrap explicit targets as a tour (no snapping: these ARE the venues)."""
    tour = PlannedTour()
    for target in targets:
        location = GeoPoint(target.latitude, target.longitude)
        tour.stops.append(
            TourStop(
                intended=location,
                venue_id=target.venue_id,
                venue_location=location,
            )
        )
    return tour


@dataclass
class CampaignReport:
    """Aggregate result of a multi-phase campaign."""

    phases: List[ExecutionReport] = field(default_factory=list)

    @property
    def attempts(self) -> int:
        """Total check-in attempts across phases."""
        return sum(phase.attempts for phase in self.phases)

    @property
    def rewarded(self) -> int:
        """Total rewarded check-ins across phases."""
        return sum(phase.rewarded for phase in self.phases)

    @property
    def detected(self) -> int:
        """Total flagged/rejected attempts across phases."""
        return sum(phase.detected for phase in self.phases)

    @property
    def mayorships_won(self) -> int:
        """Total crowns captured across phases."""
        return sum(phase.mayorships_won for phase in self.phases)

    @property
    def specials(self) -> List[str]:
        """All real-world rewards unlocked across phases."""
        collected: List[str] = []
        for phase in self.phases:
            collected.extend(phase.specials)
        return collected


class CheatingCampaign:
    """Drives one attacker account through multi-day cheating operations."""

    def __init__(
        self,
        clock: SimClock,
        channel: SpoofingChannel,
        scheduler: Optional[CheckInScheduler] = None,
    ) -> None:
        self.clock = clock
        self.channel = channel
        # Reusing a scheduler carries over its last-check-in position, so a
        # campaign chained after a tour stays speed-plausible end to end.
        self.scheduler = scheduler or CheckInScheduler(clock)

    def harvest(
        self,
        targets: Sequence[TargetVenue],
        start: Optional[GeoPoint] = None,
    ) -> ExecutionReport:
        """Sweep a target list once, in greedy nearest-neighbour order.

        For mayor-less venues a single valid check-in wins the mayorship
        on the spot, so one sweep is the whole §3.4 harvest.
        """
        if not targets:
            raise ReproError("no targets to harvest")
        route = greedy_route(targets, start=start)
        tour = tour_from_targets(route)
        schedule = self.scheduler.build(tour)
        return self.scheduler.execute(schedule, self.channel)

    def mayorship_denial(
        self,
        victim_venues: Sequence[TargetVenue],
        days: int,
    ) -> CampaignReport:
        """Attack a victim's mayorships by out-daying them (§3.4).

        Checks into every victim venue once per day for ``days`` days.
        The mayorship rule counts distinct days, so after exceeding the
        victim's recent day-count at each venue, each crown transfers.
        """
        if days < 1:
            raise ReproError(f"days must be >= 1: {days}")
        if not victim_venues:
            raise ReproError("victim holds no attackable venues")
        report = CampaignReport()
        route = greedy_route(list(victim_venues))
        tour = tour_from_targets(route)
        for day in range(days):
            day_start = self.clock.now()
            schedule = self.scheduler.build(tour)
            report.phases.append(self.scheduler.execute(schedule, self.channel))
            next_day = day_start + SECONDS_PER_DAY
            if day < days - 1 and self.clock.now() < next_day:
                self.clock.advance_to(next_day)
        return report

    def maintain_mayorships(
        self, targets: Sequence[TargetVenue], days: int
    ) -> CampaignReport:
        """Keep checking in daily so nobody can take the crowns back.

        §2.1: "if an attacker got the mayorship of this venue and kept
        checking in to it every day, no other user can get the mayorship
        from the attacker."  Mechanically identical to denial — the point
        is the incumbent-retention property it exploits.
        """
        return self.mayorship_denial(targets, days)
