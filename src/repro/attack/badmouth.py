"""The §2.2 badmouthing attack: remote reputation sabotage.

"A business owner may use location cheating to check into a competing
business, and badmouth that business by leaving negative comments."

Tips require a valid check-in at the venue — a gate that means nothing to
a location cheater.  The campaign spoofs a cheater-code-safe check-in at
each competitor, then posts the negative comment from an account that, to
every reader, "was really there".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.attack.campaign import greedy_route, tour_from_targets
from repro.attack.scheduler import CheckInScheduler
from repro.attack.spoofing import SpoofingChannel
from repro.attack.targeting import TargetVenue
from repro.errors import ReproError, ServiceError
from repro.lbsn.service import LbsnService

#: Stock negative comments a sabotage campaign rotates through.
DEFAULT_SMEARS = (
    "Terrible service, waited forever.",
    "Found a hair in my food. Never again.",
    "Way overpriced for what you get.",
    "The place was filthy. Avoid.",
    "Rude staff, cold coffee.",
)

TextPicker = Callable[[TargetVenue, int], str]


def _default_texts(target: TargetVenue, index: int) -> str:
    return DEFAULT_SMEARS[index % len(DEFAULT_SMEARS)]


@dataclass
class BadmouthReport:
    """What the sabotage run accomplished."""

    checkins_attempted: int = 0
    checkins_rewarded: int = 0
    detected: int = 0
    tips_posted: int = 0
    tips_refused: int = 0
    posted_texts: List[str] = field(default_factory=list)


class BadmouthCampaign:
    """Spoofed check-ins plus negative tips at competitor venues."""

    def __init__(
        self,
        service: LbsnService,
        channel: SpoofingChannel,
        author_user_id: int,
        scheduler: Optional[CheckInScheduler] = None,
    ) -> None:
        self.service = service
        self.channel = channel
        self.author_user_id = author_user_id
        self.scheduler = scheduler or CheckInScheduler(service.clock)

    def smear(
        self,
        competitors: Sequence[TargetVenue],
        text_picker: TextPicker = _default_texts,
    ) -> BadmouthReport:
        """Check into each competitor (safely spaced) and leave a tip."""
        if not competitors:
            raise ReproError("no competitor venues to badmouth")
        report = BadmouthReport()
        route = greedy_route(list(competitors))
        tour = tour_from_targets(route)
        schedule = self.scheduler.build(tour)
        for index, entry in enumerate(schedule):
            if entry.fire_at > self.service.clock.now():
                self.service.clock.advance_to(entry.fire_at)
            self.channel.set_location(entry.location)
            outcome = self.channel.check_in(entry.venue_id)
            report.checkins_attempted += 1
            if outcome.rewarded:
                report.checkins_rewarded += 1
            else:
                report.detected += 1
            text = text_picker(route[index], index)
            try:
                self.service.post_tip(
                    self.author_user_id, entry.venue_id, text
                )
                report.tips_posted += 1
                report.posted_texts.append(text)
            except ServiceError:
                # No valid check-in landed here; the tip gate held.
                report.tips_refused += 1
        return report
