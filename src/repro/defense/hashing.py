"""Hiding profile information without destroying usability (§5.2).

"The service provider may use the hash function to hide necessary
information (such as user IDs in the recent check-in list)."  The site
still *shows* that recent visitors exist (usability preserved: a visitor
can be messaged through the token), but a crawler can no longer join
RecentCheckin rows to user profiles — starving the Fig 4.1/4.3 analyses
and the §3.4 victim-targeting queries.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Callable, Optional

from repro.errors import DefenseError


def hashed_visitor_obfuscator(
    secret: bytes, digest_chars: int = 12
) -> Callable[[int], str]:
    """An HMAC-based token function for the webserver's visitor lists.

    Keyed hashing matters: a plain unsalted hash of a numeric ID falls to
    trivial brute force over the (public, dense) ID space.  With a server
    secret, tokens reveal nothing and cannot be precomputed.
    """
    if not secret:
        raise DefenseError("obfuscation secret must be non-empty")
    if digest_chars < 8:
        raise DefenseError(
            f"digest too short to resist collisions: {digest_chars}"
        )

    def obfuscate(user_id: int) -> str:
        mac = hmac.new(secret, str(user_id).encode(), hashlib.sha256)
        return "v_" + mac.hexdigest()[:digest_chars]

    return obfuscate


def unsalted_visitor_obfuscator(digest_chars: int = 12) -> Callable[[int], str]:
    """The *broken* variant: an unkeyed hash of the user ID.

    Provided so tests/benches can demonstrate why the salt matters: an
    attacker who knows the scheme precomputes the token of every ID.
    """

    def obfuscate(user_id: int) -> str:
        digest = hashlib.sha256(str(user_id).encode()).hexdigest()
        return "v_" + digest[:digest_chars]

    return obfuscate


def crack_unsalted_token(
    token: str, max_user_id: int, digest_chars: int = 12
) -> Optional[int]:
    """Brute-force an unsalted token over the dense ID space.

    Succeeds in O(max_user_id) — the demonstration that unkeyed hashing is
    not a defense when the ID space is small and public.
    """
    for user_id in range(1, max_user_id + 1):
        digest = hashlib.sha256(str(user_id).encode()).hexdigest()
        if "v_" + digest[:digest_chars] == token:
            return user_id
    return None
