"""Access control for crawling (§5.2).

Two mechanisms the thesis proposes, implemented as transport middleware:

* **Login gating** — profile pages require a session; anonymous bulk
  access dies immediately, and per-account request budgets make logged-in
  crawling traceable and cheap to revoke.
* **Rate limiting + IP blocking** — a sliding-window request-rate detector
  plus a sequential-ID enumeration detector; offending IPs are blocked.
  Blocking a NAT hurts "a few hosts" (Casado & Freedman), which the
  collateral accounting here exposes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.simnet.http import (
    HTTP_FORBIDDEN,
    HTTP_TOO_MANY_REQUESTS,
    HTTP_UNAUTHORIZED,
    HttpRequest,
    HttpResponse,
)
from repro.simnet.network import Network

#: Paths the defenses guard (profile pages — the crawl surface).
_PROFILE_PREFIXES = ("/user/", "/venue/")


def _is_profile_path(path: str) -> bool:
    return path.startswith(_PROFILE_PREFIXES)


class SessionRegistry:
    """Login sessions for the login-gating middleware."""

    def __init__(self) -> None:
        self._sessions: Dict[str, int] = {}
        self._counter = 0
        self._lock = threading.Lock()

    def login(self, user_id: int) -> str:
        """Issue a session token for an account."""
        with self._lock:
            self._counter += 1
            token = f"session-{user_id}-{self._counter}"
            self._sessions[token] = user_id
            return token

    def resolve(self, token: str) -> Optional[int]:
        """The account behind a session token."""
        with self._lock:
            return self._sessions.get(token)

    def revoke(self, token: str) -> bool:
        """Kill a session."""
        with self._lock:
            return self._sessions.pop(token, None) is not None


@dataclass
class LoginGateStats:
    """What the login gate saw."""

    anonymous_denied: int = 0
    over_budget_denied: int = 0
    allowed: int = 0


class LoginGate:
    """Middleware: profile pages require a session + per-account budget.

    "If a user must login to view the publicly available profile pages,
    it's easier to detect the crawling users and block them."
    """

    def __init__(
        self,
        sessions: SessionRegistry,
        per_account_budget: Optional[int] = 1_000,
    ) -> None:
        self.sessions = sessions
        self.per_account_budget = per_account_budget
        self.stats = LoginGateStats()
        self._usage: Dict[int, int] = {}
        self._lock = threading.Lock()

    def __call__(self, request: HttpRequest) -> Optional[HttpResponse]:
        if not _is_profile_path(request.path):
            return None
        token = request.header("X-Session")
        user_id = self.sessions.resolve(token) if token else None
        if user_id is None:
            with self._lock:
                self.stats.anonymous_denied += 1
            return HttpResponse(
                status=HTTP_UNAUTHORIZED, body="login required"
            )
        with self._lock:
            used = self._usage.get(user_id, 0) + 1
            self._usage[user_id] = used
            if (
                self.per_account_budget is not None
                and used > self.per_account_budget
            ):
                self.stats.over_budget_denied += 1
                return HttpResponse(
                    status=HTTP_TOO_MANY_REQUESTS,
                    body="account request budget exhausted",
                )
            self.stats.allowed += 1
        return None


@dataclass
class RateLimiterConfig:
    """Detection thresholds."""

    #: Sliding window length (wall-clock seconds — crawler speed is a
    #: real-time property of the client, not of simulated time).
    window_s: float = 2.0
    #: Requests per window that trigger a block.
    max_requests_per_window: int = 60
    #: Length of a strictly ascending profile-ID run that marks an
    #: enumeration crawler regardless of speed.
    enumeration_run_length: int = 150


@dataclass
class RateLimiterStats:
    """What the rate limiter did."""

    blocked_ips: Set[str] = field(default_factory=set)
    denied_requests: int = 0
    rate_triggers: int = 0
    enumeration_triggers: int = 0

    def collateral_clients(self, network: Network) -> int:
        """Honest clients sharing blocked egresses (NAT collateral)."""
        from repro.simnet.network import IpAddress

        total = 0
        for ip in self.blocked_ips:
            egress = network.egress_for_ip(IpAddress(ip))
            if egress is not None:
                total += max(0, len(egress.clients) - 1)
        return total


class IpRateLimiter:
    """Middleware: sliding-window rate + ID-enumeration detection."""

    def __init__(self, config: Optional[RateLimiterConfig] = None) -> None:
        self.config = config or RateLimiterConfig()
        self.stats = RateLimiterStats()
        self._windows: Dict[str, Deque[float]] = {}
        self._last_id: Dict[str, int] = {}
        self._run_length: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _extract_profile_id(self, path: str) -> Optional[int]:
        if not _is_profile_path(path):
            return None
        tail = path.rsplit("/", 1)[-1]
        return int(tail) if tail.isdigit() else None

    def __call__(self, request: HttpRequest) -> Optional[HttpResponse]:
        if not _is_profile_path(request.path):
            return None
        now = time.monotonic()
        ip = request.client_ip
        with self._lock:
            if ip in self.stats.blocked_ips:
                self.stats.denied_requests += 1
                return HttpResponse(status=HTTP_FORBIDDEN, body="blocked")

            window = self._windows.setdefault(ip, deque())
            window.append(now)
            cutoff = now - self.config.window_s
            while window and window[0] < cutoff:
                window.popleft()
            if len(window) > self.config.max_requests_per_window:
                self.stats.blocked_ips.add(ip)
                self.stats.rate_triggers += 1
                self.stats.denied_requests += 1
                return HttpResponse(
                    status=HTTP_TOO_MANY_REQUESTS, body="rate limited"
                )

            profile_id = self._extract_profile_id(request.path)
            if profile_id is not None:
                last = self._last_id.get(ip)
                if last is not None and profile_id == last + 1:
                    self._run_length[ip] = self._run_length.get(ip, 1) + 1
                else:
                    self._run_length[ip] = 1
                self._last_id[ip] = profile_id
                if (
                    self._run_length[ip]
                    >= self.config.enumeration_run_length
                ):
                    self.stats.blocked_ips.add(ip)
                    self.stats.enumeration_triggers += 1
                    self.stats.denied_requests += 1
                    return HttpResponse(
                        status=HTTP_FORBIDDEN,
                        body="sequential enumeration detected",
                    )
        return None

    def unblock(self, ip: str) -> bool:
        """Lift a block (appeals / collateral remediation)."""
        with self._lock:
            if ip in self.stats.blocked_ips:
                self.stats.blocked_ips.discard(ip)
                self._windows.pop(ip, None)
                self._run_length.pop(ip, None)
                return True
            return False
