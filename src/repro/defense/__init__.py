"""Chapter-5 countermeasures: location verification and crawl control."""

from repro.defense.address_mapping import (
    AddressMappingConfig,
    AddressMappingVerifier,
)
from repro.defense.crawl_control import (
    IpRateLimiter,
    LoginGate,
    LoginGateStats,
    RateLimiterConfig,
    RateLimiterStats,
    SessionRegistry,
)
from repro.defense.distance_bounding import (
    SPEED_OF_LIGHT_MPS,
    DistanceBoundingConfig,
    DistanceBoundingVerifier,
)
from repro.defense.evaluator import (
    DEPLOYMENT_NOTES,
    ClaimWorkload,
    VerifierEvaluation,
    evaluate_verifiers,
    format_evaluation_table,
)
from repro.defense.hashing import (
    crack_unsalted_token,
    hashed_visitor_obfuscator,
    unsalted_visitor_obfuscator,
)
from repro.defense.verifier import (
    InstrumentedVerifier,
    LocationClaim,
    LocationVerifier,
    VerificationOutcome,
    VerificationResult,
)
from repro.defense.wifi_verification import (
    DEFAULT_RADIO_RANGE_M,
    VenueRouter,
    WifiVerificationService,
    deploy_routers,
)

__all__ = [
    "AddressMappingConfig",
    "AddressMappingVerifier",
    "IpRateLimiter",
    "LoginGate",
    "LoginGateStats",
    "RateLimiterConfig",
    "RateLimiterStats",
    "SessionRegistry",
    "SPEED_OF_LIGHT_MPS",
    "DistanceBoundingConfig",
    "DistanceBoundingVerifier",
    "DEPLOYMENT_NOTES",
    "ClaimWorkload",
    "VerifierEvaluation",
    "evaluate_verifiers",
    "format_evaluation_table",
    "crack_unsalted_token",
    "hashed_visitor_obfuscator",
    "unsalted_visitor_obfuscator",
    "InstrumentedVerifier",
    "LocationClaim",
    "LocationVerifier",
    "VerificationOutcome",
    "VerificationResult",
    "DEFAULT_RADIO_RANGE_M",
    "VenueRouter",
    "WifiVerificationService",
    "deploy_routers",
]

from repro.defense.integration import (
    RULE_LOCATION_VERIFIER,
    RULE_STREAM_SUSPECT,
    DefendedLbsnService,
    DefenseStats,
    DeviceRegistry,
    registry_locator,
)

__all__ += [
    "RULE_LOCATION_VERIFIER",
    "RULE_STREAM_SUSPECT",
    "DefendedLbsnService",
    "DefenseStats",
    "DeviceRegistry",
    "registry_locator",
]

from repro.defense.honeypot import (
    RULE_HONEYPOT,
    HoneypotFlag,
    HoneypotRegistry,
)

__all__ += [
    "RULE_HONEYPOT",
    "HoneypotFlag",
    "HoneypotRegistry",
]
