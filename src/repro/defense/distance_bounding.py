"""Distance bounding (§5.1): the most accurate — and most expensive — defense.

A verifier deployed at the venue runs timed challenge-response rounds with
the device.  Radio propagates at the speed of light, so the round-trip time
upper-bounds the device's distance; no amount of GPS spoofing changes
physics.  The thesis's comparison: "provides the most accurate location
data, and it can be used anywhere, but it is difficult to implement and has
the highest cost" (a verifier must be installed per venue).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.defense.verifier import (
    LocationClaim,
    VerificationOutcome,
    VerificationResult,
)
from repro.errors import DefenseError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m

#: Speed of light in m/s — the physical constant the protocol leans on.
SPEED_OF_LIGHT_MPS = 299_792_458.0


@dataclass
class DistanceBoundingConfig:
    """Protocol parameters."""

    #: Accept claims bounded within this distance of the venue.
    max_distance_m: float = 250.0
    #: Challenge-response rounds; the minimum RTT over all rounds is used
    #: (processing jitter only ever inflates RTT, so min is the tightest
    #: honest bound).
    rounds: int = 16
    #: Device processing delay floor/ceiling per round, seconds.  At the
    #: speed of light 1 us of unaccounted jitter inflates the bound by
    #: 150 m, so real protocols demand tight response clocks; these values
    #: keep typical inflation well under ``max_distance_m``.
    processing_min_s: float = 1e-6
    processing_max_s: float = 3e-6


class DistanceBoundingVerifier:
    """A venue-side verifier running the timed protocol."""

    name = "distance-bounding"

    def __init__(
        self,
        config: Optional[DistanceBoundingConfig] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or DistanceBoundingConfig()
        if self.config.rounds < 1:
            raise DefenseError("need at least one protocol round")
        self._rng = random.Random(seed)

    def measure_rtt_s(self, verifier_at: GeoPoint, device_at: GeoPoint) -> float:
        """One round's round-trip time: flight both ways plus processing."""
        distance = haversine_m(verifier_at, device_at)
        flight = 2.0 * distance / SPEED_OF_LIGHT_MPS
        processing = self._rng.uniform(
            self.config.processing_min_s, self.config.processing_max_s
        )
        return flight + processing

    def bound_distance_m(
        self, verifier_at: GeoPoint, device_at: GeoPoint
    ) -> float:
        """The distance upper bound after all rounds.

        Subtracts only the *guaranteed* processing floor, so the bound is
        conservative (never below the true distance).
        """
        best_rtt = min(
            self.measure_rtt_s(verifier_at, device_at)
            for _ in range(self.config.rounds)
        )
        corrected = max(0.0, best_rtt - self.config.processing_min_s)
        return corrected * SPEED_OF_LIGHT_MPS / 2.0

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Run the protocol between the venue and the physical device."""
        bound = self.bound_distance_m(
            claim.venue_location, claim.physical_location
        )
        if bound <= self.config.max_distance_m:
            return VerificationResult(
                outcome=VerificationOutcome.ACCEPT,
                estimated_distance_m=bound,
                detail=f"bounded within {bound:.0f} m",
            )
        return VerificationResult(
            outcome=VerificationOutcome.REJECT,
            estimated_distance_m=bound,
            detail=(
                f"device provably >= {bound:.0f} m away "
                f"(limit {self.config.max_distance_m:.0f} m)"
            ),
        )
