"""IP address mapping (§5.1): cheapest, least accurate verification.

Geolocate the client's IP and compare against the claimed venue.  The
thesis's caveats are modeled explicitly: "mobile phones may access the
Internet from nonlocal IP addresses, and the IP addresses can be changed
dynamically" — a phone in Lincoln may egress through its carrier's gateway
in Omaha or further, so the tolerance must be loose, and unmapped IPs are
inconclusive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.defense.verifier import (
    LocationClaim,
    VerificationOutcome,
    VerificationResult,
)
from repro.geo.distance import haversine_m
from repro.simnet.network import GeoIpRegistry, IpAddress


@dataclass
class AddressMappingConfig:
    """Tolerances of the IP-mapping check."""

    #: Accept when the IP geolocates within this distance of the claim.
    #: Loose by necessity: carrier gateways sit whole metros away.
    tolerance_m: float = 150_000.0
    #: What to do when the IP is not in the database.
    reject_unmapped: bool = False


class AddressMappingVerifier:
    """Judges claims against a GeoIP registry."""

    name = "address-mapping"

    def __init__(
        self,
        geoip: GeoIpRegistry,
        config: Optional[AddressMappingConfig] = None,
    ) -> None:
        self.geoip = geoip
        self.config = config or AddressMappingConfig()

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Geolocate the claim's IP and compare against the venue."""
        if not claim.client_ip:
            return self._unmapped("no client IP on claim")
        located = self.geoip.locate(IpAddress(claim.client_ip))
        if located is None:
            return self._unmapped(f"IP {claim.client_ip} not in database")
        distance = haversine_m(located, claim.claimed_location)
        if distance <= self.config.tolerance_m:
            return VerificationResult(
                outcome=VerificationOutcome.ACCEPT,
                estimated_distance_m=distance,
                detail=f"IP maps {distance / 1000.0:.0f} km from claim",
            )
        return VerificationResult(
            outcome=VerificationOutcome.REJECT,
            estimated_distance_m=distance,
            detail=(
                f"IP maps {distance / 1000.0:.0f} km from claim "
                f"(tolerance {self.config.tolerance_m / 1000.0:.0f} km)"
            ),
        )

    def _unmapped(self, detail: str) -> VerificationResult:
        outcome = (
            VerificationOutcome.REJECT
            if self.config.reject_unmapped
            else VerificationOutcome.INCONCLUSIVE
        )
        return VerificationResult(outcome=outcome, detail=detail)
