"""Inline defense deployment: location verifiers in the check-in pipeline.

Chapter 5 proposes the verification techniques; this module answers the
operational question the thesis leaves open — *what happens when a provider
actually turns one on?* — by wedging a :class:`LocationVerifier` between
GPS verification and the cheater code.  The service then no longer trusts
the reported coordinates alone: the verifier senses its side channel
(physics or IP), and a rejected claim is refused before any reward logic
runs.

The simulated "physical side channel" needs to know where the checking-in
device really is, which the honest service never learns from the request.
Deployments therefore register a ``physical_locator`` per user — in
reality the verifier infrastructure (router, bounding hardware) measures
this; in the simulation we look it up from the device registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.defense.verifier import (
    InstrumentedVerifier,
    LocationClaim,
    LocationVerifier,
    VerificationOutcome,
)
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInResult, CheckInStatus
from repro.lbsn.service import LbsnService
from repro.obs.context import TraceContext, current_trace, use_trace
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry

#: Reason string recorded when an inline verifier refuses a check-in.
RULE_LOCATION_VERIFIER = "location-verifier"

#: Reason string recorded when the live suspicion ledger refuses a user.
RULE_STREAM_SUSPECT = "stream-suspicion-ledger"

PhysicalLocator = Callable[[int], Optional[GeoPoint]]


@dataclass
class DefenseStats:
    """What the inline defense did."""

    verified: int = 0
    refused: int = 0
    inconclusive: int = 0
    unlocatable: int = 0
    #: Check-ins refused because the online ledger already flags the user.
    ledger_refused: int = 0

    @property
    def total(self) -> int:
        """All claims the defense saw."""
        return (
            self.verified
            + self.refused
            + self.inconclusive
            + self.unlocatable
            + self.ledger_refused
        )


class DeviceRegistry:
    """Maps user accounts to the physical position of their device.

    Stands in for whatever the real verifier senses (radio proximity,
    challenge-response timing).  Attack channels can't update it — that is
    the point: spoofing changes what the *client reports*, not where the
    device *is*.
    """

    def __init__(self) -> None:
        self._positions: Dict[int, GeoPoint] = {}

    def place(self, user_id: int, location: GeoPoint) -> None:
        """Record where a user's device physically is."""
        self._positions[user_id] = location

    def locate(self, user_id: int) -> Optional[GeoPoint]:
        """The device's physical position, or None if never seen."""
        return self._positions.get(user_id)


class DefendedLbsnService:
    """An :class:`LbsnService` wrapper enforcing a location verifier.

    Check-ins flow through ``check_in`` exactly like the raw service, but
    a claim the verifier REJECTS is refused outright (no record, no
    rewards).  INCONCLUSIVE outcomes follow ``refuse_inconclusive``.

    When a live :class:`~repro.stream.ledger.SuspicionLedger` is attached
    (``suspicion_ledger=``), its online verdicts feed the defense too: a
    user the ledger currently reports is refused before the verifier even
    runs — the Chapter-4 detector promoted from forensic tool to inline
    gate, with no offline re-crawl.

    With a :class:`~repro.obs.MetricsRegistry` (``metrics=``) the wrapper
    wraps its verifier in an :class:`~repro.defense.verifier.
    InstrumentedVerifier` (per-defense verdict counters + check-latency
    histogram) and exports what the *defense itself* did as
    ``repro_defense_actions_total{action}``.  With a
    :class:`~repro.obs.log.LogHub` (``log=``) every refusal emits one
    ``defense.refused`` record on the ``defense`` logger.  The wrapper is
    also a trace root: each ``check_in`` adopts the ambient
    :class:`~repro.obs.context.TraceContext` or mints one, and runs the
    whole verify → delegate chain under it — so the defense verdict, the
    service's ``checkin`` record, and every downstream bus event share a
    ``trace_id``.
    """

    #: Actions tallied into ``repro_defense_actions_total``.
    _ACTIONS = (
        "verified",
        "refused",
        "inconclusive",
        "unlocatable",
        "ledger_refused",
    )

    def __init__(
        self,
        service: LbsnService,
        verifier: LocationVerifier,
        physical_locator: PhysicalLocator,
        refuse_inconclusive: bool = False,
        client_ip_of: Optional[Callable[[int], Optional[str]]] = None,
        suspicion_ledger=None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
    ) -> None:
        self.service = service
        self.verifier = (
            InstrumentedVerifier(verifier, metrics)
            if metrics is not None
            else verifier
        )
        self.physical_locator = physical_locator
        self.refuse_inconclusive = refuse_inconclusive
        self.client_ip_of = client_ip_of
        self.suspicion_ledger = suspicion_ledger
        self.stats = DefenseStats()
        self._logger = log.logger("defense") if log is not None else None
        if metrics is not None:
            actions = metrics.counter(
                "repro_defense_actions_total",
                "What the inline defense did with each check-in claim, "
                "by action.",
                ("action",),
            )
            self._action_children = {
                action: actions.labels(action) for action in self._ACTIONS
            }
        else:
            self._action_children = None
        self._instrumented = (
            self._logger is not None or self._action_children is not None
        )

    def _count_action(self, action: str) -> None:
        if self._action_children is not None:
            self._action_children[action].inc()

    def check_in(
        self,
        user_id: int,
        venue_id: int,
        reported_location: GeoPoint,
        timestamp: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> CheckInResult:
        """Verify the claim, then delegate to the underlying service.

        When instrumented (metrics, log, or an instrumented underlying
        service), the whole call runs under one
        :class:`~repro.obs.context.TraceContext` — passed in, adopted
        from the ambient context, or minted here.
        """
        if trace is None and (
            self._instrumented
            or self.service.log is not None
            or self.service.tracer is not None
        ):
            trace = current_trace() or TraceContext.mint()
        with use_trace(trace):
            return self._check_in(
                user_id, venue_id, reported_location, timestamp, trace
            )

    def _check_in(
        self,
        user_id: int,
        venue_id: int,
        reported_location: GeoPoint,
        timestamp: Optional[float],
        trace: Optional[TraceContext],
    ) -> CheckInResult:
        if (
            self.suspicion_ledger is not None
            and self.suspicion_ledger.is_suspect(user_id)
        ):
            self.stats.ledger_refused += 1
            self._count_action("ledger_refused")
            return self._refusal(
                user_id,
                venue_id,
                reported_location,
                rule=RULE_STREAM_SUSPECT,
                trace=trace,
            )
        venue = self.service.store.require_venue(venue_id)
        physical = self.physical_locator(user_id)
        if physical is None:
            # The verifier cannot sense this device at all.
            self.stats.unlocatable += 1
            self._count_action("unlocatable")
            if self.refuse_inconclusive:
                return self._refusal(
                    user_id, venue_id, reported_location, trace=trace
                )
            return self.service.check_in(
                user_id,
                venue_id,
                reported_location,
                timestamp=timestamp,
                trace=trace,
            )
        claim = LocationClaim(
            user_id=user_id,
            venue_id=venue_id,
            venue_location=venue.location,
            claimed_location=reported_location,
            physical_location=physical,
            client_ip=self.client_ip_of(user_id) if self.client_ip_of else None,
        )
        result = self.verifier.verify(claim)
        if result.outcome is VerificationOutcome.REJECT:
            self.stats.refused += 1
            self._count_action("refused")
            return self._refusal(
                user_id, venue_id, reported_location, trace=trace
            )
        if result.outcome is VerificationOutcome.INCONCLUSIVE:
            self.stats.inconclusive += 1
            self._count_action("inconclusive")
            if self.refuse_inconclusive:
                return self._refusal(
                    user_id, venue_id, reported_location, trace=trace
                )
        else:
            self.stats.verified += 1
            self._count_action("verified")
        return self.service.check_in(
            user_id,
            venue_id,
            reported_location,
            timestamp=timestamp,
            trace=trace,
        )

    def _refusal(
        self,
        user_id: int,
        venue_id: int,
        reported_location: GeoPoint,
        rule: str = RULE_LOCATION_VERIFIER,
        trace: Optional[TraceContext] = None,
    ) -> CheckInResult:
        from repro.lbsn.models import CheckIn

        if self._logger is not None:
            self._logger.info(
                "defense.refused",
                trace_id=trace.trace_id if trace is not None else None,
                user_id=user_id,
                venue_id=venue_id,
                rule=rule,
            )
        checkin = CheckIn(
            checkin_id=0,  # never recorded
            user_id=user_id,
            venue_id=venue_id,
            timestamp=self.service.clock.now(),
            reported_location=reported_location,
            status=CheckInStatus.REJECTED,
            flagged_rule=rule,
        )
        return CheckInResult(
            checkin=checkin,
            warnings=["location could not be verified"],
        )

    # Convenience passthroughs so attack channels work unchanged --------

    def __getattr__(self, name):
        return getattr(self.service, name)


def registry_locator(registry: DeviceRegistry) -> PhysicalLocator:
    """Adapter: a :class:`DeviceRegistry` as a physical locator."""
    return registry.locate
