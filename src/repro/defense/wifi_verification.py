"""Venue-side Wi-Fi location verification (§5.1): the thesis's favourite.

The venue's existing Wi-Fi router doubles as a location verifier: "only
devices that are physically within the radio communication range of a Wi-Fi
router can communicate with it", an intrinsic distance bound of ~100 m with
no new hardware.  The documented limitation is modeled too: "a cheater
sitting inside a McDonald's can check-in to the Wendy's next door, which is
only 50 meters away" — unless the owner tightens the radio range via
firmware (DD-WRT).

Routers must register with the LBS server over a trusted channel so
cheaters cannot impersonate them; unregistered venues simply cannot be
verified (INCONCLUSIVE), which is the deployment-coverage question the E11
bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.defense.verifier import (
    LocationClaim,
    VerificationOutcome,
    VerificationResult,
)
from repro.errors import DefenseError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m

#: "The radio range of a Wi-Fi router is generally no more than one
#: hundred meters."
DEFAULT_RADIO_RANGE_M = 100.0


@dataclass
class VenueRouter:
    """One venue's router, registered as a verifier."""

    venue_id: int
    location: GeoPoint
    #: Effective radio range; firmware tuning (DD-WRT) can shrink it to
    #: roughly the building footprint.
    radio_range_m: float = DEFAULT_RADIO_RANGE_M
    #: Only routers that completed trusted registration count.
    registered: bool = True

    def in_range(self, device_at: GeoPoint) -> bool:
        """Can the device physically talk to this router?"""
        return haversine_m(self.location, device_at) <= self.radio_range_m


class WifiVerificationService:
    """The LBS-server side: a registry of venue routers."""

    name = "wifi-venue-verification"

    def __init__(self, fallback_accept: bool = True) -> None:
        self._routers: Dict[int, VenueRouter] = {}
        #: Whether claims at venues with no router pass by default.  True
        #: models incremental rollout (unverifiable venues keep working);
        #: False models a strict mode where only verified venues reward.
        self.fallback_accept = fallback_accept

    def register_router(self, router: VenueRouter) -> None:
        """Complete a router's trusted registration."""
        if router.radio_range_m <= 0:
            raise DefenseError(
                f"radio range must be positive: {router.radio_range_m}"
            )
        self._routers[router.venue_id] = router

    def router_for(self, venue_id: int) -> Optional[VenueRouter]:
        """The registered router at a venue, if any."""
        return self._routers.get(venue_id)

    @property
    def coverage(self) -> int:
        """How many venues have registered routers."""
        return len(self._routers)

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Check whether the venue's router can physically hear the device."""
        router = self._routers.get(claim.venue_id)
        if router is None or not router.registered:
            outcome = (
                VerificationOutcome.ACCEPT
                if self.fallback_accept
                else VerificationOutcome.INCONCLUSIVE
            )
            return VerificationResult(
                outcome=outcome, detail="venue has no registered router"
            )
        distance = haversine_m(router.location, claim.physical_location)
        if router.in_range(claim.physical_location):
            return VerificationResult(
                outcome=VerificationOutcome.ACCEPT,
                estimated_distance_m=distance,
                detail=f"device heard by router at {distance:.0f} m",
            )
        return VerificationResult(
            outcome=VerificationOutcome.REJECT,
            estimated_distance_m=distance,
            detail=(
                f"device outside radio range "
                f"({distance:.0f} m > {router.radio_range_m:.0f} m)"
            ),
        )


def deploy_routers(
    service,
    fraction: float = 1.0,
    radio_range_m: float = DEFAULT_RADIO_RANGE_M,
    fallback_accept: bool = True,
) -> WifiVerificationService:
    """Register routers at a fraction of a service's venues (by ID order).

    The E11 bench sweeps ``fraction`` to show how attack yield degrades
    with deployment coverage.
    """
    if not 0.0 <= fraction <= 1.0:
        raise DefenseError(f"fraction must be in [0, 1]: {fraction}")
    wifi = WifiVerificationService(fallback_accept=fallback_accept)
    venues = sorted(service.store.iter_venues(), key=lambda v: v.venue_id)
    cutoff = int(len(venues) * fraction)
    for venue in venues[:cutoff]:
        wifi.register_router(
            VenueRouter(
                venue_id=venue.venue_id,
                location=venue.location,
                radio_range_m=radio_range_m,
            )
        )
    return wifi
