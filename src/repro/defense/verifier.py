"""Common interface for location-verification defenses (§5.1).

Every defense judges a :class:`LocationClaim`: the check-in the server saw,
plus whatever side channel the defense taps (physical signal propagation
for distance bounding and Wi-Fi, the client IP for address mapping).  The
device's *physical* location is carried on the claim for the simulation's
benefit — only defenses whose real-world mechanism senses physics read it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Protocol

from repro.geo.coordinates import GeoPoint
from repro.obs.metrics import MetricsRegistry


class VerificationOutcome(Enum):
    """A defense's judgement of one claim."""

    ACCEPT = "accept"
    REJECT = "reject"
    #: The defense had no basis to judge (e.g. unmapped IP address).
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class LocationClaim:
    """One check-in claim under verification."""

    user_id: int
    venue_id: int
    venue_location: GeoPoint
    claimed_location: GeoPoint
    #: Where the device physically is — ground truth the simulation knows;
    #: physics-based defenses (distance bounding, Wi-Fi) can sense it,
    #: GPS-trusting services cannot.
    physical_location: GeoPoint
    #: The IP the server saw, for address mapping.
    client_ip: Optional[str] = None


@dataclass(frozen=True)
class VerificationResult:
    """Outcome plus the defense's evidence."""

    outcome: VerificationOutcome
    estimated_distance_m: Optional[float] = None
    detail: str = ""

    @property
    def accepted(self) -> bool:
        """True when the claim passed."""
        return self.outcome is VerificationOutcome.ACCEPT

    @property
    def rejected(self) -> bool:
        """True when the claim was refused."""
        return self.outcome is VerificationOutcome.REJECT


class LocationVerifier(Protocol):
    """Anything that can judge a location claim."""

    #: Human-readable name for evaluation tables.
    name: str

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Judge one claim."""
        ...


class InstrumentedVerifier:
    """A :class:`LocationVerifier` wrapper exporting verdicts + latency.

    Wraps any verifier and records, per check:

    * ``repro_defense_verdicts_total{defense,outcome}`` — one increment
      per judged claim, labeled by the wrapped defense's name and the
      outcome (``accept`` / ``reject`` / ``inconclusive``).
    * ``repro_defense_check_seconds{defense}`` — the wall-clock latency
      of :meth:`verify`, the number the thesis's cost comparison talks
      about qualitatively (distance bounding is *slow and accurate*;
      address mapping is *fast and sloppy*).

    The three outcome children are pre-bound at construction so the
    per-claim cost is a clock read, one ``observe``, and one ``inc``.
    Wrapping is transparent: ``name`` and any extra attributes forward to
    the wrapped verifier, so evaluation tables and deployment notes keyed
    by name are unaffected.
    """

    def __init__(
        self, inner: LocationVerifier, metrics: MetricsRegistry
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self._latency = metrics.histogram(
            "repro_defense_check_seconds",
            "Latency of one location-verification check, by defense.",
            ("defense",),
        ).labels(self.name)
        verdicts = metrics.counter(
            "repro_defense_verdicts_total",
            "Location-verification verdicts, by defense and outcome.",
            ("defense", "outcome"),
        )
        self._verdict_children = {
            outcome: verdicts.labels(self.name, outcome.value)
            for outcome in VerificationOutcome
        }

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Judge one claim through the wrapped verifier, instrumented."""
        start = time.perf_counter()
        result = self.inner.verify(claim)
        self._latency.observe(time.perf_counter() - start)
        self._verdict_children[result.outcome].inc()
        return result

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
