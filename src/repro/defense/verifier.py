"""Common interface for location-verification defenses (§5.1).

Every defense judges a :class:`LocationClaim`: the check-in the server saw,
plus whatever side channel the defense taps (physical signal propagation
for distance bounding and Wi-Fi, the client IP for address mapping).  The
device's *physical* location is carried on the claim for the simulation's
benefit — only defenses whose real-world mechanism senses physics read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Protocol

from repro.geo.coordinates import GeoPoint


class VerificationOutcome(Enum):
    """A defense's judgement of one claim."""

    ACCEPT = "accept"
    REJECT = "reject"
    #: The defense had no basis to judge (e.g. unmapped IP address).
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class LocationClaim:
    """One check-in claim under verification."""

    user_id: int
    venue_id: int
    venue_location: GeoPoint
    claimed_location: GeoPoint
    #: Where the device physically is — ground truth the simulation knows;
    #: physics-based defenses (distance bounding, Wi-Fi) can sense it,
    #: GPS-trusting services cannot.
    physical_location: GeoPoint
    #: The IP the server saw, for address mapping.
    client_ip: Optional[str] = None


@dataclass(frozen=True)
class VerificationResult:
    """Outcome plus the defense's evidence."""

    outcome: VerificationOutcome
    estimated_distance_m: Optional[float] = None
    detail: str = ""

    @property
    def accepted(self) -> bool:
        """True when the claim passed."""
        return self.outcome is VerificationOutcome.ACCEPT

    @property
    def rejected(self) -> bool:
        """True when the claim was refused."""
        return self.outcome is VerificationOutcome.REJECT


class LocationVerifier(Protocol):
    """Anything that can judge a location claim."""

    #: Human-readable name for evaluation tables.
    name: str

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Judge one claim."""
        ...
