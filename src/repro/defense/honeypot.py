"""Honeypot-venue defense: fake venues only a spoofer would ever visit.

Pelechrinis et al. ("Gaming the Game") observe that a crawler-scheduled
spoofing campaign has one structural weakness the three per-user rules
cannot see: it selects targets from *exhaustive venue enumeration*, not
from lived experience.  Seed the venue grid with fake venues that no
honest itinerary will ever contain — no foot traffic, no social pull,
nothing but an attractive-looking mayor-only special — and any account
that checks into one has proved, by that single act, that its target list
came from a crawl.

The :class:`HoneypotRegistry` implements both halves:

* **Seeding** — :meth:`seed` creates fake venues through the normal
  ``service.create_venue`` path, so they land in the
  :class:`~repro.lbsn.store.DataStore`, the venue grid, the web pages,
  and therefore every crawl snapshot — indistinguishable from real
  venues to an attacker.  They are deliberately **not** added to the
  :class:`~repro.workload.venues.GeneratedVenues` lists that honest
  personas' itinerary logic draws from; that omission is the *visibility
  law* (see ``docs/ADVERSARY.md``) and the reason the false-positive
  rate on honest personas is structurally zero.
* **Flagging** — :meth:`on_event` watches the live event stream; any
  check-in event (accepted, flagged, *or* rejected — attempting is
  proof enough) at a honeypot venue flags the account, emits one
  trace-stamped ``honeypot.flag`` record, and pins the account onto the
  :class:`~repro.stream.ledger.SuspicionLedger` via
  :meth:`~repro.stream.ledger.SuspicionLedger.pin`, which promotes the
  flag into :class:`~repro.defense.integration.DefendedLbsnService`'s
  inline refusal path.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import Special, VenueCategory
from repro.lbsn.service import LbsnService
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.stream.bus import BackpressurePolicy, EventBus
from repro.stream.events import CheckInEvent, StreamEvent

#: Reason recorded on ledger pins and flag records for honeypot hits.
RULE_HONEYPOT = "honeypot-venue"

#: Offer text on every seeded venue: a mayor-only special with no mayor —
#: exactly the §3.4 "prime target" profile the attack targeting queries
#: select for, so exhaustive-enumeration attackers cannot resist them.
HONEYPOT_SPECIAL_TEXT = "Free lunch for the mayor, every day!"

_NAMES = (
    "Corner Coffee Collective",
    "The Tin Rooster Diner",
    "Bluebird Vinyl Lounge",
    "Prairie Gate Taproom",
    "Juniper & Thyme Kitchen",
    "Half Moon Arcade",
    "The Velvet Antler",
    "Sundial Tea House",
)


@dataclass(frozen=True)
class HoneypotFlag:
    """One account caught: the first honeypot check-in that proved it."""

    user_id: int
    venue_id: int
    timestamp: float
    seq: int
    #: Trace of the check-in request that tripped the honeypot — the
    #: same id :meth:`SuspicionLedger.flag_trace_id` then serves.
    trace_id: Optional[str]


class HoneypotRegistry:
    """Seeds honeypot venues and flags every account that visits one.

    Parameters
    ----------
    service:
        The service whose venue grid receives the seeded venues.
    ledger:
        Optional live :class:`~repro.stream.ledger.SuspicionLedger`.
        When set, every flag is pinned onto it (``rule=RULE_HONEYPOT``),
        which makes :class:`~repro.defense.integration.
        DefendedLbsnService` refuse the account inline from then on.
    metrics:
        Optional registry.  Exports ``repro_honeypot_venues`` (seeded
        venue count), ``repro_honeypot_checkins_total`` (check-in events
        observed at honeypot venues), ``repro_honeypot_flags_total``
        (accounts newly flagged), and ``repro_honeypot_flagged_accounts``
        (current flagged-account count).
    log:
        Optional :class:`~repro.obs.log.LogHub`; each new flag emits one
        ``honeypot.flag`` record carrying the triggering event's
        ``trace_id``.
    """

    def __init__(
        self,
        service: LbsnService,
        ledger=None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
    ) -> None:
        self.service = service
        self.ledger = ledger
        self._logger = (
            log.logger("defense.honeypot") if log is not None else None
        )
        self._venue_ids: Set[int] = set()
        self._flags: Dict[int, HoneypotFlag] = {}
        self._lock = threading.Lock()
        self.checkins_observed = 0
        if metrics is not None:
            self._venues_metric = metrics.gauge(
                "repro_honeypot_venues",
                "Honeypot venues currently seeded into the store.",
            )
            self._checkins_metric = metrics.counter(
                "repro_honeypot_checkins_total",
                "Check-in events observed at honeypot venues "
                "(every attempt counts, whatever its outcome).",
            )
            self._flags_metric = metrics.counter(
                "repro_honeypot_flags_total",
                "Accounts newly flagged for checking into a honeypot.",
            )
            self._flagged_metric = metrics.gauge(
                "repro_honeypot_flagged_accounts",
                "Accounts currently carrying a honeypot flag.",
            )
        else:
            self._venues_metric = None
            self._checkins_metric = None
            self._flags_metric = None
            self._flagged_metric = None

    # Seeding ------------------------------------------------------------

    def seed(
        self,
        density: float = 0.01,
        seed: int = 0,
        count: Optional[int] = None,
    ) -> List[int]:
        """Seed honeypots at ``density`` × the current venue count.

        Placement is seeded and deterministic: each honeypot lands a few
        hundred metres from a randomly sampled *existing* venue, so the
        fakes sit inside real neighbourhoods rather than in empty
        wilderness a crawler might discount.  Every honeypot carries a
        mayor-only special and no mayor — the §3.4 easy-target profile.

        Returns the new venue ids (also remembered for :meth:`on_event`).
        """
        if count is None:
            if density <= 0:
                return []
            count = max(1, round(density * self.service.store.venue_count()))
        if count <= 0:
            return []
        anchors = [
            venue.location for venue in self.service.store.iter_venues()
        ]
        if not anchors:
            raise ReproError("cannot seed honeypots into an empty world")
        rng = random.Random(seed)
        created: List[int] = []
        for index in range(count):
            anchor = anchors[rng.randrange(len(anchors))]
            location = GeoPoint(
                latitude=anchor.latitude + rng.uniform(-0.004, 0.004),
                longitude=anchor.longitude + rng.uniform(-0.004, 0.004),
            )
            venue = self.service.create_venue(
                name=f"{_NAMES[index % len(_NAMES)]} #{index + 1}",
                location=location,
                category=VenueCategory.RESTAURANT,
                special=Special(
                    description=HONEYPOT_SPECIAL_TEXT, mayor_only=True
                ),
            )
            created.append(venue.venue_id)
        with self._lock:
            self._venue_ids.update(created)
            if self._venues_metric is not None:
                self._venues_metric.set(len(self._venue_ids))
        return created

    def is_honeypot(self, venue_id: int) -> bool:
        """Is this venue one of ours?"""
        with self._lock:
            return venue_id in self._venue_ids

    def honeypot_ids(self) -> List[int]:
        """All seeded honeypot venue ids, ascending."""
        with self._lock:
            return sorted(self._venue_ids)

    # Flagging -----------------------------------------------------------

    def on_event(self, event: StreamEvent) -> None:
        """Bus subscriber: flag any account seen at a honeypot venue."""
        if not isinstance(event, CheckInEvent):
            return
        with self._lock:
            if event.venue_id not in self._venue_ids:
                return
            self.checkins_observed += 1
            if self._checkins_metric is not None:
                self._checkins_metric.inc()
            if event.user_id in self._flags:
                return
            flag = HoneypotFlag(
                user_id=event.user_id,
                venue_id=event.venue_id,
                timestamp=event.timestamp,
                seq=event.seq,
                trace_id=event.trace_id,
            )
            self._flags[event.user_id] = flag
            if self._flags_metric is not None:
                self._flags_metric.inc()
            if self._flagged_metric is not None:
                self._flagged_metric.set(len(self._flags))
        if self._logger is not None:
            self._logger.warning(
                "honeypot.flag",
                trace_id=flag.trace_id,
                user_id=flag.user_id,
                venue_id=flag.venue_id,
                rule=RULE_HONEYPOT,
            )
        if self.ledger is not None:
            self.ledger.pin(
                flag.user_id, rule=RULE_HONEYPOT, trace_id=flag.trace_id
            )

    def attach(
        self,
        bus: EventBus,
        name: str = "honeypot-registry",
        *,
        background: bool = False,
        queue_size: int = 4096,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
    ) -> "HoneypotRegistry":
        """Subscribe this registry to a bus; returns self for chaining."""
        bus.subscribe(
            name,
            self.on_event,
            background=background,
            queue_size=queue_size,
            policy=policy,
        )
        return self

    # Read side ----------------------------------------------------------

    def flagged_accounts(self) -> List[int]:
        """User ids carrying a honeypot flag, ascending."""
        with self._lock:
            return sorted(self._flags)

    def flags(self) -> List[HoneypotFlag]:
        """All flag records, in user-id order."""
        with self._lock:
            return [self._flags[user_id] for user_id in sorted(self._flags)]

    def flag_of(self, user_id: int) -> Optional[HoneypotFlag]:
        """The flag record for one account, if it has been caught."""
        with self._lock:
            return self._flags.get(user_id)

    def __len__(self) -> int:
        return len(self._flags)


__all__ = [
    "HONEYPOT_SPECIAL_TEXT",
    "RULE_HONEYPOT",
    "HoneypotFlag",
    "HoneypotRegistry",
]
