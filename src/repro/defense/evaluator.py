"""Head-to-head defense evaluation (E11).

Chapter 5 compares the three location-verification techniques
qualitatively (accuracy / coverage / cost); this evaluator makes the
comparison quantitative over simulated claim workloads: detection rate on
spoofed claims, false-positive rate on honest ones, and the deployment-cost
notes from the thesis's own comparison paragraph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.defense.verifier import (
    InstrumentedVerifier,
    LocationClaim,
    LocationVerifier,
    VerificationOutcome,
)
from repro.errors import DefenseError
from repro.obs.metrics import MetricsRegistry
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.lbsn.service import LbsnService
from repro.simnet.network import Network

#: The thesis's qualitative cost comparison, kept with the numbers.
DEPLOYMENT_NOTES = {
    "distance-bounding": (
        "most accurate; usable anywhere; hardest to implement, highest "
        "cost (dedicated verifiers around every venue)"
    ),
    "address-mapping": (
        "least accurate; usable anywhere; lowest cost, easiest to "
        "implement (pure server-side lookup)"
    ),
    "wifi-venue-verification": (
        "accurate to radio range (~100 m); needs per-venue router "
        "registration; no new hardware (firmware update on existing "
        "routers)"
    ),
}


@dataclass
class VerifierEvaluation:
    """One defense's measured performance over a claim workload."""

    name: str
    attack_claims: int = 0
    attack_rejected: int = 0
    attack_inconclusive: int = 0
    honest_claims: int = 0
    honest_rejected: int = 0
    honest_inconclusive: int = 0
    notes: str = ""

    @property
    def detection_rate(self) -> float:
        """Fraction of spoofed claims rejected."""
        return self.attack_rejected / max(1, self.attack_claims)

    @property
    def false_positive_rate(self) -> float:
        """Fraction of honest claims wrongly rejected."""
        return self.honest_rejected / max(1, self.honest_claims)


class ClaimWorkload:
    """Generates honest and spoofed claims against a populated service."""

    def __init__(self, service: LbsnService, network: Optional[Network] = None, seed: int = 0) -> None:
        self.service = service
        self.network = network
        self._rng = random.Random(seed)
        self._venues = service.store.iter_venues()
        if not self._venues:
            raise DefenseError("service has no venues to claim against")

    def honest_claims(
        self,
        count: int,
        gps_noise_m: float = 15.0,
        carrier_gateway_km: float = 40.0,
        unmapped_ip_fraction: float = 0.25,
    ) -> List[LocationClaim]:
        """Truthful users: physically at the venue, claiming it.

        The client IP geolocates to the carrier's gateway tens of
        kilometers away — the thesis's "nonlocal IP addresses" caveat —
        so a tight address-mapping tolerance produces false positives, and
        a fraction of mobile IPs (carrier NAT pools) is absent from the
        GeoIP database entirely.
        """
        claims = []
        for _ in range(count):
            venue = self._rng.choice(self._venues)
            physical = destination_point(
                venue.location,
                self._rng.uniform(0, 360),
                abs(self._rng.gauss(0.0, gps_noise_m)),
            )
            if self._rng.random() < unmapped_ip_fraction:
                ip = self._unmapped_ip()
            else:
                ip = self._register_ip_near(
                    venue.location, carrier_gateway_km * 1_000.0
                )
            claims.append(
                LocationClaim(
                    user_id=0,
                    venue_id=venue.venue_id,
                    venue_location=venue.location,
                    claimed_location=venue.location,
                    physical_location=physical,
                    client_ip=ip,
                )
            )
        return claims

    def spoofed_claims(
        self,
        count: int,
        attacker_at: GeoPoint,
        min_distance_m: float = 50_000.0,
        proxy_near_target: bool = False,
    ) -> List[LocationClaim]:
        """The §3.1 attack: device at ``attacker_at``, claiming far venues.

        With ``proxy_near_target`` the attacker routes each request through
        a proxy/VPN exit near the claimed venue — the cheap evasion that
        defeats address mapping while leaving physics-based defenses
        untouched (they sense the device, not the packets).
        """
        remote = [
            venue
            for venue in self._venues
            if haversine_m(venue.location, attacker_at) >= min_distance_m
        ]
        if not remote:
            raise DefenseError("no venues far enough to spoof against")
        home_ip = self._register_ip_near(attacker_at, 5_000.0)
        claims = []
        for _ in range(count):
            venue = self._rng.choice(remote)
            if proxy_near_target:
                ip = self._register_ip_near(venue.location, 10_000.0)
            else:
                ip = home_ip
            claims.append(
                LocationClaim(
                    user_id=0,
                    venue_id=venue.venue_id,
                    venue_location=venue.location,
                    claimed_location=venue.location,
                    physical_location=attacker_at,
                    client_ip=ip,
                )
            )
        return claims

    def _register_ip_near(
        self, location: GeoPoint, radius_m: float
    ) -> Optional[str]:
        if self.network is None:
            return None
        gateway = destination_point(
            location,
            self._rng.uniform(0, 360),
            self._rng.uniform(0.0, radius_m),
        )
        egress = self.network.create_egress(location=gateway)
        return egress.ip.value

    def _unmapped_ip(self) -> Optional[str]:
        """An egress whose IP is NOT in the GeoIP database."""
        if self.network is None:
            return None
        egress = self.network.create_egress(location=None, register_geoip=False)
        return egress.ip.value


def evaluate_verifiers(
    verifiers: Sequence[LocationVerifier],
    honest: Sequence[LocationClaim],
    attacks: Sequence[LocationClaim],
    metrics: Optional[MetricsRegistry] = None,
) -> List[VerifierEvaluation]:
    """Run every verifier over both claim sets and tally the outcomes.

    With ``metrics``, each verifier is wrapped in an
    :class:`~repro.defense.verifier.InstrumentedVerifier` for the run, so
    the evaluation also populates the per-defense verdict counters and
    check-latency histograms — the E11 table and the scrape endpoint then
    tell the same story.
    """
    evaluations = []
    for verifier in verifiers:
        if metrics is not None:
            verifier = InstrumentedVerifier(verifier, metrics)
        evaluation = VerifierEvaluation(
            name=verifier.name,
            notes=DEPLOYMENT_NOTES.get(verifier.name, ""),
        )
        for claim in attacks:
            result = verifier.verify(claim)
            evaluation.attack_claims += 1
            if result.outcome is VerificationOutcome.REJECT:
                evaluation.attack_rejected += 1
            elif result.outcome is VerificationOutcome.INCONCLUSIVE:
                evaluation.attack_inconclusive += 1
        for claim in honest:
            result = verifier.verify(claim)
            evaluation.honest_claims += 1
            if result.outcome is VerificationOutcome.REJECT:
                evaluation.honest_rejected += 1
            elif result.outcome is VerificationOutcome.INCONCLUSIVE:
                evaluation.honest_inconclusive += 1
        evaluations.append(evaluation)
    return evaluations


def format_evaluation_table(
    evaluations: Sequence[VerifierEvaluation],
) -> List[str]:
    """Printable rows for the E11 bench."""
    rows = []
    for evaluation in evaluations:
        rows.append(
            f"{evaluation.name:<26} detect={evaluation.detection_rate:6.1%} "
            f"false-pos={evaluation.false_positive_rate:6.1%} "
            f"inconclusive(att/hon)={evaluation.attack_inconclusive}"
            f"/{evaluation.honest_inconclusive}  {evaluation.notes}"
        )
    return rows
