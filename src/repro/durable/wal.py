"""The write-ahead event log: crash-durable storage for the event stream.

The in-process :class:`~repro.stream.bus.EventBus` is fast and ephemeral:
a detector worker that dies takes its :class:`~repro.stream.ledger.
SuspicionLedger` with it, and the paper's defense silently un-flags every
cheater it had caught.  The WAL closes that gap — every event a durable
subscriber sees is appended here *before* any detector state mutates, so
recovery is a pure function of bytes on disk:

    recovered state = latest snapshot + replay of records with
    ``seq > snapshot.seq``

Record format (little-endian), one record per event::

    +----------+----------+------------------+
    | length u32 | crc32 u32 | payload bytes  |
    +----------+----------+------------------+

``payload`` is the canonical JSON encoding of one
:class:`~repro.stream.events.StreamEvent` (sorted keys, compact
separators — byte-stable across runs); ``crc32`` is computed over the
payload, so a flipped bit anywhere in the record is rejected.  Segments
open with an 8-byte magic (:data:`SEGMENT_MAGIC`) and rotate at
``segment_max_bytes``; a writer never appends to a pre-existing segment
(its tail may be torn), it always opens a fresh one.

The reader is torn-tail tolerant by design: a crash mid-``write`` leaves
a truncated header, a short payload, or a corrupt checksum at the very
end of the *final* segment, and :meth:`WalReader.scan` stops cleanly
there (``torn_tail`` reports what it saw).  The same damage in a
non-final segment is a mid-log gap no replay can paper over, so it
always raises :class:`WalCorruptionError` — silently skipping interior
records would desynchronise every seq-ordered consumer downstream.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.obs.metrics import MetricsRegistry
from repro.stream.events import (
    CheckInAccepted,
    CheckInFlagged,
    CheckInRejected,
    MayorChanged,
    StreamEvent,
    UserRegistered,
    VenueCreated,
)

#: First 8 bytes of every segment file; the trailing digit is the format
#: version (docs/DURABILITY.md documents the layout; a parity test keeps
#: the doc and this constant identical).
SEGMENT_MAGIC = b"RWALSEG1"

#: ``<length u32><crc32 u32>`` record header.
_RECORD_HEADER = struct.Struct("<II")

#: Hard ceiling on a single record's payload, far above any real event;
#: a length field past this is corruption, not a huge record.
MAX_RECORD_BYTES = 1 << 20


class WalError(ReproError):
    """Misuse of the WAL API (unknown event type, closed writer...)."""


class WalCorruptionError(WalError):
    """A record failed its checksum or framing *inside* the log."""


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------

#: Wire tag ↔ event type.  Tags are part of the on-disk format: never
#: renumber, only append.
_TAG_TO_TYPE = {
    "user": UserRegistered,
    "venue": VenueCreated,
    "accept": CheckInAccepted,
    "flag": CheckInFlagged,
    "reject": CheckInRejected,
    "mayor": MayorChanged,
}
_TYPE_TO_TAG = {cls: tag for tag, cls in _TAG_TO_TYPE.items()}

#: Event fields holding a :class:`GeoPoint` (encoded as [lat, lon]).
_GEO_FIELDS = frozenset({"venue_location", "reported_location", "location"})


def encode_event(event: StreamEvent) -> bytes:
    """Serialize one event to its canonical payload bytes.

    The encoding is byte-stable (sorted keys, compact separators) so the
    same event always produces the same record — which is what lets the
    chaos-style digest comparisons treat WAL bytes as a witness.
    """
    tag = _TYPE_TO_TAG.get(type(event))
    if tag is None:
        raise WalError(f"unknown event type: {type(event).__name__}")
    doc = {"t": tag}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if field.name in _GEO_FIELDS and value is not None:
            value = [value.latitude, value.longitude]
        doc[field.name] = value
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def decode_event(payload: bytes) -> StreamEvent:
    """Rebuild the event a payload encodes (inverse of :func:`encode_event`)."""
    try:
        doc = json.loads(payload)
        tag = doc.pop("t")
        cls = _TAG_TO_TYPE[tag]
        for name in _GEO_FIELDS & doc.keys():
            if doc[name] is not None:
                doc[name] = GeoPoint(doc[name][0], doc[name][1])
        return cls(**doc)
    except WalError:
        raise
    except Exception as exc:
        raise WalCorruptionError(
            f"undecodable WAL payload ({type(exc).__name__}: {exc})"
        ) from exc


def encode_record(event: StreamEvent) -> bytes:
    """One full framed record: header + payload."""
    payload = encode_event(event)
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class _WalMetrics:
    """Exported WAL telemetry (shared by writer and reader)."""

    __slots__ = ("appends", "bytes_written", "fsyncs", "fsync_seconds",
                 "segments", "replayed", "torn_tails")

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.appends = metrics.counter(
            "repro_wal_appends_total",
            "Events appended to write-ahead log segments.",
        ).child()
        self.bytes_written = metrics.counter(
            "repro_wal_bytes_written_total",
            "Bytes written to write-ahead log segments.",
        ).child()
        self.fsyncs = metrics.counter(
            "repro_wal_fsyncs_total",
            "fsync(2) calls issued by WAL writers (batching knob).",
        ).child()
        self.fsync_seconds = metrics.histogram(
            "repro_wal_fsync_seconds",
            "Wall time per WAL fsync batch (flush + fsync); feeds the "
            "wal-fsync-p99 durability SLO.",
        ).child()
        self.segments = metrics.counter(
            "repro_wal_segments_opened_total",
            "WAL segment files opened for writing.",
        ).child()
        self.replayed = metrics.counter(
            "repro_wal_replayed_events_total",
            "Events decoded and yielded by WAL replay scans.",
        ).child()
        self.torn_tails = metrics.counter(
            "repro_wal_torn_tails_total",
            "Replay scans that stopped at a torn or truncated tail.",
        ).child()


class WalWriter:
    """Append-only, segment-rotating event log writer.

    Parameters
    ----------
    directory:
        Segment directory (created if missing).  An existing log is
        *continued*: the writer opens a fresh segment after the highest
        existing index rather than appending to a possibly-torn tail.
    segment_max_bytes:
        Rotate to a new segment once the current one reaches this size.
    fsync_every:
        Issue ``fsync`` every N appends (and on :meth:`close`).  ``1``
        is full durability per event; ``0`` never fsyncs (OS flush
        only) — the knob the E23 bench sweeps.
    """

    def __init__(
        self,
        directory: os.PathLike,
        segment_max_bytes: int = 1_048_576,
        fsync_every: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if segment_max_bytes < len(SEGMENT_MAGIC) + _RECORD_HEADER.size:
            raise WalError(
                f"segment_max_bytes too small: {segment_max_bytes}"
            )
        if fsync_every < 0:
            raise WalError(f"fsync_every must be >= 0: {fsync_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_every = fsync_every
        self._metrics = _WalMetrics(metrics) if metrics is not None else None
        self.appended = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.last_seq = -1
        self._since_sync = 0
        self._segment_bytes = 0
        self._file = None
        self.segments_opened = 0
        existing = _segment_indices(self.directory)
        self._next_index = (existing[-1] + 1) if existing else 0
        self._closed = False

    # Segment management ----------------------------------------------

    def _open_segment(self) -> None:
        path = self.directory / _segment_name(self._next_index)
        self._next_index += 1
        self._file = open(path, "xb")
        self._file.write(SEGMENT_MAGIC)
        self._segment_bytes = len(SEGMENT_MAGIC)
        self.bytes_written += len(SEGMENT_MAGIC)
        self.segments_opened += 1
        if self._metrics is not None:
            self._metrics.segments.inc()
            self._metrics.bytes_written.inc(len(SEGMENT_MAGIC))

    # Appending --------------------------------------------------------

    def append(self, event: StreamEvent) -> int:
        """Frame, checksum, and append one event; returns bytes written.

        The append is buffered; durability is governed by the
        ``fsync_every`` batching knob and :meth:`sync`.
        """
        if self._closed:
            raise WalError("append on a closed WalWriter")
        record = encode_record(event)
        if (
            self._file is None
            or self._segment_bytes + len(record) > self.segment_max_bytes
        ):
            self._rotate()
        self._file.write(record)
        self._file.flush()
        self._segment_bytes += len(record)
        self.bytes_written += len(record)
        self.appended += 1
        if event.seq > self.last_seq:
            self.last_seq = event.seq
        if self._metrics is not None:
            self._metrics.appends.inc()
            self._metrics.bytes_written.inc(len(record))
        self._since_sync += 1
        if self.fsync_every and self._since_sync >= self.fsync_every:
            self.sync()
        return len(record)

    def _rotate(self) -> None:
        if self._file is not None:
            if self.fsync_every:
                self.sync()
            self._file.close()
        self._open_segment()

    def sync(self) -> None:
        """Force the current segment to stable storage now.

        Explicit calls always fsync; the ``fsync_every=0`` knob only
        disables the *implicit* syncs (batching, rotation, close).
        """
        if self._file is not None and self._since_sync > 0:
            started = time.perf_counter()
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            self._since_sync = 0
            if self._metrics is not None:
                self._metrics.fsyncs.inc()
                self._metrics.fsync_seconds.observe(
                    time.perf_counter() - started
                )

    def close(self) -> None:
        """Sync (per the knob) and close; further appends raise."""
        if self._closed:
            return
        if self.fsync_every:
            self.sync()
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def _segment_name(index: int) -> str:
    return f"{index:08d}.wal"


def _segment_indices(directory: Path) -> List[int]:
    if not directory.is_dir():
        return []
    indices = []
    for path in directory.iterdir():
        stem, dot, ext = path.name.partition(".")
        if ext == "wal" and stem.isdigit():
            indices.append(int(stem))
    return sorted(indices)


class WalReader:
    """Sequential scan over every segment of one WAL directory.

    After a :meth:`scan` is exhausted, :attr:`torn_tail` reports whether
    the log ended in a torn/truncated record (and :attr:`tail_error`
    says what exactly was wrong with it).  Interior damage — a bad
    record with more log after it — raises :class:`WalCorruptionError`
    regardless of mode; ``strict=True`` additionally promotes tail
    damage to an error (used by integrity checks, never by recovery).
    """

    def __init__(
        self,
        directory: os.PathLike,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self._metrics = _WalMetrics(metrics) if metrics is not None else None
        self.records_read = 0
        self.torn_tail = False
        self.tail_error: Optional[str] = None

    def scan(
        self, after_seq: int = -1, strict: bool = False
    ) -> Iterator[StreamEvent]:
        """Yield events in log order, skipping ``seq <= after_seq``.

        ``after_seq`` is the snapshot handoff: recovery passes
        ``snapshot.seq`` and receives exactly the suffix it must replay.
        """
        self.records_read = 0
        self.torn_tail = False
        self.tail_error = None
        indices = _segment_indices(self.directory)
        for position, index in enumerate(indices):
            final_segment = position == len(indices) - 1
            path = self.directory / _segment_name(index)
            for event, problem in self._scan_segment(path):
                if problem is not None:
                    if not final_segment or strict:
                        raise WalCorruptionError(
                            f"{path.name}: {problem}"
                            + ("" if final_segment else " (mid-log)")
                        )
                    self.torn_tail = True
                    self.tail_error = f"{path.name}: {problem}"
                    if self._metrics is not None:
                        self._metrics.torn_tails.inc()
                    return
                self.records_read += 1
                if self._metrics is not None:
                    self._metrics.replayed.inc()
                if event.seq > after_seq:
                    yield event

    def _scan_segment(
        self, path: Path
    ) -> Iterator[Tuple[Optional[StreamEvent], Optional[str]]]:
        """Yield ``(event, None)`` per good record, ``(None, problem)`` once
        at the first bad one (then stop)."""
        with open(path, "rb") as handle:
            magic = handle.read(len(SEGMENT_MAGIC))
            if len(magic) < len(SEGMENT_MAGIC):
                # A zero-byte or header-short segment: the writer died
                # between creating the file and writing its magic.
                if magic:
                    yield None, "short segment header"
                return
            if magic != SEGMENT_MAGIC:
                raise WalCorruptionError(
                    f"{path.name}: bad segment magic {magic!r}"
                )
            while True:
                header = handle.read(_RECORD_HEADER.size)
                if not header:
                    return
                if len(header) < _RECORD_HEADER.size:
                    yield None, "torn record header"
                    return
                length, crc = _RECORD_HEADER.unpack(header)
                if length > MAX_RECORD_BYTES:
                    yield None, f"implausible record length {length}"
                    return
                payload = handle.read(length)
                if len(payload) < length:
                    yield None, "torn record payload"
                    return
                if zlib.crc32(payload) != crc:
                    yield None, "checksum mismatch"
                    return
                yield decode_event(payload), None

    def read_all(
        self, after_seq: int = -1, strict: bool = False
    ) -> List[StreamEvent]:
        """Materialised :meth:`scan` for tests and small logs."""
        return list(self.scan(after_seq=after_seq, strict=strict))

    def segment_count(self) -> int:
        """How many segment files the directory currently holds."""
        return len(_segment_indices(self.directory))

    def total_bytes(self) -> int:
        """Total on-disk size of every segment."""
        return sum(
            (self.directory / _segment_name(index)).stat().st_size
            for index in _segment_indices(self.directory)
        )


__all__ = [
    "MAX_RECORD_BYTES",
    "SEGMENT_MAGIC",
    "WalCorruptionError",
    "WalError",
    "WalReader",
    "WalWriter",
    "decode_event",
    "encode_event",
    "encode_record",
]
