"""repro.durable: crash durability for the streaming detector pipeline.

Three layers, bottom up:

* :mod:`repro.durable.wal` — an append-only, length-prefixed +
  CRC-checksummed write-ahead log of :class:`~repro.stream.events.
  StreamEvent` records, with segment rotation, fsync batching, and a
  torn-tail-tolerant reader.
* :mod:`repro.durable.snapshot` — versioned, checksummed checkpoints of
  :class:`~repro.stream.ledger.SuspicionLedger` state, bounding how much
  WAL a recovery replays.
* :mod:`repro.durable.worker` / :mod:`repro.durable.partition` — N
  consistent-hash-partitioned detector workers behind one durable bus
  tap, each an independent unit of failure, plus the
  :class:`RecoveryCoordinator` that replays dead workers back to the
  exact state of an uncrashed run.

The invariant everything above rests on: the store's commit-ordered
``seq`` is the single total order of the event stream, so online
scoring, offline scoring, and WAL replay all agree — docs/DURABILITY.md
walks the full recovery protocol.
"""

from repro.durable.partition import (
    ConsistentHashRouter,
    PartitionError,
    user_key,
)
from repro.durable.snapshot import (
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotError,
    SnapshotStore,
)
from repro.durable.wal import (
    SEGMENT_MAGIC,
    WalCorruptionError,
    WalError,
    WalReader,
    WalWriter,
    decode_event,
    encode_event,
    encode_record,
)
from repro.durable.worker import (
    DetectorWorker,
    DurableWorkerError,
    PartitionedDetectorPipeline,
    RecoveryCoordinator,
    cold_replay_digests,
)

__all__ = [
    "SEGMENT_MAGIC",
    "SNAPSHOT_VERSION",
    "ConsistentHashRouter",
    "DetectorWorker",
    "DurableWorkerError",
    "PartitionError",
    "PartitionedDetectorPipeline",
    "RecoveryCoordinator",
    "Snapshot",
    "SnapshotError",
    "SnapshotStore",
    "WalCorruptionError",
    "WalError",
    "WalReader",
    "WalWriter",
    "cold_replay_digests",
    "decode_event",
    "encode_event",
    "encode_record",
    "user_key",
]
