"""Consistent-hash partitioning of the event stream by user key.

N detector workers each own a disjoint slice of the user population;
every check-in event is routed to exactly one worker, so each worker's
WAL + ledger shard is an independent unit of failure and recovery.  The
router is a classic consistent-hash ring (sha256 points, virtual nodes)
rather than ``user_id % N`` so that growing N later moves only ~1/N of
the keys — the property that makes repartitioning a migration instead of
a full rebuild.

Determinism contract: the ring is a pure function of ``(partitions,
virtual_nodes)``.  Two processes building a router with the same
arguments route every key identically — which is what lets a cold
replay (``repro wal-replay``) regroup a WAL directory tree without any
routing metadata beyond the partition count.

Events that carry no user key (venue creation, mayor changes) are
*broadcast* to every partition: they are rare, partition-local detector
state ignores or needs them identically, and broadcasting keeps each
shard's event stream self-contained for replay.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional

from repro.errors import ReproError
from repro.stream.events import (
    CheckInAccepted,
    CheckInFlagged,
    CheckInRejected,
    MayorChanged,
    StreamEvent,
    UserRegistered,
)


class PartitionError(ReproError):
    """Invalid partitioning arguments."""


def _ring_point(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRouter:
    """Maps user keys onto ``partitions`` workers via a hash ring."""

    def __init__(self, partitions: int, virtual_nodes: int = 64) -> None:
        if partitions < 1:
            raise PartitionError(f"partitions must be >= 1: {partitions}")
        if virtual_nodes < 1:
            raise PartitionError(
                f"virtual_nodes must be >= 1: {virtual_nodes}"
            )
        self.partitions = partitions
        self.virtual_nodes = virtual_nodes
        points = []
        for partition in range(partitions):
            for replica in range(virtual_nodes):
                points.append(
                    (_ring_point(f"p{partition}:v{replica}"), partition)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def route_key(self, user_id: int) -> int:
        """The partition owning ``user_id``."""
        position = _ring_point(f"u{user_id}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def route_event(self, event: StreamEvent) -> Optional[int]:
        """The partition an event belongs to, or ``None`` = broadcast."""
        user_id = user_key(event)
        if user_id is None:
            return None
        return self.route_key(user_id)

    def spread(self, keys) -> List[int]:
        """How many of ``keys`` each partition owns (bench/test helper)."""
        counts = [0] * self.partitions
        for key in keys:
            counts[self.route_key(key)] += 1
        return counts


def user_key(event: StreamEvent) -> Optional[int]:
    """The user id an event should be partitioned by, if it has one."""
    if isinstance(
        event,
        (CheckInAccepted, CheckInFlagged, CheckInRejected, UserRegistered),
    ):
        return event.user_id
    if isinstance(event, MayorChanged):
        # Mayor flips concern the *venue*; no single user owns them.
        return None
    return None


__all__ = [
    "ConsistentHashRouter",
    "PartitionError",
    "user_key",
]
