"""Partitioned, crash-replayable detector workers over the event bus.

One :class:`DetectorWorker` per partition, each owning three things:

* a :class:`~repro.durable.wal.WalWriter` — its shard of the durable
  event log (appended *before* any detector state mutates);
* a :class:`~repro.stream.ledger.SuspicionLedger` — the in-memory shard
  of scoring state, rebuilt from disk after a crash;
* a :class:`~repro.durable.snapshot.SnapshotStore` — periodic checkpoints
  bounding how much WAL a recovery must replay.

Crash semantics (the contract the parity tests prove): a worker killed
via :data:`~repro.faults.points.POINT_DURABLE_WORKER` loses its ledger
*instantly* — the event that fired, and every later event routed to the
partition, reaches the WAL but not the dead ledger.  Because the WAL
append happens first and the store's commit-ordered ``seq`` is the
single total order across partitions, recovery (latest snapshot + replay
of ``seq > snapshot.seq``) deterministically catches back up: the
recovered shard's digest equals an uncrashed run's, byte for byte.

The :class:`PartitionedDetectorPipeline` is the bus-facing assembly — a
consistent-hash router in front of N workers behind one durable bus tap —
and the :class:`RecoveryCoordinator` is the supervisor that notices dead
workers and brings them back.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional

from repro.analysis.detection import DetectorConfig
from repro.durable.partition import ConsistentHashRouter
from repro.durable.snapshot import SnapshotStore
from repro.durable.wal import WalReader, WalWriter
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.points import POINT_DURABLE_WORKER
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import ProfiledSection, SamplingProfiler
from repro.obs.tracing import Tracer
from repro.stream.bus import EventBus
from repro.stream.detectors import StreamDetectorConfig
from repro.stream.events import StreamEvent
from repro.stream.ledger import SuspicionLedger


class DurableWorkerError(ReproError):
    """Misuse of the worker layer (reading a crashed shard, bad args)."""


class _WorkerMetrics:
    """Per-partition labeled counters for the worker life cycle."""

    __slots__ = ("crashes", "recoveries", "applied", "replay_lag")

    def __init__(self, metrics: MetricsRegistry, label: str) -> None:
        self.crashes = metrics.counter(
            "repro_durable_worker_crashes_total",
            "Detector worker crashes (injected or genuine), by partition.",
            ("partition",),
        ).labels(label)
        self.recoveries = metrics.counter(
            "repro_durable_recoveries_total",
            "Detector worker snapshot+replay recoveries, by partition.",
            ("partition",),
        ).labels(label)
        self.applied = metrics.counter(
            "repro_durable_events_applied_total",
            "Events applied to a live detector shard, by partition.",
            ("partition",),
        ).labels(label)
        self.replay_lag = metrics.gauge(
            "repro_durable_replay_lag_events",
            "Events WAL-appended but not yet applied to the live shard "
            "(grows while a worker is down, drops to 0 on recovery).",
            ("partition",),
        ).labels(label)


class DetectorWorker:
    """One partition's WAL + ledger shard + snapshot checkpoints.

    Parameters
    ----------
    partition:
        This worker's index; names the WAL/snapshot subtree and the
        fault label (``partition-NN``).
    base_dir:
        Root directory; the worker owns ``<base_dir>/partition-NN/``.
    snapshot_every:
        Write a checkpoint every N applied events (0 = only on demand) —
        the cadence knob the E23 sweep turns.
    faults:
        Optional injector consulted at ``durable.worker`` per applied
        event, *after* the WAL append: a fired fault crashes this worker.
    """

    def __init__(
        self,
        partition: int,
        base_dir,
        config: Optional[DetectorConfig] = None,
        stream_config: Optional[StreamDetectorConfig] = None,
        snapshot_every: int = 0,
        segment_max_bytes: int = 1_048_576,
        fsync_every: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if snapshot_every < 0:
            raise DurableWorkerError(
                f"snapshot_every must be >= 0: {snapshot_every}"
            )
        self.partition = partition
        self.label = f"partition-{partition:02d}"
        self.config = config or DetectorConfig()
        self.stream_config = stream_config or StreamDetectorConfig()
        self.snapshot_every = snapshot_every
        root = Path(base_dir) / self.label
        self.wal_dir = root / "wal"
        self.wal = WalWriter(
            self.wal_dir,
            segment_max_bytes=segment_max_bytes,
            fsync_every=fsync_every,
            metrics=metrics,
        )
        self.snapshots = SnapshotStore(
            root / "snapshots", partition=partition, metrics=metrics
        )
        self._registry = metrics
        self._log = log
        self._logger = (
            log.logger("durable.worker") if log is not None else None
        )
        self.faults = faults
        self.tracer = tracer
        self.ledger: Optional[SuspicionLedger] = self._fresh_ledger()
        self.crashed = False
        self.last_applied_seq = -1
        self.events_applied = 0
        self.recoveries = 0
        self.replayed_events = 0
        self.replay_lag = 0
        self._since_snapshot = 0
        self._metrics = (
            _WorkerMetrics(metrics, self.label)
            if metrics is not None
            else None
        )

    def _fresh_ledger(self) -> SuspicionLedger:
        # Shard ledgers never take the registry: the ledger's label-less
        # suspects gauge would be stomped by whichever shard wrote last,
        # and the plain-workload metric catalogue must not grow N copies.
        return SuspicionLedger(
            config=self.config,
            stream_config=self.stream_config,
            log=self._log,
        )

    # Intake ------------------------------------------------------------

    def on_event(self, event: StreamEvent) -> None:
        """Durably log one event, then (if alive) apply it to the shard.

        The append *always* happens — it models the durable intake path
        that outlives the worker process — so a crashed worker keeps
        accumulating replayable history while its ledger is gone.
        """
        self.wal.append(event)
        if self.crashed:
            self.replay_lag += 1
            if self._metrics is not None:
                self._metrics.replay_lag.set(self.replay_lag)
            return
        try:
            if self.faults is not None:
                self.faults.check(
                    POINT_DURABLE_WORKER,
                    label=self.label,
                    trace_id=getattr(event, "trace_id", None),
                )
            self.ledger.on_event(event)
        except Exception as exc:  # noqa: BLE001 - any apply failure is a
            self._crash(event, exc)  # worker death, not a skipped event.
            return
        self.last_applied_seq = event.seq
        self.events_applied += 1
        if self._metrics is not None:
            self._metrics.applied.inc()
        if self.snapshot_every:
            self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_every:
                self.snapshot()

    def _crash(self, event: StreamEvent, exc: Exception) -> None:
        self.crashed = True
        self.ledger = None  # the in-memory shard dies with the worker
        self.replay_lag += 1  # the fatal event reached the WAL, not the shard
        if self._metrics is not None:
            self._metrics.crashes.inc()
            self._metrics.replay_lag.set(self.replay_lag)
        if self._logger is not None:
            self._logger.error(
                "durable.worker_crash",
                partition=self.label,
                seq=event.seq,
                error=f"{type(exc).__name__}: {exc}",
                trace_id=getattr(event, "trace_id", None),
            )

    # Checkpoints -------------------------------------------------------

    def snapshot(self):
        """Checkpoint the live shard at its current watermark."""
        if self.crashed or self.ledger is None:
            raise DurableWorkerError(
                f"{self.label}: cannot snapshot a crashed worker"
            )
        if self.last_applied_seq < 0:
            return None  # nothing applied yet; nothing worth persisting
        path = self.snapshots.write(self.ledger, self.last_applied_seq)
        self._since_snapshot = 0
        if self._logger is not None:
            self._logger.info(
                "durable.snapshot",
                partition=self.label,
                seq=self.last_applied_seq,
                path=str(path),
            )
        return path

    # Recovery ----------------------------------------------------------

    def recover(self) -> int:
        """Rebuild the shard from disk; returns events replayed.

        Load the newest snapshot (if any), then replay every WAL record
        with ``seq > snapshot.seq`` — the recovery protocol
        docs/DURABILITY.md specifies.  Safe to call on a live worker too
        (it proves the cold-start path equals the warm state).
        """
        span = (
            self.tracer.span("durable.replay")
            if self.tracer is not None
            else _NullSpan()
        )
        with span:
            snapshot = self.snapshots.latest()
            if snapshot is not None:
                ledger = snapshot.make_ledger(log=self._log)
                after_seq = snapshot.seq
            else:
                ledger = self._fresh_ledger()
                after_seq = -1
            self.wal.sync()
            reader = WalReader(self.wal_dir, metrics=self._registry)
            replayed = 0
            for event in reader.scan(after_seq=after_seq):
                ledger.on_event(event)
                if event.seq > after_seq:
                    after_seq = event.seq
                replayed += 1
        self.ledger = ledger
        self.crashed = False
        self.last_applied_seq = max(after_seq, snapshot.seq if snapshot else -1)
        self.events_applied += replayed
        self.recoveries += 1
        self.replayed_events += replayed
        self.replay_lag = 0
        self._since_snapshot = 0
        if self._metrics is not None:
            self._metrics.recoveries.inc()
            self._metrics.replay_lag.set(0)
        if self._logger is not None:
            self._logger.info(
                "durable.recovered",
                partition=self.label,
                replayed=replayed,
                from_snapshot=snapshot.seq if snapshot is not None else None,
                watermark=self.last_applied_seq,
            )
        return replayed

    def digest(self) -> str:
        """The live shard's trace-scrubbed state digest."""
        if self.ledger is None:
            raise DurableWorkerError(
                f"{self.label}: crashed shard has no digest; recover first"
            )
        return self.ledger.digest()

    def close(self) -> None:
        """Flush and close the WAL segment."""
        self.wal.close()


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class PartitionedDetectorPipeline:
    """N detector workers behind one consistent-hash router + bus tap.

    Routing: events carrying a user key go to exactly one worker;
    keyless events (venue creation, mayor flips) are broadcast.  With
    ``partitions=1`` the pipeline is semantically identical to a single
    :class:`SuspicionLedger` on the bus — a parity test pins that.
    """

    SUBSCRIBER_NAME = "durable-pipeline"

    def __init__(
        self,
        partitions: int,
        base_dir,
        config: Optional[DetectorConfig] = None,
        stream_config: Optional[StreamDetectorConfig] = None,
        snapshot_every: int = 0,
        segment_max_bytes: int = 1_048_576,
        fsync_every: int = 64,
        virtual_nodes: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.router = ConsistentHashRouter(
            partitions, virtual_nodes=virtual_nodes
        )
        self.base_dir = Path(base_dir)
        self.workers = [
            DetectorWorker(
                partition,
                self.base_dir,
                config=config,
                stream_config=stream_config,
                snapshot_every=snapshot_every,
                segment_max_bytes=segment_max_bytes,
                fsync_every=fsync_every,
                metrics=metrics,
                log=log,
                faults=faults,
                tracer=tracer,
            )
            for partition in range(partitions)
        ]
        self.events_routed = 0

    @property
    def partitions(self) -> int:
        return len(self.workers)

    # Bus side ----------------------------------------------------------

    def on_event(self, event: StreamEvent) -> None:
        """Route one event to its owner (or broadcast keyless events)."""
        self.events_routed += 1
        owner = self.router.route_event(event)
        if owner is None:
            for worker in self.workers:
                worker.on_event(event)
        else:
            self.workers[owner].on_event(event)

    def attach(
        self, bus: EventBus, name: str = SUBSCRIBER_NAME
    ) -> "PartitionedDetectorPipeline":
        """Subscribe as the bus's durable tap; returns self."""
        bus.subscribe(name, self.on_event, durable=True)
        return self

    # Shard management --------------------------------------------------

    def crashed_partitions(self) -> List[int]:
        """Indices of workers currently dead."""
        return [w.partition for w in self.workers if w.crashed]

    def snapshot_all(self) -> int:
        """Checkpoint every live shard; returns snapshots written."""
        written = 0
        for worker in self.workers:
            if not worker.crashed and worker.snapshot() is not None:
                written += 1
        return written

    def digests(self) -> List[str]:
        """Per-partition shard digests, in partition order."""
        return [worker.digest() for worker in self.workers]

    @staticmethod
    def combine(digests: List[str]) -> str:
        """Fold per-shard digests into one pipeline digest."""
        payload = json.dumps(list(digests), separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def combined_digest(self) -> str:
        """One digest over all shards — the pipeline's parity witness."""
        return self.combine(self.digests())

    def suspect_ids(self) -> List[int]:
        """Union of every shard's current suspects (sorted)."""
        ids: List[int] = []
        for worker in self.workers:
            if worker.ledger is not None:
                ids.extend(worker.ledger.suspect_ids())
        return sorted(ids)

    def close(self) -> None:
        """Flush and close every shard's WAL."""
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "PartitionedDetectorPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RecoveryCoordinator:
    """Supervises a pipeline: finds dead workers, replays them back.

    Deliberately dumb — detection is a property read, recovery is the
    worker's own snapshot+replay — so the correctness story stays in one
    place and the coordinator is pure orchestration + telemetry.
    """

    def __init__(
        self,
        pipeline: PartitionedDetectorPipeline,
        log: Optional[LogHub] = None,
        profiler: Optional[SamplingProfiler] = None,
    ) -> None:
        self.pipeline = pipeline
        self._logger = (
            log.logger("durable.coordinator") if log is not None else None
        )
        self._profiler = profiler
        self.recoveries = 0

    def recover_crashed(self) -> List[int]:
        """Recover every crashed worker; returns the partitions revived.

        With a profiler attached, the replay work is attributed to a
        ``durable.recover`` section so recovery storms show up as their
        own band in the collapsed-stack export.
        """
        revived = []
        for partition in self.pipeline.crashed_partitions():
            worker = self.pipeline.workers[partition]
            if self._profiler is not None:
                with ProfiledSection(self._profiler, "durable.recover"):
                    replayed = worker.recover()
            else:
                replayed = worker.recover()
            revived.append(partition)
            self.recoveries += 1
            if self._logger is not None:
                self._logger.info(
                    "durable.coordinator_recovery",
                    partition=worker.label,
                    replayed=replayed,
                )
        return revived


def cold_replay_digests(
    base_dir,
    partitions: int,
    config: Optional[DetectorConfig] = None,
    stream_config: Optional[StreamDetectorConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> List[str]:
    """Rebuild every shard of a WAL tree from disk alone; per-shard digests.

    This is ``repro wal-replay``'s engine: construct workers over an
    existing ``<base_dir>/partition-NN/`` tree, run the recovery protocol
    on each, and report the digests — no bus, no service, no snapshots
    taken.  Snapshot configs recorded in the tree take precedence over
    the passed defaults (exactly as live recovery behaves).
    """
    digests = []
    for partition in range(partitions):
        worker = DetectorWorker(
            partition,
            base_dir,
            config=config,
            stream_config=stream_config,
            metrics=metrics,
            tracer=tracer,
        )
        worker.recover()
        digest = worker.digest()
        worker.close()
        digests.append(digest)
    return digests


__all__ = [
    "DetectorWorker",
    "DurableWorkerError",
    "PartitionedDetectorPipeline",
    "RecoveryCoordinator",
    "cold_replay_digests",
]
