"""Versioned, checksummed snapshots of :class:`SuspicionLedger` state.

A snapshot bounds recovery time: instead of replaying the WAL from seq 0,
a restarted worker loads the newest snapshot and replays only records
with ``seq > snapshot.seq``.  The E23 bench measures exactly that trade
(recovery time vs. replayed WAL length vs. snapshot cadence).

File format — two JSON documents, header line then body::

    {"format": "repro-snapshot", "version": 1,
     "checksum": "<sha256 of body bytes>", "length": <len(body)>}\\n
    <body bytes>

The body carries the snapshot version again (belt and braces: the header
can be regenerated, the body is what the checksum guards), the ``seq``
watermark, the owning partition, both config dataclasses (so a restore
can verify it is being loaded into a compatibly-configured ledger), and
the full ledger state dict.  Writes are atomic — temp file + fsync +
``os.replace`` — so a crash mid-snapshot leaves the previous snapshot
intact and at worst a stray ``.tmp`` file.

Snapshots are named ``snapshot-<seq:012d>.json`` so the newest one is
simply the lexicographically greatest file; superseded snapshots are left
in place (they are small, and keeping them makes the recovery-time curve
in E23 reproducible from any cadence point).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional

from repro.analysis.detection import DetectorConfig
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.stream.detectors import StreamDetectorConfig
from repro.stream.ledger import SuspicionLedger

#: Bumped whenever the body layout changes incompatibly.
SNAPSHOT_VERSION = 1

_FORMAT = "repro-snapshot"


class SnapshotError(ReproError):
    """A snapshot could not be written, located, or validated."""


@dataclasses.dataclass
class Snapshot:
    """One decoded snapshot: the ledger state as of ``seq``."""

    version: int
    seq: int
    partition: int
    detector_config: dict
    stream_config: dict
    ledger_state: dict

    def make_ledger(
        self,
        metrics: Optional[MetricsRegistry] = None,
        log=None,
    ) -> SuspicionLedger:
        """A fresh ledger carrying this snapshot's configs and state."""
        ledger = SuspicionLedger(
            config=DetectorConfig(**self.detector_config),
            stream_config=StreamDetectorConfig(**self.stream_config),
            metrics=metrics,
            log=log,
        )
        ledger.load_state_dict(self.ledger_state)
        return ledger


class _SnapshotMetrics:
    __slots__ = ("writes", "loads", "bytes_written")

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.writes = metrics.counter(
            "repro_snapshot_writes_total",
            "Ledger snapshots written to disk.",
        ).child()
        self.loads = metrics.counter(
            "repro_snapshot_loads_total",
            "Ledger snapshots loaded and checksum-verified.",
        ).child()
        self.bytes_written = metrics.counter(
            "repro_snapshot_bytes_written_total",
            "Bytes written to snapshot files (body + header).",
        ).child()


class SnapshotStore:
    """Reads and writes snapshots in one directory (one per partition)."""

    def __init__(
        self,
        directory: os.PathLike,
        partition: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.partition = partition
        self._metrics = (
            _SnapshotMetrics(metrics) if metrics is not None else None
        )
        self.writes = 0
        self.loads = 0

    # Writing -----------------------------------------------------------

    def write(self, ledger: SuspicionLedger, seq: int) -> Path:
        """Persist ``ledger`` as the state up to and including ``seq``."""
        if seq < 0:
            raise SnapshotError(f"snapshot seq must be >= 0: {seq}")
        body = json.dumps(
            {
                "version": SNAPSHOT_VERSION,
                "seq": seq,
                "partition": self.partition,
                "detector_config": dataclasses.asdict(ledger.config),
                "stream_config": dataclasses.asdict(ledger.stream_config),
                "ledger_state": ledger.state_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        header = json.dumps(
            {
                "format": _FORMAT,
                "version": SNAPSHOT_VERSION,
                "checksum": hashlib.sha256(body).hexdigest(),
                "length": len(body),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        path = self.directory / f"snapshot-{seq:012d}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "wb") as handle:
            handle.write(header + b"\n" + body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.writes += 1
        if self._metrics is not None:
            self._metrics.writes.inc()
            self._metrics.bytes_written.inc(len(header) + 1 + len(body))
        return path

    # Reading -----------------------------------------------------------

    def list_seqs(self) -> List[int]:
        """Watermarks of every snapshot present, oldest first."""
        seqs = []
        for path in self.directory.iterdir():
            name = path.name
            if (
                name.startswith("snapshot-")
                and name.endswith(".json")
                and name[9:-5].isdigit()
            ):
                seqs.append(int(name[9:-5]))
        return sorted(seqs)

    def load(self, seq: int) -> Snapshot:
        """Load and checksum-verify the snapshot taken at ``seq``."""
        path = self.directory / f"snapshot-{seq:012d}.json"
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        newline = raw.find(b"\n")
        if newline < 0:
            raise SnapshotError(f"{path.name}: missing header line")
        try:
            header = json.loads(raw[:newline])
        except ValueError as exc:
            raise SnapshotError(f"{path.name}: bad header: {exc}") from exc
        if header.get("format") != _FORMAT:
            raise SnapshotError(
                f"{path.name}: not a snapshot file "
                f"(format={header.get('format')!r})"
            )
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path.name}: unsupported snapshot version "
                f"{header.get('version')!r} (want {SNAPSHOT_VERSION})"
            )
        body = raw[newline + 1:]
        if len(body) != header.get("length"):
            raise SnapshotError(
                f"{path.name}: truncated body "
                f"({len(body)} bytes, header says {header.get('length')})"
            )
        digest = hashlib.sha256(body).hexdigest()
        if digest != header.get("checksum"):
            raise SnapshotError(f"{path.name}: body checksum mismatch")
        doc = json.loads(body)
        self.loads += 1
        if self._metrics is not None:
            self._metrics.loads.inc()
        return Snapshot(
            version=doc["version"],
            seq=doc["seq"],
            partition=doc["partition"],
            detector_config=doc["detector_config"],
            stream_config=doc["stream_config"],
            ledger_state=doc["ledger_state"],
        )

    def latest(self) -> Optional[Snapshot]:
        """The newest valid-named snapshot, or ``None`` if none exist."""
        seqs = self.list_seqs()
        if not seqs:
            return None
        return self.load(seqs[-1])


__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "SnapshotStore",
]
