"""Online, O(1)-per-event versions of the Chapter-4 identifying factors.

The offline :class:`~repro.analysis.detection.CheaterDetector` scores users
from a *crawl snapshot*: (1) above-normal activity as the recent/total
check-in ratio, (2) below-normal rewards as badge shortfall, (3) suspicious
geographic pattern as the city count of the check-in map.  The detectors in
this module maintain the same three signals *incrementally* from the live
event stream, so a verdict is available the moment a check-in commits —
no re-crawl, no history rescan.

Memory is bounded under millions of users: every per-user table is an
:class:`LruStateMap` capped at ``max_users`` entries with least-recently
-updated eviction (an evicted cheater that keeps cheating re-enters the
table and re-accumulates quickly; an evicted dormant user costs nothing).

Factor parity with the offline detector:

* **activity** — exact.  The detector replays the venue recent-visitor
  list discipline (:data:`repro.lbsn.models.Venue.RECENT_VISITOR_LIMIT`
  distinct users, newest first) per venue and counts, per user, how many
  lists they currently appear on — precisely the crawler's
  ``RecentCheckins`` derived column — plus the same valid+flagged total.
* **reward** — exact.  Badges arrive on the event (``new_badge_count``).
* **pattern** — superset.  The stream clusters *every* valid check-in
  location (greedy leader clustering, same 60 km radius), while the crawl
  only sees venues where the user still sits in the recent list; streaming
  city counts are therefore ≥ the offline counts and flag at least the
  same users.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Generic, List, Optional, Tuple, TypeVar

from repro.analysis.patterns import CITY_CLUSTER_RADIUS_M
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m
from repro.obs.metrics import MetricsRegistry
from repro.stream.events import (
    CheckInAccepted,
    CheckInFlagged,
    StreamEvent,
)


def _scored_counter(metrics: Optional[MetricsRegistry], detector: str):
    """The ``repro_stream_events_scored_total{detector=...}`` child."""
    if metrics is None:
        return None
    return metrics.counter(
        "repro_stream_events_scored_total",
        "Check-in events folded into streaming detector state, "
        "by detector.",
        ("detector",),
    ).labels(detector)

K = TypeVar("K")
V = TypeVar("V")


class LruStateMap(Generic[K, V]):
    """A bounded mapping with least-recently-*touched* eviction.

    Detector state for millions of users cannot all stay resident; this
    map keeps the ``max_entries`` hottest keys and reports how many cold
    ones it evicted (so benches can verify the bound actually engaged).
    Eviction hands the evicted pair to an optional callback so owners can
    decrement cross-table counters.
    """

    def __init__(self, max_entries: int, on_evict=None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self.max_entries = max_entries
        self.evictions = 0
        self._on_evict = on_evict
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def touch(self, key: K, factory) -> V:
        """Get-or-create ``key``, marking it most recently used."""
        data = self._data
        value = data.get(key)
        if value is None and key not in data:
            value = factory()
            data[key] = value
            if len(data) > self.max_entries:
                old_key, old_value = data.popitem(last=False)
                self.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(old_key, old_value)
        else:
            data.move_to_end(key)
        return value

    def get(self, key: K) -> Optional[V]:
        """Peek without changing recency."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def keys(self) -> List[K]:
        """Snapshot of resident keys, coldest first."""
        return list(self._data.keys())

    # Snapshot hooks ----------------------------------------------------
    #
    # Serialized coldest-first and restored by plain insertion in the
    # same order, so the restored map evicts in exactly the order the
    # original would have — recovery must not perturb LRU recency or
    # replayed evictions diverge from the uncrashed run.

    def state_dict(self, encode_value) -> dict:
        """JSON-able snapshot: eviction count + (key, value) pairs."""
        return {
            "evictions": self.evictions,
            "entries": [
                [key, encode_value(value)]
                for key, value in self._data.items()
            ],
        }

    def load_state_dict(self, doc: dict, decode_value) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces contents)."""
        self._data.clear()
        self.evictions = doc["evictions"]
        for key, encoded in doc["entries"]:
            self._data[key] = decode_value(encoded)


@dataclass
class StreamDetectorConfig:
    """Tunables shared by the online detectors."""

    #: LRU bound on per-user state entries (per detector).
    max_users: int = 100_000
    #: LRU bound on per-venue recent-visitor replicas.
    max_venues: int = 200_000
    #: Sliding window for the instantaneous activity rate.
    activity_window_s: float = 7 * 86_400.0
    #: Cap on buffered timestamps per user inside the window.
    max_window_events: int = 512
    #: "Who's been here" replica length (mirrors the venue page).
    recent_visitor_limit: int = 10
    #: Two points within this distance share a "city" (offline constant).
    city_radius_m: float = CITY_CLUSTER_RADIUS_M
    #: Points required before the pattern factor scores at all.
    min_pattern_points: int = 5
    #: Cap on tracked city leaders per user (memory bound; far above the
    #: offline saturating count of 20, so saturation is unaffected).
    max_city_leaders: int = 64


# ---------------------------------------------------------------------------
# Factor 1 — above-normal activity
# ---------------------------------------------------------------------------


@dataclass
class _ActivityState:
    """Per-user activity accumulators."""

    total_checkins: int = 0
    valid_checkins: int = 0
    #: Venue recent-visitor lists this user currently appears on — the
    #: streaming mirror of the crawler's ``RecentCheckins`` column.
    recent_memberships: int = 0
    #: Valid check-in timestamps inside the sliding window.
    window: Deque[float] = field(default_factory=deque)
    #: Trace of the newest event folded into this state (see
    #: :mod:`repro.obs.context`) — lets a downstream flag cite the exact
    #: request that pushed the score over the bar.
    last_trace_id: Optional[str] = None


class ActivityRateDetector:
    """Sliding-window activity rate + exact recent/total ratio.

    Maintains (a) a bounded deque of in-window timestamps per user — the
    "how fast right now" signal the offline pipeline cannot see at all —
    and (b) a replica of every venue's distinct recent-visitor list, from
    which the Fig 4.1 recent/total ratio falls out incrementally.
    """

    def __init__(
        self,
        config: Optional[StreamDetectorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or StreamDetectorConfig()
        self.users: LruStateMap[int, _ActivityState] = LruStateMap(
            self.config.max_users
        )
        # Venue replica eviction must release its members' counters.
        self.venues: LruStateMap[int, List[int]] = LruStateMap(
            self.config.max_venues, on_evict=self._venue_evicted
        )
        self.events_seen = 0
        self._scored = _scored_counter(metrics, "activity")

    def _venue_evicted(self, venue_id: int, visitors: List[int]) -> None:
        for user_id in visitors:
            state = self.users.get(user_id)
            if state is not None and state.recent_memberships > 0:
                state.recent_memberships -= 1

    def on_event(self, event: StreamEvent) -> None:
        """Consume one bus event (non-check-in events are ignored)."""
        if isinstance(event, CheckInAccepted):
            self.events_seen += 1
            if self._scored is not None:
                self._scored.inc()
            state = self.users.touch(event.user_id, _ActivityState)
            state.total_checkins += 1
            state.valid_checkins += 1
            state.last_trace_id = event.trace_id
            self._push_window(state, event.timestamp)
            self._update_recent(event.venue_id, event.user_id)
        elif isinstance(event, CheckInFlagged):
            self.events_seen += 1
            if self._scored is not None:
                self._scored.inc()
            state = self.users.touch(event.user_id, _ActivityState)
            state.total_checkins += 1
            state.last_trace_id = event.trace_id

    def _push_window(self, state: _ActivityState, now: float) -> None:
        window = state.window
        window.append(now)
        horizon = now - self.config.activity_window_s
        while window and window[0] < horizon:
            window.popleft()
        while len(window) > self.config.max_window_events:
            window.popleft()

    def _update_recent(self, venue_id: int, user_id: int) -> None:
        visitors = self.venues.touch(venue_id, list)
        if user_id in visitors:
            visitors.remove(user_id)
        else:
            state = self.users.get(user_id)
            if state is not None:
                state.recent_memberships += 1
        visitors.insert(0, user_id)
        if len(visitors) > self.config.recent_visitor_limit:
            evicted = visitors.pop()
            evicted_state = self.users.get(evicted)
            if evicted_state is not None and evicted_state.recent_memberships > 0:
                evicted_state.recent_memberships -= 1

    # Read side ---------------------------------------------------------

    def totals(self, user_id: int) -> Tuple[int, int]:
        """(recent_memberships, total_checkins) — Fig 4.1's two axes."""
        state = self.users.get(user_id)
        if state is None:
            return (0, 0)
        return (state.recent_memberships, state.total_checkins)

    def last_trace_id(self, user_id: int) -> Optional[str]:
        """Trace of the newest event scored for this user, if any."""
        state = self.users.get(user_id)
        return None if state is None else state.last_trace_id

    def rate_per_hour(self, user_id: int, now: float) -> float:
        """Valid check-ins per hour inside the sliding window."""
        state = self.users.get(user_id)
        if state is None or not state.window:
            return 0.0
        horizon = now - self.config.activity_window_s
        count = sum(1 for ts in state.window if ts >= horizon)
        return count / (self.config.activity_window_s / 3_600.0)

    def activity_score(self, user_id: int, saturating_ratio: float) -> float:
        """The offline activity factor, from streaming state."""
        recent, total = self.totals(user_id)
        if total <= 0:
            return 0.0
        return min(1.0, (recent / total) / saturating_ratio)

    # Snapshot hooks ----------------------------------------------------

    @staticmethod
    def _encode_user(state: _ActivityState) -> list:
        return [
            state.total_checkins,
            state.valid_checkins,
            state.recent_memberships,
            list(state.window),
            state.last_trace_id,
        ]

    @staticmethod
    def _decode_user(doc: list) -> _ActivityState:
        return _ActivityState(
            total_checkins=doc[0],
            valid_checkins=doc[1],
            recent_memberships=doc[2],
            window=deque(doc[3]),
            last_trace_id=doc[4],
        )

    def state_dict(self) -> dict:
        """JSON-able snapshot of every accumulator this detector owns."""
        return {
            "events_seen": self.events_seen,
            "users": self.users.state_dict(self._encode_user),
            "venues": self.venues.state_dict(list),
        }

    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces contents)."""
        self.events_seen = doc["events_seen"]
        self.users.load_state_dict(doc["users"], self._decode_user)
        self.venues.load_state_dict(doc["venues"], list)


# ---------------------------------------------------------------------------
# Factor 2 — below-normal rewards
# ---------------------------------------------------------------------------


@dataclass
class _RewardState:
    """Per-user reward accumulators."""

    total_checkins: int = 0
    badge_count: int = 0
    points: int = 0


class RewardRateDetector:
    """Streaming badge-shortfall: rewards earned vs. activity claimed.

    A cheater piles up check-ins faster than the badge catalogue pays out
    (Fig 4.2's plateau), so badges-per-check-in collapses.  The event
    stream carries each check-in's newly earned badge count, making the
    offline factor exactly reproducible online.
    """

    def __init__(
        self,
        config: Optional[StreamDetectorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or StreamDetectorConfig()
        self.users: LruStateMap[int, _RewardState] = LruStateMap(
            self.config.max_users
        )
        self.events_seen = 0
        self._scored = _scored_counter(metrics, "reward")

    def on_event(self, event: StreamEvent) -> None:
        """Consume one bus event (non-check-in events are ignored)."""
        if isinstance(event, CheckInAccepted):
            self.events_seen += 1
            if self._scored is not None:
                self._scored.inc()
            state = self.users.touch(event.user_id, _RewardState)
            state.total_checkins += 1
            state.badge_count += event.new_badge_count
            state.points += event.points
        elif isinstance(event, CheckInFlagged):
            self.events_seen += 1
            if self._scored is not None:
                self._scored.inc()
            state = self.users.touch(event.user_id, _RewardState)
            state.total_checkins += 1

    def totals(self, user_id: int) -> Tuple[int, int]:
        """(badge_count, total_checkins) for one user."""
        state = self.users.get(user_id)
        if state is None:
            return (0, 0)
        return (state.badge_count, state.total_checkins)

    def reward_score(
        self,
        user_id: int,
        expected_badges_per_100: float,
        badge_ceiling: float,
    ) -> float:
        """The offline reward factor, from streaming state."""
        badges, total = self.totals(user_id)
        if total <= 0:
            return 0.0
        expected = max(
            1.0,
            min(badge_ceiling, total * expected_badges_per_100 / 100.0),
        )
        return max(0.0, 1.0 - badges / expected)

    # Snapshot hooks ----------------------------------------------------

    @staticmethod
    def _encode_user(state: _RewardState) -> list:
        return [state.total_checkins, state.badge_count, state.points]

    @staticmethod
    def _decode_user(doc: list) -> _RewardState:
        return _RewardState(
            total_checkins=doc[0], badge_count=doc[1], points=doc[2]
        )

    def state_dict(self) -> dict:
        """JSON-able snapshot of every accumulator this detector owns."""
        return {
            "events_seen": self.events_seen,
            "users": self.users.state_dict(self._encode_user),
        }

    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces contents)."""
        self.events_seen = doc["events_seen"]
        self.users.load_state_dict(doc["users"], self._decode_user)


# ---------------------------------------------------------------------------
# Factor 3 — suspicious geographic pattern
# ---------------------------------------------------------------------------


@dataclass
class _GeoState:
    """Per-user running geography."""

    point_count: int = 0
    #: Greedy city-cluster leaders (same discipline as
    #: :func:`repro.analysis.patterns.cluster_cities`, applied online).
    leaders: List[GeoPoint] = field(default_factory=list)
    #: Running bounding box (south, west, north, east).
    south: float = 90.0
    west: float = 180.0
    north: float = -90.0
    east: float = -180.0
    last_position: Optional[GeoPoint] = None
    last_timestamp: float = 0.0
    #: Fastest implied hop ever observed (m/s); super-human values are the
    #: §2.3 speed rule reappearing as an analysis signal.
    max_speed_mps: float = 0.0


class GeoDispersionDetector:
    """Streaming geographic dispersion: city count, bbox, hop speed.

    Each valid check-in either joins an existing city cluster (one
    haversine per resident leader, ≤ ``max_city_leaders``) or founds a new
    one — the same greedy-leader rule the offline Fig 4.3/4.4 analysis
    applies to the crawled check-in map, evaluated point-by-point.
    """

    def __init__(
        self,
        config: Optional[StreamDetectorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or StreamDetectorConfig()
        self.users: LruStateMap[int, _GeoState] = LruStateMap(
            self.config.max_users
        )
        self.events_seen = 0
        self._scored = _scored_counter(metrics, "geo")

    def on_event(self, event: StreamEvent) -> None:
        """Consume one bus event (only accepted check-ins map a point)."""
        if not isinstance(event, CheckInAccepted):
            return
        self.events_seen += 1
        if self._scored is not None:
            self._scored.inc()
        state = self.users.touch(event.user_id, _GeoState)
        point = event.venue_location
        state.point_count += 1

        # Running bounding box.
        if point.latitude < state.south:
            state.south = point.latitude
        if point.latitude > state.north:
            state.north = point.latitude
        if point.longitude < state.west:
            state.west = point.longitude
        if point.longitude > state.east:
            state.east = point.longitude

        # Last-position hop speed.
        if state.last_position is not None:
            elapsed = event.timestamp - state.last_timestamp
            distance = haversine_m(state.last_position, point)
            if elapsed > 0.0:
                speed = distance / elapsed
            else:
                speed = math.inf if distance > 0.0 else 0.0
            if speed > state.max_speed_mps:
                state.max_speed_mps = speed
        state.last_position = point
        state.last_timestamp = event.timestamp

        # Greedy leader clustering, online.
        radius = self.config.city_radius_m
        for leader in state.leaders:
            if haversine_m(leader, point) <= radius:
                break
        else:
            if len(state.leaders) < self.config.max_city_leaders:
                state.leaders.append(point)

    # Read side ---------------------------------------------------------

    def city_count(self, user_id: int) -> int:
        """Distinct city clusters seen for this user."""
        state = self.users.get(user_id)
        return 0 if state is None else len(state.leaders)

    def bbox(self, user_id: int) -> Optional[Tuple[float, float, float, float]]:
        """(south, west, north, east) of everywhere the user checked in."""
        state = self.users.get(user_id)
        if state is None or state.point_count == 0:
            return None
        return (state.south, state.west, state.north, state.east)

    def max_speed(self, user_id: int) -> float:
        """Fastest implied inter-check-in speed (m/s) ever observed."""
        state = self.users.get(user_id)
        return 0.0 if state is None else state.max_speed_mps

    def pattern_score(self, user_id: int, saturating_city_count: int) -> float:
        """The offline pattern factor, from streaming state."""
        state = self.users.get(user_id)
        if state is None or state.point_count < self.config.min_pattern_points:
            return 0.0
        return min(1.0, len(state.leaders) / saturating_city_count)

    # Snapshot hooks ----------------------------------------------------
    #
    # ``max_speed_mps`` can legitimately be ``inf`` (zero-elapsed hop);
    # the JSON encoder round-trips it via the non-strict ``Infinity``
    # literal, which :mod:`json` accepts by default.

    @staticmethod
    def _encode_user(state: _GeoState) -> list:
        return [
            state.point_count,
            [[p.latitude, p.longitude] for p in state.leaders],
            [state.south, state.west, state.north, state.east],
            (
                None
                if state.last_position is None
                else [
                    state.last_position.latitude,
                    state.last_position.longitude,
                ]
            ),
            state.last_timestamp,
            state.max_speed_mps,
        ]

    @staticmethod
    def _decode_user(doc: list) -> _GeoState:
        south, west, north, east = doc[2]
        return _GeoState(
            point_count=doc[0],
            leaders=[GeoPoint(lat, lon) for lat, lon in doc[1]],
            south=south,
            west=west,
            north=north,
            east=east,
            last_position=(
                None if doc[3] is None else GeoPoint(doc[3][0], doc[3][1])
            ),
            last_timestamp=doc[4],
            max_speed_mps=doc[5],
        )

    def state_dict(self) -> dict:
        """JSON-able snapshot of every accumulator this detector owns."""
        return {
            "events_seen": self.events_seen,
            "users": self.users.state_dict(self._encode_user),
        }

    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces contents)."""
        self.events_seen = doc["events_seen"]
        self.users.load_state_dict(doc["users"], self._decode_user)
