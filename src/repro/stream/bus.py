"""A thread-safe in-process pub/sub event bus with bounded backpressure.

The bus sits between the :class:`~repro.lbsn.service.LbsnService` check-in
pipeline (the producer) and the online detectors (the consumers).  Design
constraints, in order:

1. **The producer is the hot path.**  A check-in must never slow down
   because a detector is slow — unless the operator explicitly chose the
   ``BLOCK`` policy, in which case backpressure is the point.
2. **Bounded memory.**  Every background subscriber owns a bounded queue;
   a stalled consumer costs at most ``queue_size`` events, accounted for
   by per-subscriber drop counters rather than silent loss.
3. **Deterministic ordering.**  Fan-out preserves publish order per
   subscriber; the publish path stamps a bus-wide monotonic sequence on
   events the producer did not already sequence.

Two dispatch modes, selectable per subscription:

* **synchronous** (default) — ``publish`` invokes the callback inline.
  Cheapest (no queue, no thread), and what the throughput bench exercises;
  the callback runs on the producer thread, so it must be O(1)-ish.
* **background** — ``publish`` enqueues into the subscriber's bounded
  queue and a dedicated daemon thread drains it.  The queue full-policy is
  the subscriber's :class:`BackpressurePolicy`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.points import POINT_STREAM_SUBSCRIBER
from repro.obs.log import LogHub, StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.stream.events import StreamEvent

EventCallback = Callable[[StreamEvent], None]


class BusError(ReproError):
    """Misuse of the event bus (duplicate names, publish after close...)."""


class BackpressurePolicy(Enum):
    """What a background subscription does when its queue is full."""

    #: Producer waits for space — zero loss, shared fate with the consumer.
    BLOCK = "block"
    #: Evict the oldest queued event to admit the new one (lossy, fresh).
    DROP_OLDEST = "drop_oldest"
    #: Refuse the new event (lossy, stale-preserving).
    REJECT = "reject"


@dataclass
class SubscriberStats:
    """Per-subscriber delivery accounting."""

    #: Events whose callback ran to completion (or raised — see errors).
    delivered: int = 0
    #: Events lost to DROP_OLDEST eviction or REJECT refusal.
    dropped: int = 0
    #: Callback invocations that raised (the bus swallows and counts).
    errors: int = 0
    #: High-water mark of the background queue.
    max_queued: int = 0

    @property
    def seen(self) -> int:
        """Everything that reached this subscription, lost or not."""
        return self.delivered + self.dropped


class _SubscriberMetrics:
    """Per-subscriber exported counters (mirrors :class:`SubscriberStats`)."""

    __slots__ = ("delivered", "dropped", "errors", "queue_depth")

    def __init__(self, metrics: MetricsRegistry, name: str) -> None:
        self.delivered = metrics.counter(
            "repro_bus_delivered_total",
            "Events whose subscriber callback completed, by subscriber.",
            ("subscriber",),
        ).labels(name)
        self.dropped = metrics.counter(
            "repro_bus_dropped_total",
            "Events lost to DROP_OLDEST eviction or REJECT refusal, "
            "by subscriber.",
            ("subscriber",),
        ).labels(name)
        self.errors = metrics.counter(
            "repro_bus_subscriber_errors_total",
            "Subscriber callback invocations that raised, by subscriber.",
            ("subscriber",),
        ).labels(name)
        self.queue_depth = metrics.gauge(
            "repro_bus_queue_depth",
            "Events currently queued for a background subscriber.",
            ("subscriber",),
        ).labels(name)


class _Subscription:
    """One subscriber: callback + (for background mode) queue and worker."""

    def __init__(
        self,
        name: str,
        callback: EventCallback,
        background: bool,
        queue_size: int,
        policy: BackpressurePolicy,
        metrics: Optional[MetricsRegistry] = None,
        logger: Optional[StructuredLogger] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.callback = callback
        self.faults = faults
        self.background = background
        self.queue_size = queue_size
        self.policy = policy
        self.stats = SubscriberStats()
        self.metrics = (
            _SubscriberMetrics(metrics, name) if metrics is not None else None
        )
        self.logger = logger
        self.closed = False
        if background:
            self._queue: deque = deque()
            self._cond = threading.Condition()
            self._worker = threading.Thread(
                target=self._drain_loop,
                name=f"bus-sub-{name}",
                daemon=True,
            )
            self._worker.start()

    # Producer side ----------------------------------------------------

    def offer(self, event: StreamEvent) -> None:
        """Hand one event to this subscription (any mode)."""
        if not self.background:
            self._invoke(event)
            return
        with self._cond:
            if self.policy is BackpressurePolicy.BLOCK:
                while len(self._queue) >= self.queue_size and not self.closed:
                    self._cond.wait()
                if self.closed:
                    self._count_dropped(1, event)
                    return
            elif len(self._queue) >= self.queue_size:
                if self.policy is BackpressurePolicy.DROP_OLDEST:
                    evicted = self._queue.popleft()
                    self._count_dropped(1, evicted)
                else:  # REJECT
                    self._count_dropped(1, event)
                    return
            self._queue.append(event)
            if len(self._queue) > self.stats.max_queued:
                self.stats.max_queued = len(self._queue)
            if self.metrics is not None:
                self.metrics.queue_depth.set(len(self._queue))
            self._cond.notify_all()

    def _count_dropped(
        self, count: int, event: Optional[StreamEvent] = None
    ) -> None:
        self.stats.dropped += count
        if self.metrics is not None:
            self.metrics.dropped.inc(count)
        if self.logger is not None:
            self.logger.warning(
                "bus.drop",
                subscriber=self.name,
                policy=self.policy.value,
                count=count,
                trace_id=getattr(event, "trace_id", None),
                seq=event.seq if event is not None else None,
            )

    # Consumer side ----------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self.closed:
                    self._cond.wait()
                if not self._queue and self.closed:
                    self._cond.notify_all()
                    return
                event = self._queue.popleft()
                if self.metrics is not None:
                    self.metrics.queue_depth.set(len(self._queue))
                self._cond.notify_all()
            self._invoke(event)

    def _invoke(self, event: StreamEvent) -> None:
        try:
            if self.faults is not None:
                # Injected subscriber faults (label = subscriber name, so
                # plans can target one victim) take the same isolation
                # path as genuine callback bugs: counted, logged, never
                # propagated to the publisher.
                self.faults.check(
                    POINT_STREAM_SUBSCRIBER,
                    label=self.name,
                    trace_id=getattr(event, "trace_id", None),
                )
            self.callback(event)
        except Exception as exc:  # noqa: BLE001 - subscriber faults must
            self.stats.errors += 1  # not poison the check-in pipeline.
            if self.metrics is not None:
                self.metrics.errors.inc()
            if self.logger is not None:
                self.logger.error(
                    "bus.subscriber_error",
                    subscriber=self.name,
                    error=f"{type(exc).__name__}: {exc}",
                    trace_id=getattr(event, "trace_id", None),
                    seq=event.seq,
                )
        self.stats.delivered += 1
        if self.metrics is not None:
            self.metrics.delivered.inc()

    # Lifecycle --------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the background queue is empty.  True on success."""
        if not self.background:
            return True
        with self._cond:
            return self._cond.wait_for(lambda: not self._queue, timeout)

    def close(self, drain: bool = True) -> None:
        """Stop the worker, optionally delivering everything queued first."""
        if not self.background:
            self.closed = True
            return
        if drain:
            self.drain()
        with self._cond:
            self.closed = True
            if not drain:
                self._count_dropped(len(self._queue))
                self._queue.clear()
                if self.metrics is not None:
                    self.metrics.queue_depth.set(0)
            self._cond.notify_all()
        self._worker.join(timeout=5.0)


class EventBus:
    """Fan-out pub/sub hub for :class:`StreamEvent` records.

    ``publish`` is wait-free with respect to subscription management: the
    subscriber list is an immutable tuple swapped under a lock, so the hot
    path reads one attribute and loops — no lock acquisition per event
    beyond the (cheap) sequence stamp.

    Pass a :class:`~repro.obs.MetricsRegistry` to export the publish
    counter plus per-subscriber delivery/drop/error counters and a
    queue-depth gauge (labeled ``subscriber=<name>``), mirroring the
    in-process :class:`SubscriberStats` for scraping.

    Pass a :class:`~repro.obs.log.LogHub` to record delivery *anomalies*
    as structured records on the ``stream.bus`` logger: WARNING
    ``bus.drop`` per lost event (with the dropped event's ``trace_id``
    when it carried one) and ERROR ``bus.subscriber_error`` per raising
    callback.  The happy path logs nothing — at firehose rates a
    per-delivery record would dwarf the work being delivered.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._subs: Tuple[_Subscription, ...] = ()
        #: Durable taps (WAL writers): delivered before every plain
        #: subscriber so the log always leads derived state.
        self._durable_subs: Tuple[_Subscription, ...] = ()
        self._by_name: Dict[str, _Subscription] = {}
        self._admin = threading.Lock()
        self._seq_lock = threading.Lock()
        self._next_seq = 0
        self._published = 0
        self._closed = False
        self._metrics = metrics
        #: Optional fault injector checked once per delivery at
        #: ``stream.subscriber`` (label = subscriber name).
        self.faults = faults
        self._logger = log.logger("stream.bus") if log is not None else None
        if metrics is not None:
            self._published_metric = metrics.counter(
                "repro_bus_published_total",
                "Events published onto the bus.",
            )
        else:
            self._published_metric = None

    # Subscription management -------------------------------------------

    def subscribe(
        self,
        name: str,
        callback: EventCallback,
        *,
        background: bool = False,
        queue_size: int = 1024,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
        durable: bool = False,
    ) -> SubscriberStats:
        """Register a named subscriber; returns its live stats object.

        ``durable=True`` marks a write-ahead tap (see
        :mod:`repro.durable`): it is delivered *before* every plain
        subscriber on each publish, so the persisted log always leads
        any derived in-memory state.  Durable taps must be synchronous —
        a queue between the bus and the WAL would reorder the
        durability guarantee away.
        """
        if queue_size < 1:
            raise BusError(f"queue_size must be >= 1: {queue_size}")
        if durable and background:
            raise BusError(
                f"durable subscriber {name!r} must be synchronous "
                "(background=False)"
            )
        with self._admin:
            if self._closed:
                raise BusError("bus is closed")
            if name in self._by_name:
                raise BusError(f"duplicate subscriber name: {name!r}")
            sub = _Subscription(
                name,
                callback,
                background,
                queue_size,
                policy,
                metrics=self._metrics,
                logger=self._logger,
                faults=self.faults,
            )
            self._by_name[name] = sub
            if durable:
                self._durable_subs = self._durable_subs + (sub,)
            else:
                self._subs = self._subs + (sub,)
            return sub.stats

    def unsubscribe(self, name: str, drain: bool = True) -> None:
        """Remove a subscriber, draining its queue by default."""
        with self._admin:
            sub = self._by_name.pop(name, None)
            if sub is None:
                raise BusError(f"no such subscriber: {name!r}")
            self._subs = tuple(s for s in self._subs if s is not sub)
            self._durable_subs = tuple(
                s for s in self._durable_subs if s is not sub
            )
        sub.close(drain=drain)

    def subscriber_names(self) -> List[str]:
        """Current subscriber names, durable taps first then plain subs."""
        return [sub.name for sub in self._durable_subs + self._subs]

    def stats_of(self, name: str) -> SubscriberStats:
        """Live stats for one subscriber."""
        with self._admin:
            sub = self._by_name.get(name)
        if sub is None:
            raise BusError(f"no such subscriber: {name!r}")
        return sub.stats

    # Publishing ---------------------------------------------------------

    def publish(self, event: StreamEvent) -> StreamEvent:
        """Fan one event out to every subscriber, stamping ``seq`` if unset.

        Returns the (possibly stamped) event for producer convenience.
        """
        if self._closed:
            raise BusError("publish on a closed bus")
        with self._seq_lock:
            if event.seq < 0:
                event.seq = self._next_seq
                self._next_seq += 1
            elif event.seq >= self._next_seq:
                self._next_seq = event.seq + 1
            self._published += 1
        if self._published_metric is not None:
            self._published_metric.inc()
        for sub in self._durable_subs:
            sub.offer(event)
        for sub in self._subs:
            sub.offer(event)
        return event

    def publish_many(self, events) -> int:
        """Publish an iterable of events; returns how many were published."""
        count = 0
        for event in events:
            self.publish(event)
            count += 1
        return count

    @property
    def published(self) -> int:
        """Total events published since construction."""
        return self._published

    # Lifecycle ----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every background queue is empty."""
        ok = True
        for sub in self._subs:
            ok = sub.drain(timeout) and ok
        return ok

    def close(self, drain: bool = True) -> None:
        """Shut the bus down; further publishes raise :class:`BusError`."""
        with self._admin:
            if self._closed:
                return
            self._closed = True
            subs, self._subs = self._durable_subs + self._subs, ()
            self._durable_subs = ()
            self._by_name.clear()
        for sub in subs:
            sub.close(drain=drain)

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
