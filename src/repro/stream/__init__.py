"""Online event-bus + streaming cheater-detection layer.

The stream layer sits between the service and the analysis stack: the
:class:`~repro.lbsn.service.LbsnService` publishes typed events at the end
of its check-in pipeline, the :class:`EventBus` fans them out under
bounded backpressure, and the incremental detectors keep the Chapter-4
suspicion factors current per event — giving the live verdicts the
offline crawl-then-analyze loop cannot (§4.3's closing complaint).
"""

from repro.stream.bus import (
    BackpressurePolicy,
    BusError,
    EventBus,
    SubscriberStats,
)
from repro.stream.detectors import (
    ActivityRateDetector,
    GeoDispersionDetector,
    LruStateMap,
    RewardRateDetector,
    StreamDetectorConfig,
)
from repro.stream.events import (
    CHECKIN_EVENT_TYPES,
    UNSEQUENCED,
    CheckInAccepted,
    CheckInEvent,
    CheckInFlagged,
    CheckInRejected,
    MayorChanged,
    StreamEvent,
    UserRegistered,
    VenueCreated,
)
from repro.stream.ledger import SuspicionLedger

__all__ = [
    "BackpressurePolicy",
    "BusError",
    "EventBus",
    "SubscriberStats",
    "ActivityRateDetector",
    "GeoDispersionDetector",
    "LruStateMap",
    "RewardRateDetector",
    "StreamDetectorConfig",
    "CHECKIN_EVENT_TYPES",
    "UNSEQUENCED",
    "CheckInAccepted",
    "CheckInEvent",
    "CheckInFlagged",
    "CheckInRejected",
    "MayorChanged",
    "StreamEvent",
    "UserRegistered",
    "VenueCreated",
    "SuspicionLedger",
]
