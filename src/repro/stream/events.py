"""Typed event records for the live check-in firehose.

The offline pipeline observes the service from the *outside* (crawl →
:class:`~repro.crawler.database.CrawlDatabase` → Chapter-4 analyses).  The
stream layer observes it from the *inside*: the service publishes one event
per state transition, in commit order, and online consumers (detectors,
ledgers, defenses) react at check-in time instead of at re-crawl time.

Every event carries:

* ``seq`` — a monotonic sequence number allocated by the
  :class:`~repro.lbsn.store.DataStore` *while the commit lock is held*, so
  event order is exactly check-in commit order even when eight service
  threads race (see :meth:`DataStore.add_checkin_committed`).  Producers
  that do not care (tests, synthetic feeds) may leave it at ``UNSEQUENCED``
  and let the :class:`~repro.stream.bus.EventBus` stamp publish order
  instead.
* ``timestamp`` — the simulated clock time of the transition.

Events are plain mutable dataclasses with ``slots`` — the bus stamps
``seq`` in place on unsequenced events, and slots keep per-event overhead
small at firehose rates.

Every concrete event also carries an optional ``trace_id`` (see
:mod:`repro.obs.context`): the producer stamps the check-in's trace onto
the events it publishes, so online consumers — detectors, the suspicion
ledger, defenses — can cite the *exact request* behind a score or flag,
and ``grep trace_id`` over the structured log reconstructs the full
verify → commit → publish → detect → flag chain.  ``trace_id`` defaults
to ``None`` and costs nothing when tracing is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geo.coordinates import GeoPoint

#: Sentinel ``seq`` for events not yet assigned a sequence number.
UNSEQUENCED = -1


@dataclass(slots=True)
class StreamEvent:
    """Base record: every bus event has a sequence number and a time."""

    seq: int
    timestamp: float

    @property
    def sequenced(self) -> bool:
        """Has a commit-order (or publish-order) sequence been assigned?"""
        return self.seq >= 0


@dataclass(slots=True)
class UserRegistered(StreamEvent):
    """A new account was created."""

    user_id: int
    username: Optional[str] = None
    #: Originating request trace (see :mod:`repro.obs.context`).
    trace_id: Optional[str] = None


@dataclass(slots=True)
class VenueCreated(StreamEvent):
    """A new venue was registered."""

    venue_id: int
    location: Optional[GeoPoint] = None
    #: Originating request trace (see :mod:`repro.obs.context`).
    trace_id: Optional[str] = None


@dataclass(slots=True)
class CheckInEvent(StreamEvent):
    """Common shape of the three check-in outcomes.

    ``venue_location`` is denormalised onto the event so online detectors
    never have to call back into the store (which would re-take the service
    lock from a subscriber thread).
    """

    user_id: int
    venue_id: int
    venue_location: GeoPoint
    reported_location: GeoPoint
    checkin_id: int = 0
    #: Originating request trace (see :mod:`repro.obs.context`).
    trace_id: Optional[str] = None


@dataclass(slots=True)
class CheckInAccepted(CheckInEvent):
    """A valid check-in: recorded, rewarded, recent-visitor list updated."""

    points: int = 0
    new_badge_count: int = 0
    became_mayor: bool = False
    first_visit: bool = False


@dataclass(slots=True)
class CheckInFlagged(CheckInEvent):
    """Recorded but stripped of rewards by the cheater code (§4.3)."""

    rule: Optional[str] = None


@dataclass(slots=True)
class CheckInRejected(CheckInEvent):
    """Refused outright — never recorded as activity."""

    rule: Optional[str] = None


@dataclass(slots=True)
class MayorChanged(StreamEvent):
    """A venue's mayorship moved (or was vacated)."""

    venue_id: int
    new_mayor_id: Optional[int] = None
    previous_mayor_id: Optional[int] = None
    #: Originating request trace (see :mod:`repro.obs.context`).
    trace_id: Optional[str] = None


#: The event types a check-in pipeline can emit, for isinstance fan-out.
CHECKIN_EVENT_TYPES: Tuple[type, ...] = (
    CheckInAccepted,
    CheckInFlagged,
    CheckInRejected,
)
