"""The live :class:`SuspicionLedger`: Chapter-4 verdicts at check-in time.

Subscribes the three online detectors to the event stream and keeps a
rolling set of suspects with the *same* scoring semantics, thresholds, and
:class:`~repro.analysis.detection.SuspicionReport` records as the offline
:class:`~repro.analysis.detection.CheaterDetector` — the ledger is the
"find cheaters Foursquare hasn't found" tool of §4.3 run against the
firehose instead of a crawl snapshot.

A user's report is recomputed in O(1) whenever one of their check-ins
commits; users crossing the reporting bar enter the ledger, users falling
back below it leave.  ``top(k)`` answers "who are the worst offenders
right now" without scanning the population, which is what makes the ledger
usable as an *inline* defense: :class:`repro.defense.integration.
DefendedLbsnService` can consult it on every check-in.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from typing import Dict, List, Optional

from repro.analysis.detection import DetectorConfig, SuspicionReport
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.stream.bus import BackpressurePolicy, EventBus
from repro.stream.detectors import (
    ActivityRateDetector,
    GeoDispersionDetector,
    RewardRateDetector,
    StreamDetectorConfig,
)
from repro.stream.events import CheckInAccepted, CheckInFlagged, StreamEvent


class SuspicionLedger:
    """Top-K live suspect tracking over the event stream.

    Parameters
    ----------
    config:
        The *offline* detector thresholds — passing the same instance to
        both this ledger and a :class:`CheaterDetector` guarantees the
        online/offline parity the E19 bench measures.
    stream_config:
        Memory bounds and window sizes for the incremental detectors.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  The ledger exports
        how many check-ins it has scored
        (``repro_ledger_checkins_scored_total``), how many times a user
        newly crossed the reporting bar
        (``repro_ledger_flags_raised_total``), and the current suspect
        count (``repro_ledger_suspects``); the three detectors export
        their per-detector scoring volume
        (``repro_stream_events_scored_total{detector=...}``).
    log:
        Optional :class:`~repro.obs.log.LogHub`.  Each time a user newly
        crosses the reporting bar the ledger emits one ``ledger.flag``
        record carrying the *triggering event's* ``trace_id`` — the last
        hop of the end-to-end check-in → commit → publish → detect → flag
        chain (see :mod:`repro.obs.context`).
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        stream_config: Optional[StreamDetectorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
    ) -> None:
        self.config = config or DetectorConfig()
        self.stream_config = stream_config or StreamDetectorConfig()
        self.activity = ActivityRateDetector(self.stream_config, metrics)
        self.rewards = RewardRateDetector(self.stream_config, metrics)
        self.geography = GeoDispersionDetector(self.stream_config, metrics)
        self._logger = log.logger("stream.ledger") if log is not None else None
        self._suspects: Dict[int, SuspicionReport] = {}
        #: Trace that raised each live flag (user_id → trace_id).
        self._flag_traces: Dict[int, Optional[str]] = {}
        #: Externally attested suspects (user_id → rule).  Pinned users
        #: stay over the reporting bar regardless of their three-factor
        #: scores: the evidence came from outside the scoring model
        #: (e.g. a honeypot-venue check-in, which no volume threshold
        #: should be able to launder away).  See :meth:`pin`.
        self._pinned: Dict[int, str] = {}
        self._lock = threading.Lock()
        self.events_processed = 0
        self.last_seq = -1
        if metrics is not None:
            self._scored_metric = metrics.counter(
                "repro_ledger_checkins_scored_total",
                "Check-in events rescored by the suspicion ledger.",
            )
            self._flags_metric = metrics.counter(
                "repro_ledger_flags_raised_total",
                "Times a user newly crossed the ledger's reporting bar.",
            )
            self._suspects_metric = metrics.gauge(
                "repro_ledger_suspects",
                "Users currently over the ledger's reporting bar.",
            )
        else:
            self._scored_metric = None
            self._flags_metric = None
            self._suspects_metric = None

    # Event intake -------------------------------------------------------

    def on_event(self, event: StreamEvent) -> None:
        """Feed one bus event through all detectors, then rescore."""
        self.activity.on_event(event)
        self.rewards.on_event(event)
        self.geography.on_event(event)
        if isinstance(event, (CheckInAccepted, CheckInFlagged)):
            with self._lock:
                self.events_processed += 1
                if event.seq > self.last_seq:
                    self.last_seq = event.seq
                self._rescore(event.user_id, trace_id=event.trace_id)
            if self._scored_metric is not None:
                self._scored_metric.inc()

    def attach(
        self,
        bus: EventBus,
        name: str = "suspicion-ledger",
        *,
        background: bool = False,
        queue_size: int = 4096,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
    ) -> "SuspicionLedger":
        """Subscribe this ledger to a bus; returns self for chaining."""
        bus.subscribe(
            name,
            self.on_event,
            background=background,
            queue_size=queue_size,
            policy=policy,
        )
        return self

    # Scoring ------------------------------------------------------------

    def score_user(self, user_id: int) -> SuspicionReport:
        """Build the current three-factor report for one user.

        Mirrors :meth:`CheaterDetector.score_user` formula-for-formula,
        reading streaming state instead of crawl rows.
        """
        config = self.config
        recent, total = self.activity.totals(user_id)
        report = SuspicionReport(user_id=user_id, total_checkins=total)
        if total <= 0:
            return report
        report.activity_score = self.activity.activity_score(
            user_id, config.saturating_ratio
        )
        report.reward_score = self.rewards.reward_score(
            user_id, config.expected_badges_per_100, config.badge_ceiling
        )
        report.city_count = self.geography.city_count(user_id)
        report.pattern_score = self.geography.pattern_score(
            user_id, config.saturating_city_count
        )
        return report

    def _reportable(self, report: SuspicionReport) -> bool:
        if report.user_id in self._pinned:
            return True
        if report.total_checkins < self.config.min_total_checkins:
            return False
        if report.combined_score >= self.config.report_threshold:
            return True
        return report.strongest_factor >= self.config.strong_factor_threshold

    def _rescore(
        self, user_id: int, trace_id: Optional[str] = None
    ) -> None:
        report = self.score_user(user_id)
        if self._reportable(report):
            newly_flagged = user_id not in self._suspects
            if newly_flagged:
                if self._flags_metric is not None:
                    self._flags_metric.inc()
                # Lazy-read rescores carry no event; fall back to the
                # newest trace the activity detector folded in.
                if trace_id is None:
                    trace_id = self.activity.last_trace_id(user_id)
                self._flag_traces[user_id] = trace_id
                if self._logger is not None:
                    self._logger.info(
                        "ledger.flag",
                        trace_id=trace_id,
                        user_id=user_id,
                        combined_score=round(report.combined_score, 4),
                        activity_score=round(report.activity_score, 4),
                        reward_score=round(report.reward_score, 4),
                        pattern_score=round(report.pattern_score, 4),
                        total_checkins=report.total_checkins,
                    )
            self._suspects[user_id] = report
        else:
            self._suspects.pop(user_id, None)
            self._flag_traces.pop(user_id, None)
        if self._suspects_metric is not None:
            self._suspects_metric.set(len(self._suspects))

    # External attestation ----------------------------------------------

    def pin(
        self,
        user_id: int,
        rule: str,
        trace_id: Optional[str] = None,
    ) -> None:
        """Force ``user_id`` over the reporting bar on external evidence.

        Defense tiers outside the three-factor scoring model — the
        honeypot registry foremost (:mod:`repro.defense.honeypot`) — call
        this when they hold proof of cheating that no score can express.
        A pinned user is reportable regardless of check-in volume or
        factor scores, survives the lazy rescore-on-read that would
        otherwise evict a low-volume account, and carries ``rule`` as the
        reason plus the flagging event's ``trace_id`` so
        :meth:`flag_trace_id` links the flag back to the exact request.

        Pinning is idempotent: re-pinning an already-pinned user updates
        the rule but raises no second flag.
        """
        with self._lock:
            newly_flagged = user_id not in self._suspects
            self._pinned[user_id] = rule
            if newly_flagged:
                if self._flags_metric is not None:
                    self._flags_metric.inc()
                self._flag_traces[user_id] = trace_id
                report = self.score_user(user_id)
                self._suspects[user_id] = report
                if self._logger is not None:
                    self._logger.info(
                        "ledger.flag",
                        trace_id=trace_id,
                        user_id=user_id,
                        rule=rule,
                        combined_score=round(report.combined_score, 4),
                        total_checkins=report.total_checkins,
                    )
            if self._suspects_metric is not None:
                self._suspects_metric.set(len(self._suspects))

    def pinned_rule(self, user_id: int) -> Optional[str]:
        """The external rule holding this user on the ledger, if any."""
        with self._lock:
            return self._pinned.get(user_id)

    # Read side ----------------------------------------------------------
    #
    # A user's factors can move without any event of *their own* — other
    # users displace them from recent-visitor lists, lowering the activity
    # ratio — so ledger *membership* is refreshed on read: entry is
    # event-driven, exit is checked lazily.  Rescoring is O(1), and the
    # suspect set is tiny relative to the population, so reads stay cheap.

    def is_suspect(self, user_id: int) -> bool:
        """Is this user currently over the reporting bar?"""
        with self._lock:
            if user_id not in self._suspects:
                return False
            self._rescore(user_id)
            return user_id in self._suspects

    def flag_trace_id(self, user_id: int) -> Optional[str]:
        """Trace of the event that raised this user's live flag, if any."""
        with self._lock:
            return self._flag_traces.get(user_id)

    def suspect_ids(self) -> List[int]:
        """All current suspect user-ids (unordered snapshot)."""
        with self._lock:
            for user_id in list(self._suspects):
                self._rescore(user_id)
            return list(self._suspects)

    def suspects(self) -> List[SuspicionReport]:
        """All current suspects, strongest combined score first."""
        with self._lock:
            for user_id in list(self._suspects):
                self._rescore(user_id)
            reports = list(self._suspects.values())
        reports.sort(key=lambda r: r.combined_score, reverse=True)
        return reports

    def top(self, k: int) -> List[SuspicionReport]:
        """The ``k`` worst offenders right now."""
        return self.suspects()[:k]

    def __len__(self) -> int:
        return len(self._suspects)

    # Snapshot hooks -----------------------------------------------------
    #
    # The durability layer (:mod:`repro.durable.snapshot`) persists the
    # ledger as: this state dict + the ``seq`` watermark.  Recovery loads
    # the dict into a *fresh* ledger and replays the WAL suffix — so the
    # dict must capture every accumulator scoring reads, and nothing
    # environment-dependent.

    def state_dict(self) -> dict:
        """JSON-able snapshot of all ledger + detector state."""
        with self._lock:
            return {
                "events_processed": self.events_processed,
                "last_seq": self.last_seq,
                "suspects": [
                    dataclasses.asdict(self._suspects[user_id])
                    for user_id in sorted(self._suspects)
                ],
                "flag_traces": [
                    [user_id, self._flag_traces[user_id]]
                    for user_id in sorted(self._flag_traces)
                ],
                "pinned": [
                    [user_id, self._pinned[user_id]]
                    for user_id in sorted(self._pinned)
                ],
                "activity": self.activity.state_dict(),
                "rewards": self.rewards.state_dict(),
                "geography": self.geography.state_dict(),
            }

    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces all state)."""
        with self._lock:
            self.events_processed = doc["events_processed"]
            self.last_seq = doc["last_seq"]
            self._suspects = {
                report["user_id"]: SuspicionReport(**report)
                for report in doc["suspects"]
            }
            self._flag_traces = {
                user_id: trace for user_id, trace in doc["flag_traces"]
            }
            # Pre-pinning snapshots (SNAPSHOT_VERSION 1 trees written
            # before the adversary PR) simply carry no pins.
            self._pinned = {
                user_id: rule for user_id, rule in doc.get("pinned", [])
            }
            self.activity.load_state_dict(doc["activity"])
            self.rewards.load_state_dict(doc["rewards"])
            self.geography.load_state_dict(doc["geography"])
        if self._suspects_metric is not None:
            self._suspects_metric.set(len(self._suspects))

    def digest(self) -> str:
        """sha256 over the canonical, *trace-scrubbed* ledger state.

        Trace ids are uuid-per-request and differ between two otherwise
        identical runs, so the crash/replay parity checks compare this
        digest rather than raw state: equal digests ⇔ equal scoring
        state.  (Snapshot round-trips still preserve traces — only the
        digest ignores them.)
        """
        doc = self.state_dict()
        doc.pop("flag_traces")
        for entry in doc["activity"]["users"]["entries"]:
            entry[1][4] = None  # last_trace_id slot
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()
