"""Reproduction of *Location Cheating: A Security Challenge to
Location-based Social Network Services* (Ren, ICDCS 2011 / UNL thesis).

The live 2011 Foursquare service the paper attacked no longer exists, so
this library ships the entire ecosystem as a simulator and runs the paper's
attacks, crawler, analyses, and defenses against it:

* :mod:`repro.lbsn` — the Foursquare-like service (rewards, mayorships,
  the "cheater code", the public website and developer API).
* :mod:`repro.device` — smartphones, GPS modules, the Android-style
  emulator, and the client app.
* :mod:`repro.attack` — the paper's contribution: the four GPS-spoofing
  channels, the cheater-code-evading scheduler, virtual tours, and
  crawl-driven targeting.
* :mod:`repro.crawler` — the multi-threaded profile crawler and its
  three-table database.
* :mod:`repro.analysis` — the Chapter-4 evaluation (Figs 4.1-4.4 and the
  population statistics).
* :mod:`repro.defense` — the Chapter-5 countermeasures.
* :mod:`repro.workload` — synthetic world generation calibrated to the
  paper's measured distributions.
* :mod:`repro.geo`, :mod:`repro.simnet` — geodesy and simulation
  substrates.

Quick start::

    from repro import build_world, build_emulator_attacker
    from repro.geo import GeoPoint

    world = build_world(scale=0.001)
    user, emulator, channel = build_emulator_attacker(world.service)
    channel.set_location(GeoPoint(37.8080, -122.4177))  # Fisherman's Wharf
    venue = world.service.nearby_venues(GeoPoint(37.8080, -122.4177))[0]
    outcome = channel.check_in(venue.venue_id)
    assert outcome.rewarded  # the spoofed check-in passes verification
"""

from repro.attack import (
    CheatingCampaign,
    CheckInScheduler,
    EmulatorSpoofer,
    TourPlanner,
    VenueCatalog,
    VenueProfileAnalyzer,
    build_emulator_attacker,
)
from repro.crawler import (
    CrawlDatabase,
    CrawlMode,
    MultiThreadedCrawler,
    crawl_full_site,
)
from repro.lbsn import CheaterCode, CheaterCodeConfig, LbsnService
from repro.workload import World, build_web_stack, build_world

__version__ = "1.0.0"

__all__ = [
    "CheatingCampaign",
    "CheckInScheduler",
    "EmulatorSpoofer",
    "TourPlanner",
    "VenueCatalog",
    "VenueProfileAnalyzer",
    "build_emulator_attacker",
    "CrawlDatabase",
    "CrawlMode",
    "MultiThreadedCrawler",
    "crawl_full_site",
    "CheaterCode",
    "CheaterCodeConfig",
    "LbsnService",
    "World",
    "build_web_stack",
    "build_world",
    "__version__",
]
