"""The coordinated-adversary workload: rings vs. the honeypot tier.

``run_adversary`` is the E26 driver.  It builds a seeded world, wires the
live defense stack (event bus → :class:`~repro.stream.ledger.
SuspicionLedger` → :class:`~repro.defense.honeypot.HoneypotRegistry`),
seeds honeypot venues at a configurable density, and then plays both
sides of the board:

1. **Rings** — ``rings`` convoys of ``ring_size`` colluding accounts
   (:class:`~repro.adversary.ring.RingCoordinator`), each sweeping a
   seeded sample of targets drawn from :func:`enumerate_targets` — the
   attacker's *exhaustive crawl intelligence*, i.e. the §3.4 easy-mayor-
   special query run over every venue in the store.  Because honeypots
   are seeded to match exactly that profile, they sit inside the target
   pool; because honest itinerary logic never draws from the pool at
   all, only a crawler-scheduled attacker ever lands on one.
2. **Honest control group** — ``honest_accounts`` organic users replay
   plausible home-city traffic drawn strictly from the
   :class:`~repro.workload.venues.GeneratedVenues` lists.  The honeypot
   visibility law (see ``docs/ADVERSARY.md``) makes their honeypot
   false-positive rate structurally zero; the report measures it anyway.
3. **Inline enforcement** — every ring account then attempts one more
   check-in through a :class:`~repro.defense.integration.
   DefendedLbsnService`; accounts the honeypot tier pinned are refused
   with ``RULE_STREAM_SUSPECT`` before any reward logic runs.

The scoreboard is seed-deterministic end to end: same config ⇒ identical
:attr:`AdversaryReport.catch_digest` and :attr:`AdversaryReport.
fp_digest` (``repro adversary --verify`` replays and compares them).
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.adversary.ring import RingConfig, RingCoordinator, RingReport
from repro.analysis.detection import DetectorConfig
from repro.attack.targeting import TargetVenue
from repro.defense.honeypot import HoneypotRegistry
from repro.defense.integration import (
    RULE_STREAM_SUSPECT,
    DefendedLbsnService,
)
from repro.defense.verifier import (
    LocationClaim,
    VerificationOutcome,
    VerificationResult,
)
from repro.errors import ReproError
from repro.lbsn.service import LbsnService
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import SECONDS_PER_DAY
from repro.stream.bus import EventBus
from repro.stream.ledger import SuspicionLedger
from repro.workload.scenario import build_world


@dataclass
class AdversaryConfig:
    """Everything that shapes one adversary run.  All time simulated."""

    #: World size (fraction of the thesis corpus) and world seed.
    scale: float = 0.0005
    seed: int = 42
    #: Coordinated rings and accounts per ring (the literature's 3–5).
    rings: int = 3
    ring_size: int = 4
    #: Target venues each ring samples from the enumeration pool.
    targets_per_ring: int = 24
    #: Honeypots seeded as a fraction of the world's venue count.
    honeypot_density: float = 0.01
    #: Witness window for the convoy's corroborating check-ins.
    witness_window_s: float = 120.0
    #: Honest control group: accounts driven, check-ins each.
    honest_accounts: int = 50
    honest_checkins_each: int = 6
    #: Ledger reporting bar (the streamed-world parity suites use 100).
    detector_min_total_checkins: int = 100
    #: >1 backs the service with a
    #: :class:`~repro.lbsn.sharded.ShardedDataStore` (same API, N locks,
    #: one global sequencer — docs/SHARDING.md), so fleet-scale runs
    #: exercise the sharded commit path.
    store_shards: int = 1


@dataclass
class AdversaryReport:
    """The catch-rate / false-positive scoreboard for one run."""

    config: AdversaryConfig

    # The board.
    honeypots_seeded: int = 0
    target_pool: int = 0
    honeypot_targets: int = 0

    # Attacker side.
    ring_reports: List[RingReport] = field(default_factory=list)
    ring_accounts: List[int] = field(default_factory=list)
    flagged_ring_accounts: List[int] = field(default_factory=list)
    ring_corroboration: float = 0.0

    # Honest side.
    honest_accounts: List[int] = field(default_factory=list)
    flagged_honest_accounts: List[int] = field(default_factory=list)
    honest_checkins: int = 0

    # Inline enforcement.
    post_flag_attempts: int = 0
    post_flag_refusals: int = 0

    # Stream accounting.
    honeypot_checkins: int = 0
    ledger_suspects: int = 0

    # Determinism.
    catch_digest: str = ""
    fp_digest: str = ""
    wall_seconds: float = 0.0

    @property
    def catch_rate(self) -> float:
        """Fraction of ring accounts the honeypot tier caught."""
        if not self.ring_accounts:
            return 0.0
        return len(self.flagged_ring_accounts) / len(self.ring_accounts)

    @property
    def false_positive_rate(self) -> float:
        """Fraction of driven honest accounts carrying a honeypot flag."""
        if not self.honest_accounts:
            return 0.0
        return len(self.flagged_honest_accounts) / len(self.honest_accounts)


class TrustingVerifier:
    """A verifier that accepts every claim.

    The adversary run isolates the *honeypot* tier: the defended wrapper
    must refuse flagged accounts on ledger evidence alone, with no help
    from a physical side channel.
    """

    name = "trusting"

    def verify(self, claim: LocationClaim) -> VerificationResult:
        """Accept unconditionally."""
        return VerificationResult(outcome=VerificationOutcome.ACCEPT)


def enumerate_targets(service: LbsnService) -> List[TargetVenue]:
    """The attacker's exhaustive-crawl target list (§3.4's prime query).

    Walks every venue in the store — the information a full crawl yields
    — and keeps those with a mayor-only special and no current mayor.
    Honest users never run this query; honeypots are built to match it.
    """
    targets = []
    for venue in service.store.iter_venues():
        if (
            venue.special is not None
            and venue.special.mayor_only
            and venue.mayor_id is None
        ):
            targets.append(
                TargetVenue(
                    venue_id=venue.venue_id,
                    name=venue.name,
                    latitude=venue.location.latitude,
                    longitude=venue.location.longitude,
                    special=venue.special.description,
                    reason="mayor-only special with no mayor",
                )
            )
    targets.sort(key=lambda target: target.venue_id)
    return targets


def run_adversary(
    config: Optional[AdversaryConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
) -> AdversaryReport:
    """Run the full adversary scenario; returns the scoreboard."""
    config = config or AdversaryConfig()
    if config.rings < 1:
        raise ReproError(f"need at least one ring: {config.rings}")
    report = AdversaryReport(config=config)
    started = time.perf_counter()

    # -- World + defense wiring ----------------------------------------
    service = LbsnService(
        metrics=metrics, log=log, store_shards=config.store_shards
    )
    bus = EventBus(metrics=metrics, log=log)
    service.event_bus = bus
    ledger = SuspicionLedger(
        config=DetectorConfig(
            min_total_checkins=config.detector_min_total_checkins
        ),
        metrics=metrics,
        log=log,
    ).attach(bus)
    honeypots = HoneypotRegistry(
        service, ledger=ledger, metrics=metrics, log=log
    ).attach(bus)

    world = build_world(scale=config.scale, seed=config.seed, service=service)

    # -- Seed the honeypot tier, AFTER world build ---------------------
    # (so the fakes are absent from every GeneratedVenues list: the
    # visibility law that makes honest false positives structural zeros).
    seeded = honeypots.seed(
        density=config.honeypot_density, seed=config.seed + 11
    )
    report.honeypots_seeded = len(seeded)

    # -- Attacker intelligence: exhaustive enumeration -----------------
    targets = enumerate_targets(service)
    report.target_pool = len(targets)
    report.honeypot_targets = sum(
        1 for target in targets if honeypots.is_honeypot(target.venue_id)
    )
    if not targets:
        raise ReproError("world has no attackable venues")

    # -- Phase 1: the rings sweep --------------------------------------
    rng = random.Random(config.seed + 13)
    corroborations: List[float] = []
    for ring_index in range(config.rings):
        ring_targets = rng.sample(
            targets, min(config.targets_per_ring, len(targets))
        )
        ring = RingCoordinator(
            service,
            RingConfig(
                accounts=config.ring_size,
                seed=config.seed * 1_000 + ring_index,
                witness_window_s=config.witness_window_s,
                name=f"Ring {ring_index + 1}",
            ),
        )
        schedule = ring.plan(ring_targets)
        ring_report = ring.execute(schedule)
        report.ring_reports.append(ring_report)
        report.ring_accounts.extend(ring_report.user_ids)
        corroborations.append(ring_report.corroboration)
    report.ring_corroboration = sum(corroborations) / len(corroborations)

    # -- Phase 2: the honest control group -----------------------------
    _drive_honest_traffic(config, report, world)

    # -- Scoreboard ----------------------------------------------------
    flagged = set(honeypots.flagged_accounts())
    report.flagged_ring_accounts = sorted(
        user_id for user_id in report.ring_accounts if user_id in flagged
    )
    report.flagged_honest_accounts = sorted(
        user_id for user_id in report.honest_accounts if user_id in flagged
    )
    report.honeypot_checkins = honeypots.checkins_observed
    report.ledger_suspects = len(ledger.suspect_ids())

    # -- Phase 3: inline refusal through the defended service ----------
    defended = DefendedLbsnService(
        service,
        TrustingVerifier(),
        physical_locator=lambda user_id: None,
        suspicion_ledger=ledger,
        metrics=metrics,
        log=log,
    )
    probe_target = targets[0]
    probe_ts = service.clock.now() + SECONDS_PER_DAY
    for offset, user_id in enumerate(sorted(report.ring_accounts)):
        report.post_flag_attempts += 1
        result = defended.check_in(
            user_id,
            probe_target.venue_id,
            world.service.store.require_venue(probe_target.venue_id).location,
            timestamp=probe_ts + 120.0 * offset,
        )
        if result.checkin.flagged_rule == RULE_STREAM_SUSPECT:
            report.post_flag_refusals += 1

    report.catch_digest = _digest(
        "catch",
        report.ring_accounts,
        report.flagged_ring_accounts,
        report.honeypots_seeded,
        report.honeypot_targets,
        report.post_flag_refusals,
    )
    report.fp_digest = _digest(
        "fp",
        report.honest_accounts,
        report.flagged_honest_accounts,
        report.honest_checkins,
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def _drive_honest_traffic(
    config: AdversaryConfig, report: AdversaryReport, world
) -> None:
    """Replay organic home-city traffic for a sample of honest users.

    Venue choice draws *only* from the world's GeneratedVenues lists —
    the itinerary sources every honest persona uses — which is exactly
    why none of it can land on a honeypot.
    """
    if config.honest_accounts <= 0 or config.honest_checkins_each <= 0:
        return
    rng = random.Random(config.seed + 17)
    candidates = [
        spec
        for spec in world.population.specs
        if spec.target_checkins > 0
    ]
    if not candidates:
        return
    sample = rng.sample(
        candidates, min(config.honest_accounts, len(candidates))
    )
    service = world.service
    base_ts = service.clock.now() + SECONDS_PER_DAY
    for user_index, spec in enumerate(sample):
        report.honest_accounts.append(spec.user_id)
        pool = (
            world.venues.venue_ids_by_city.get(spec.home_city.name)
            or world.venues.venue_ids
        )
        start = rng.randrange(len(pool))
        for step in range(config.honest_checkins_each):
            # Neighbourhood pace: one venue every 30 simulated minutes,
            # different venue each time — no cheater rule comes close.
            venue_id = pool[(start + step * 3) % len(pool)]
            venue = service.store.require_venue(venue_id)
            service.check_in(
                spec.user_id,
                venue_id,
                venue.location,
                timestamp=base_ts
                + user_index * 7.0
                + step * 1_800.0,
            )
            report.honest_checkins += 1
    report.honest_accounts.sort()


def _digest(kind: str, *parts) -> str:
    """sha256 over a canonical rendering of scoreboard components."""
    hasher = hashlib.sha256(kind.encode())
    for part in parts:
        if isinstance(part, list):
            hasher.update(",".join(str(item) for item in part).encode())
        else:
            hasher.update(str(part).encode())
        hasher.update(b";")
    return hasher.hexdigest()


__all__ = [
    "AdversaryConfig",
    "AdversaryReport",
    "TrustingVerifier",
    "enumerate_targets",
    "run_adversary",
]
