"""Coordinated adversaries: multi-account rings vs. the honeypot tier.

The paper's attacker is one device faking GPS (§3); this package models
the follow-on literature's stronger attacker — colluding account rings
that corroborate each other's fake presence from one shared device — and
drives the measurement workload that scores the matching honeypot-venue
defense (:mod:`repro.defense.honeypot`) by catch rate and false-positive
rate.  See ``docs/ADVERSARY.md`` and the E26 bench.
"""

from repro.adversary.ring import (
    MAX_RING_ACCOUNTS,
    MIN_RING_ACCOUNTS,
    RingConfig,
    RingCoordinator,
    RingEntry,
    RingReport,
    RingSchedule,
)
from repro.adversary.workload import (
    AdversaryConfig,
    AdversaryReport,
    TrustingVerifier,
    enumerate_targets,
    run_adversary,
)

__all__ = [
    "MAX_RING_ACCOUNTS",
    "MIN_RING_ACCOUNTS",
    "RingConfig",
    "RingCoordinator",
    "RingEntry",
    "RingReport",
    "RingSchedule",
    "AdversaryConfig",
    "AdversaryReport",
    "TrustingVerifier",
    "enumerate_targets",
    "run_adversary",
]
