"""Multi-account spoofing rings: one device, N colluding accounts.

The paper's attacker is a single account on a single emulator.  The
follow-on literature (Liu & Papadimitratos 2025, "Coordinated Position
Falsification Attacks") shows the real threat is *coordinated*: a ring of
3–5 accounts driven from one device/IP in quick succession, each account
"witnessing" the others' presence so any naive proximity-corroboration
check passes.

The :class:`RingCoordinator` models that attacker, borrowing its event
shape from the credential-stuffer generator in SNIPPETS.md #1
(``ferd36/anti_abuse``): one source identity, a fixed account rotation,
deterministic seeded pacing.  Concretely:

* All accounts share **one** :class:`~repro.device.emulator.
  DeviceEmulator` (one simulated device, one console, one egress IP);
  each account is a separate :class:`~repro.device.client_app.
  LbsnClientApp` installed on it, spoofing through the same
  ``geo fix`` channel the thesis used.
* The ring moves as a **convoy**: a leader schedule is built with the
  thesis's cheater-code-safe timing rule (:class:`~repro.attack.
  scheduler.CheckInScheduler`), and every other account fires at the
  same venues a fixed, seeded few seconds later — inside the *witness
  window*.  Because each follower's offset is constant, its inter-venue
  intervals equal the leader's, so every account independently satisfies
  the per-user cheater code; the corroboration is free.
* :meth:`RingCoordinator.corroboration` runs the naive defense the ring
  is built to beat — "do ≥2 distinct accounts attest this check-in
  within time τ and radius r?" — and returns the fraction of stops it
  corroborates (1.0 by construction).

Schedules are pure functions of ``(targets, RingConfig.seed)``:
:meth:`RingSchedule.digest` hashes the full firing plan so replay tests
can assert byte-identical schedules across runs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.attack.campaign import greedy_route, tour_from_targets
from repro.attack.scheduler import (
    CheckInScheduler,
    ExecutionReport,
    ScheduledCheckIn,
)
from repro.attack.spoofing import EmulatorSpoofer, SpoofingChannel
from repro.attack.targeting import TargetVenue
from repro.device.client_app import LbsnClientApp
from repro.device.emulator import DeviceEmulator
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m
from repro.lbsn.models import User
from repro.lbsn.service import LbsnService

#: The smallest coordinated ring; below this "collusion" is meaningless.
MIN_RING_ACCOUNTS = 2
#: Rings bigger than this stop looking like one shared device.
MAX_RING_ACCOUNTS = 16


@dataclass
class RingConfig:
    """Shape of one colluding ring."""

    #: Colluding accounts on the shared device (the literature's 3–5).
    accounts: int = 4
    #: Seed of the witness-offset stream; schedules are pure functions
    #: of (targets, seed).
    seed: int = 0
    #: All corroborating check-ins at a venue land within this window.
    witness_window_s: float = 120.0
    #: ... and within this radius of the venue (they all claim the venue
    #: coordinates, so this bounds the corroboration check, not the ring).
    witness_radius_m: float = 250.0
    #: Display-name prefix for the registered accounts.
    name: str = "Ring"


@dataclass(frozen=True)
class RingEntry:
    """One planned firing: which account hits which venue when."""

    fire_at: float
    account_index: int
    venue_id: int
    location: GeoPoint


@dataclass
class RingSchedule:
    """The full convoy plan, in global firing order."""

    entries: List[RingEntry] = field(default_factory=list)
    #: Per-account constant witness offsets (account 0 leads at 0.0).
    offsets: List[float] = field(default_factory=list)
    #: Distinct venues visited, in convoy order.
    venue_ids: List[int] = field(default_factory=list)

    @property
    def stops(self) -> int:
        """Venues the convoy visits."""
        return len(self.venue_ids)

    def digest(self) -> str:
        """sha256 of the firing plan — byte-identical across replays."""
        hasher = hashlib.sha256()
        for entry in self.entries:
            hasher.update(
                f"{entry.fire_at:.3f}:{entry.account_index}:"
                f"{entry.venue_id};".encode()
            )
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class RingReport:
    """What one executed ring did, per account and in aggregate."""

    user_ids: List[int] = field(default_factory=list)
    device_ip: str = ""
    per_account: List[ExecutionReport] = field(default_factory=list)
    schedule_digest: str = ""
    #: Fraction of stops the naive proximity check corroborates.
    corroboration: float = 0.0

    @property
    def attempts(self) -> int:
        """Total check-in attempts across the ring."""
        return sum(r.attempts for r in self.per_account)

    @property
    def rewarded(self) -> int:
        """Attempts that earned rewards."""
        return sum(r.rewarded for r in self.per_account)

    @property
    def detected(self) -> int:
        """Attempts the per-user cheater code caught."""
        return sum(r.detected for r in self.per_account)


RegisterAccount = Callable[[str], User]


class RingCoordinator:
    """Drives N colluding accounts from one simulated device."""

    def __init__(
        self,
        service: LbsnService,
        config: Optional[RingConfig] = None,
        register_account: Optional[RegisterAccount] = None,
    ) -> None:
        self.service = service
        self.config = config or RingConfig()
        accounts = self.config.accounts
        if not MIN_RING_ACCOUNTS <= accounts <= MAX_RING_ACCOUNTS:
            raise ReproError(
                f"ring size must be in "
                f"[{MIN_RING_ACCOUNTS}, {MAX_RING_ACCOUNTS}]: {accounts}"
            )
        register = register_account or (
            lambda name: service.register_user(name)
        )
        # ONE emulator: every account spoofs through the same console,
        # which is exactly the "same IP drives 3-5 accounts in quick
        # succession" signature of the credential-stuffer model.
        self.emulator = DeviceEmulator(
            service.clock, name=f"{self.config.name} device"
        )
        self.emulator.flash_recovery_image("vendor-recovery-2.2")
        self.device_ip = (
            f"203.0.113.{(self.config.seed % 254) + 1}"
        )
        self.users: List[User] = []
        self.channels: List[SpoofingChannel] = []
        for index in range(accounts):
            user = register(f"{self.config.name} Account {index + 1}")
            app = LbsnClientApp(
                service, self.emulator.location_api, user.user_id
            )
            self.emulator.install_app(
                f"{LbsnClientApp.APP_NAME}-{user.user_id}", app
            )
            self.users.append(user)
            self.channels.append(EmulatorSpoofer(self.emulator, app))

    @property
    def user_ids(self) -> List[int]:
        """The ring's account ids, in registration order."""
        return [user.user_id for user in self.users]

    # Planning -----------------------------------------------------------

    def plan(
        self,
        targets: Sequence[TargetVenue],
        start_at: Optional[float] = None,
    ) -> RingSchedule:
        """Build the convoy schedule over ``targets``.

        The leader's schedule obeys the thesis timing rule
        (T = max(5 min, D × 5 min) between venues, one-hour same-venue
        hold-down); follower ``i`` fires a constant seeded offset later,
        strictly inside the witness window.  Constant offsets preserve
        the leader's inter-venue intervals for every follower, so each
        account independently stays inside the cheater-code envelope.
        """
        if not targets:
            raise ReproError("a ring needs at least one target venue")
        rng = random.Random(self.config.seed)
        accounts = self.config.accounts
        # Offsets: account 0 at 0; follower i in its own slice of the
        # window, jittered, ascending — "quick succession", never a tie.
        slice_s = self.config.witness_window_s / accounts
        offsets = [0.0]
        for index in range(1, accounts):
            offsets.append(
                (index - 1) * slice_s
                + rng.uniform(0.3 * slice_s, 0.9 * slice_s)
            )
        leader = CheckInScheduler(self.service.clock)
        tour = tour_from_targets(greedy_route(list(targets)))
        base = leader.build(tour, start_at=start_at)
        schedule = RingSchedule(offsets=offsets)
        for entry in base:
            schedule.venue_ids.append(entry.venue_id)
            for account_index, offset in enumerate(offsets):
                schedule.entries.append(
                    RingEntry(
                        fire_at=entry.fire_at + offset,
                        account_index=account_index,
                        venue_id=entry.venue_id,
                        location=entry.location,
                    )
                )
        schedule.entries.sort(key=lambda e: (e.fire_at, e.account_index))
        return schedule

    # Corroboration ------------------------------------------------------

    def corroboration(self, schedule: RingSchedule) -> float:
        """Run the naive proximity check the ring is built to defeat.

        For each stop: do at least two *distinct* accounts attest a
        presence within ``witness_window_s`` and ``witness_radius_m`` of
        each other?  Returns the corroborated fraction — 1.0 for any
        convoy schedule, which is precisely why corroboration alone is
        worthless against collusion and a honeypot tier is needed.
        """
        if not schedule.venue_ids:
            return 0.0
        by_venue: dict = {}
        for entry in schedule.entries:
            by_venue.setdefault(entry.venue_id, []).append(entry)
        corroborated = 0
        for venue_id in schedule.venue_ids:
            witnesses = by_venue[venue_id]
            ok = False
            for left in witnesses:
                for right in witnesses:
                    if left.account_index == right.account_index:
                        continue
                    close_in_time = (
                        abs(left.fire_at - right.fire_at)
                        <= self.config.witness_window_s
                    )
                    close_in_space = (
                        haversine_m(left.location, right.location)
                        <= self.config.witness_radius_m
                    )
                    if close_in_time and close_in_space:
                        ok = True
                        break
                if ok:
                    break
            if ok:
                corroborated += 1
        return corroborated / len(schedule.venue_ids)

    # Execution ----------------------------------------------------------

    def execute(self, schedule: RingSchedule) -> RingReport:
        """Fire the convoy: advance the clock, spoof, check in, tally."""
        report = RingReport(
            user_ids=self.user_ids,
            device_ip=self.device_ip,
            per_account=[
                ExecutionReport() for _ in range(self.config.accounts)
            ],
            schedule_digest=schedule.digest(),
            corroboration=self.corroboration(schedule),
        )
        clock = self.service.clock
        for entry in schedule.entries:
            if entry.fire_at > clock.now():
                clock.advance_to(entry.fire_at)
            channel = self.channels[entry.account_index]
            channel.set_location(entry.location)
            outcome = channel.check_in(entry.venue_id)
            report.per_account[entry.account_index].record(
                _as_scheduled(entry), outcome
            )
        return report


def _as_scheduled(entry: RingEntry) -> ScheduledCheckIn:
    """Adapt a ring entry to the scheduler's record shape."""
    return ScheduledCheckIn(
        venue_id=entry.venue_id,
        location=entry.location,
        fire_at=entry.fire_at,
    )


__all__ = [
    "MAX_RING_ACCOUNTS",
    "MIN_RING_ACCOUNTS",
    "RingConfig",
    "RingCoordinator",
    "RingEntry",
    "RingReport",
    "RingSchedule",
]
