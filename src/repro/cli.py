"""Command-line interface: ``python -m repro <command>``.

The subcommands walk the paper's arc end to end on freshly built worlds:

* ``demo``          — the E1 spoofed check-in (quickstart).
* ``crawl``         — run the §3.2 crawler and print corpus statistics.
* ``attack``        — spiral tour + mayor-special harvest (§3.3-§3.4).
* ``detect``        — the Chapter-4 three-factor cheater scan (offline).
* ``stream-detect`` — the same three factors, online over the event bus.
* ``defend``        — the Chapter-5 verifier comparison table.
* ``metrics``       — run an instrumented workload, dump the snapshot as
  Prometheus text or JSON (see ``docs/OBSERVABILITY.md``).
* ``top``           — the same workload, watched live: a refreshing
  rate dashboard (plus SLO health panel) over a
  :class:`~repro.obs.TimeSeriesRecorder`.
* ``profile``       — sample the workload with the wall-clock profiler;
  print the hotspot table, optionally dump collapsed stacks.
* ``slo``           — evaluate the default objectives against a workload:
  compliance, error budgets, burn rates, and the health score.

All commands accept ``--scale`` (fraction of the 2010 corpus) and
``--seed``; they build their own world, so runs are independent and
reproducible.  ``repro --version`` prints the library version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.geo.coordinates import GeoPoint


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.0005,
        help="fraction of the 1.89M-user 2010 corpus (default 0.0005)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="world RNG seed (default 42)"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Location Cheating: A Security Challenge to "
            "Location-based Social Network Services' (ICDCS 2011)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the library version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="spoof one remote check-in (E1)")
    _add_common(demo)

    crawl = sub.add_parser("crawl", help="crawl the site, print statistics")
    _add_common(crawl)
    crawl.add_argument(
        "--machines", type=int, default=3, help="crawl machines (default 3)"
    )
    crawl.add_argument(
        "--threads", type=int, default=14, help="threads per machine"
    )

    attack = sub.add_parser("attack", help="tour + harvest (E4/E9)")
    _add_common(attack)
    attack.add_argument(
        "--steps", type=int, default=40, help="spiral steps (default 40)"
    )
    attack.add_argument(
        "--harvest", type=int, default=10, help="special venues to harvest"
    )

    detect = sub.add_parser("detect", help="three-factor cheater scan")
    _add_common(detect)
    detect.add_argument(
        "--min-checkins",
        type=int,
        default=150,
        help="minimum total check-ins to score a user",
    )

    stream = sub.add_parser(
        "stream-detect",
        help="online streaming cheater detection over the live event bus",
    )
    _add_common(stream)
    stream.add_argument(
        "--min-checkins",
        type=int,
        default=150,
        help="minimum total check-ins to score a user",
    )
    stream.add_argument(
        "--top", type=int, default=15, help="suspects to print (default 15)"
    )
    stream.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the offline crawl+detect parity comparison",
    )

    defend = sub.add_parser("defend", help="verifier comparison (E11)")
    _add_common(defend)
    defend.add_argument(
        "--claims", type=int, default=200, help="claims per workload"
    )

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented workload, print the Prometheus snapshot",
    )
    _add_common(metrics)
    metrics.add_argument(
        "--slow-spans",
        type=int,
        default=5,
        help="recent slow spans to list after the snapshot (default 5)",
    )
    metrics.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "snapshot format: Prometheus text exposition or the "
            "/debug/vars JSON shape (default text)"
        ),
    )
    metrics.add_argument(
        "--store-shards",
        type=int,
        default=1,
        help=(
            "shard the service's datastore N ways; N > 1 adds the "
            "per-shard repro_store_shard_* families to the snapshot "
            "(default 1: the single-lock store)"
        ),
    )

    top = sub.add_parser(
        "top",
        help="live rate dashboard over an instrumented workload",
    )
    _add_common(top)
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between dashboard refreshes (default 0.5)",
    )
    top.add_argument(
        "--refreshes",
        type=int,
        default=0,
        help="stop after N refreshes (default 0: until the workload ends)",
    )
    top.add_argument(
        "--rows",
        type=int,
        default=12,
        help="series rows per refresh (default 12)",
    )

    profile = sub.add_parser(
        "profile",
        help="sampling-profile an instrumented workload; hotspot table",
    )
    _add_common(profile)
    profile.add_argument(
        "--seconds",
        type=float,
        default=2.0,
        help="max profiling window in seconds (default 2.0; the run ends "
        "early when the workload finishes)",
    )
    profile.add_argument(
        "--hz",
        type=float,
        default=97.0,
        help="sampling frequency (default 97 Hz)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="hotspot rows to print (default 15)",
    )
    profile.add_argument(
        "--collapsed",
        default=None,
        metavar="PATH",
        help="also write Brendan-Gregg collapsed stacks to PATH",
    )

    slo = sub.add_parser(
        "slo",
        help="evaluate the default SLOs against an instrumented workload",
    )
    _add_common(slo)

    figures = sub.add_parser(
        "figures", help="export every figure's data series as CSV"
    )
    _add_common(figures)
    figures.add_argument(
        "--out",
        default="figures_out",
        help="output directory for CSV files (default ./figures_out)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault storm through every layer; resilience report (E22)",
    )
    _add_common(chaos)
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=1337,
        help="seed of the fault plan's decision streams (default 1337)",
    )
    chaos.add_argument(
        "--checkins",
        type=int,
        default=300,
        help="check-in attempts in the commit storm (default 300)",
    )
    chaos.add_argument(
        "--fetch-failure",
        type=float,
        default=0.20,
        help="per-check crawler fetch failure probability (default 0.20)",
    )
    chaos.add_argument(
        "--subscriber-failure",
        type=float,
        default=0.05,
        help="per-delivery victim-subscriber failure probability "
        "(default 0.05)",
    )
    chaos.add_argument(
        "--no-faults",
        action="store_true",
        help="control run: identical workload with no injector wired",
    )
    chaos.add_argument(
        "--verify",
        action="store_true",
        help="replay the same seeds and assert byte-identical digests",
    )
    chaos.add_argument(
        "--store-shards",
        type=int,
        default=1,
        help="run the storm against an N-way sharded datastore "
        "(default 1: the single-lock store)",
    )

    snapshot = sub.add_parser(
        "snapshot",
        help="write a partitioned WAL + ledger-snapshot tree (repro.durable)",
    )
    _add_common(snapshot)
    snapshot.add_argument(
        "--out",
        default="durable_out",
        help="output directory for the durable tree (default ./durable_out)",
    )
    snapshot.add_argument(
        "--partitions",
        type=int,
        default=4,
        help="detector worker shards (default 4)",
    )
    snapshot.add_argument(
        "--checkins",
        type=int,
        default=300,
        help="check-in storm length (default 300)",
    )
    snapshot.add_argument(
        "--snapshot-every",
        type=int,
        default=100,
        help="auto-checkpoint every N applied events per shard "
        "(default 100; 0 = final snapshot only)",
    )
    snapshot.add_argument(
        "--store-shards",
        type=int,
        default=1,
        help="back the service with an N-way sharded datastore "
        "(default 1: the single-lock store)",
    )

    adversary = sub.add_parser(
        "adversary",
        help="coordinated cheater rings vs. the honeypot tier; "
        "catch-rate/false-positive scoreboard (E26)",
    )
    _add_common(adversary)
    adversary.add_argument(
        "--rings",
        type=int,
        default=3,
        help="coordinated rings to run (default 3)",
    )
    adversary.add_argument(
        "--ring-size",
        type=int,
        default=4,
        help="colluding accounts per ring, 2-16 (default 4)",
    )
    adversary.add_argument(
        "--targets-per-ring",
        type=int,
        default=24,
        help="target venues each ring samples from the crawl "
        "enumeration (default 24)",
    )
    adversary.add_argument(
        "--honeypot-density",
        type=float,
        default=0.01,
        help="honeypots seeded as a fraction of the venue count "
        "(default 0.01; 0 disables the tier)",
    )
    adversary.add_argument(
        "--honest-accounts",
        type=int,
        default=50,
        help="honest control-group accounts driven for the "
        "false-positive measurement (default 50)",
    )
    adversary.add_argument(
        "--store-shards",
        type=int,
        default=1,
        help="run the scenario against an N-way sharded datastore "
        "(default 1: the single-lock store)",
    )
    adversary.add_argument(
        "--verify",
        action="store_true",
        help="replay the same seeds and exit non-zero unless the "
        "catch/FP digests are byte-identical",
    )

    walreplay = sub.add_parser(
        "wal-replay",
        help="cold-replay a durable tree from disk; print shard digests",
    )
    walreplay.add_argument(
        "--dir",
        default="durable_out",
        help="durable tree written by `repro snapshot` "
        "(default ./durable_out)",
    )
    walreplay.add_argument(
        "--verify",
        action="store_true",
        help="exit non-zero unless the replayed digests match the "
        "tree's manifest",
    )
    return parser


def _build(args):
    from repro.workload import build_web_stack, build_world

    world = build_world(scale=args.scale, seed=args.seed)
    stack = build_web_stack(world, seed=args.seed + 1)
    return world, stack


def cmd_demo(args) -> int:
    """E1: one spoofed remote check-in."""
    from repro.attack.spoofing import build_emulator_attacker
    from repro.workload import build_world

    world = build_world(scale=args.scale, seed=args.seed)
    service = world.service
    wharf = service.create_venue(
        "Fisherman's Wharf Sign",
        GeoPoint(37.8080, -122.4177),
        city="San Francisco, CA",
    )
    user, emulator, channel = build_emulator_attacker(service)
    emulator.console.execute("geo fix -122.4177 37.8080")
    outcome = channel.check_in(wharf.venue_id)
    print(
        f"spoofed check-in at '{wharf.name}': status={outcome.status.value} "
        f"points={outcome.points} mayor={outcome.became_mayor}"
    )
    return 0 if outcome.rewarded else 1


def cmd_crawl(args) -> int:
    """Crawl a fresh world and print corpus statistics."""
    from repro.analysis.stats import compute_population_stats, format_stats_table
    from repro.crawler import crawl_full_site

    world, stack = _build(args)
    machines = [stack.network.create_egress() for _ in range(args.machines)]
    database, user_stats, venue_stats = crawl_full_site(
        stack.transport,
        machines,
        user_threads_per_machine=args.threads,
    )
    print(
        f"crawled {database.user_count()} users, "
        f"{database.venue_count()} venues "
        f"({user_stats.threads} user-crawl threads)"
    )
    for row in format_stats_table(compute_population_stats(database)):
        print(row)
    return 0


def cmd_attack(args) -> int:
    """Spiral tour plus mayor-special harvest."""
    from repro.attack import (
        CheatingCampaign,
        CheckInScheduler,
        TourPlanner,
        VenueCatalog,
        VenueProfileAnalyzer,
        build_emulator_attacker,
    )
    from repro.crawler import crawl_full_site
    from repro.geo.regions import city_by_name

    world, stack = _build(args)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress()]
    )
    service = world.service
    _, _, channel = build_emulator_attacker(service)
    scheduler = CheckInScheduler(service.clock)
    planner = TourPlanner(VenueCatalog.from_crawl_database(database))
    tour = planner.plan_city_spiral(
        city_by_name("New York, NY").center, steps=args.steps
    )
    report = scheduler.execute(scheduler.build(tour), channel)
    print(
        f"tour: {report.rewarded}/{report.attempts} rewarded, "
        f"{report.detected} detected, {report.points} points"
    )
    targets = VenueProfileAnalyzer(database).easy_mayor_specials()
    if targets:
        campaign = CheatingCampaign(service.clock, channel, scheduler=scheduler)
        harvest = campaign.harvest(targets[: args.harvest])
        print(
            f"harvest: {harvest.mayorships_won} mayorships, "
            f"{len(harvest.specials)} specials, {harvest.detected} detected"
        )
    return 0 if report.detected == 0 else 1


def cmd_detect(args) -> int:
    """Run the three-factor cheater scan."""
    from repro.analysis.detection import CheaterDetector, DetectorConfig
    from repro.crawler import crawl_full_site

    world, stack = _build(args)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress()]
    )
    detector = CheaterDetector(
        database, DetectorConfig(min_total_checkins=args.min_checkins)
    )
    suspects = detector.find_suspects()
    planted = {spec.user_id: spec.persona.value for spec in world.roster.all_specs()}
    print(f"{len(suspects)} suspects:")
    for report in suspects[:15]:
        tag = planted.get(report.user_id, "organic")
        print(
            f"  user {report.user_id:>6} score={report.combined_score:.2f} "
            f"cities={report.city_count:>3} [{tag}]"
        )
    return 0


def cmd_stream_detect(args) -> int:
    """Online cheater detection: suspects straight off the event bus."""
    import time

    from repro.analysis.detection import CheaterDetector, DetectorConfig
    from repro.lbsn.service import LbsnService
    from repro.stream import EventBus, SuspicionLedger
    from repro.workload import build_web_stack, build_world

    config = DetectorConfig(min_total_checkins=args.min_checkins)
    bus = EventBus()
    ledger = SuspicionLedger(config=config).attach(bus)
    service = LbsnService(event_bus=bus)

    started = time.perf_counter()
    world = build_world(scale=args.scale, seed=args.seed, service=service)
    elapsed = time.perf_counter() - started
    rate = bus.published / elapsed if elapsed > 0 else 0.0
    print(
        f"streamed {bus.published} events "
        f"({ledger.events_processed} check-ins) in {elapsed:.1f}s "
        f"— {rate:,.0f} events/s through the live pipeline"
    )

    planted = {
        spec.user_id: spec.persona.value for spec in world.roster.all_specs()
    }
    suspects = ledger.suspects()
    print(f"{len(suspects)} online suspects (no crawl, no re-scan):")
    for report in suspects[: args.top]:
        tag = planted.get(report.user_id, "organic")
        print(
            f"  user {report.user_id:>6} score={report.combined_score:.2f} "
            f"cities={report.city_count:>3} [{tag}]"
        )

    if args.no_parity:
        return 0

    from repro.crawler import crawl_full_site

    stack = build_web_stack(world, seed=args.seed + 1)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress()]
    )
    offline_ids = {
        r.user_id for r in CheaterDetector(database, config).find_suspects()
    }
    online_ids = set(ledger.suspect_ids())
    overlap = offline_ids & online_ids
    parity = len(overlap) / len(offline_ids) if offline_ids else 1.0
    print(
        f"offline parity: {len(overlap)}/{len(offline_ids)} offline suspects "
        f"also flagged online ({parity:.0%}); "
        f"{len(online_ids - offline_ids)} online-only"
    )
    return 0 if parity >= 0.9 else 1


def cmd_defend(args) -> int:
    """Print the location-verifier comparison table."""
    from repro.defense import (
        AddressMappingVerifier,
        ClaimWorkload,
        DistanceBoundingVerifier,
        deploy_routers,
        evaluate_verifiers,
        format_evaluation_table,
    )
    from repro.geo.regions import city_by_name

    world, stack = _build(args)
    workload = ClaimWorkload(world.service, network=stack.network, seed=5)
    honest = workload.honest_claims(args.claims)
    attacker_at = city_by_name("Albuquerque, NM").center
    attacks = workload.spoofed_claims(args.claims, attacker_at=attacker_at)
    verifiers = [
        DistanceBoundingVerifier(seed=1),
        AddressMappingVerifier(stack.network.geoip),
        deploy_routers(world.service),
    ]
    for row in format_evaluation_table(
        evaluate_verifiers(verifiers, honest, attacks)
    ):
        print(row)
    return 0


def run_metrics_workload(
    scale: float,
    seed: int,
    registry=None,
    log=None,
    store_shards: int = 1,
):
    """Run one end-to-end instrumented workload; returns the registry.

    Exercises every instrumented layer so the registry ends up holding the
    full metric catalogue of ``docs/OBSERVABILITY.md`` (a test asserts the
    parity): an event-bus-connected service populated by the world
    builder (lbsn + store + stream + ledger), all of it logging through
    one :class:`~repro.obs.log.LogHub`, a two-pass crawl of its web
    surface (crawler + fetcher), an inline-defense pass (verdict counters
    + check latency + action tally), an Appendix-A-style worker pool, and
    a ``GET /metrics`` scrape over the simulated HTTP transport.

    Returns ``(registry, exposition, tracer)`` where ``exposition`` is the
    text served by the ``/metrics`` route at the end of the run.

    ``store_shards > 1`` runs the service on a
    :class:`~repro.lbsn.sharded.ShardedDataStore`, which adds the
    per-shard ``repro_store_shard_*`` families to the catalogue; the
    default keeps the single-lock store (and registers no shard-labelled
    series, which the doc-parity tests rely on).
    """
    import threading

    from repro.crawler import crawl_full_site
    from repro.crawler.worker import WorkerPool
    from repro.defense import (
        DefendedLbsnService,
        DeviceRegistry,
        DistanceBoundingVerifier,
        registry_locator,
    )
    from repro.geo.distance import destination_point
    from repro.lbsn.service import LbsnService
    from repro.obs import (
        LogHub,
        ProfiledSection,
        SamplingProfiler,
        SloEngine,
        default_registry,
        default_slos,
    )
    from repro.stream import EventBus, SuspicionLedger
    from repro.workload import build_web_stack, build_world

    registry = registry if registry is not None else default_registry()
    hub = log if log is not None else LogHub(metrics=registry)
    bus = EventBus(metrics=registry, log=hub)
    SuspicionLedger(metrics=registry, log=hub).attach(bus)
    service = LbsnService(
        event_bus=bus, metrics=registry, log=hub, store_shards=store_shards
    )
    world = build_world(scale=scale, seed=seed, service=service)
    stack = build_web_stack(world, seed=seed + 1)
    crawl_full_site(
        stack.transport,
        [stack.network.create_egress()],
        metrics=registry,
    )

    # An inline-defense pass: one honest claim (accepted) and one spoofed
    # claim (device left behind → rejected), so the per-defense verdict
    # counters, check-latency histogram, and action tally all populate.
    devices = DeviceRegistry()
    defended = DefendedLbsnService(
        service,
        DistanceBoundingVerifier(seed=seed + 2),
        registry_locator(devices),
        metrics=registry,
        log=hub,
    )
    venue = service.store.require_venue(world.venues.venue_ids[0])
    user = service.register_user("obs-defense-probe")
    devices.place(user.user_id, venue.location)
    defended.check_in(user.user_id, venue.venue_id, venue.location)
    devices.place(
        user.user_id, destination_point(venue.location, 90.0, 300_000.0)
    )
    defended.check_in(user.user_id, venue.venue_id, venue.location)

    # The Appendix-A worker pool, over a trivial in-memory work source.
    items = list(range(64))
    def drain() -> Optional[bool]:
        try:
            items.pop()
        except IndexError:
            return None
        return True

    WorkerPool(drain, threads=4, metrics=registry).run()

    # A short profiled burst: one helper thread spins inside a tagged
    # section while this thread drives synchronous sampling passes, so
    # the profiler families carry real samples (the catalogue parity
    # test only needs the families, but zero-sample telemetry is a poor
    # advertisement for a profiler).
    profiler = SamplingProfiler(metrics=registry)
    spinning = threading.Event()
    stop_spin = threading.Event()

    def _spin() -> None:
        with ProfiledSection(profiler, "obs.workload"):
            spinning.set()
            while not stop_spin.is_set():
                sum(i * i for i in range(128))

    spinner = threading.Thread(
        target=_spin, name="obs-profile-burst", daemon=True
    )
    spinner.start()
    spinning.wait(timeout=5.0)
    for _ in range(8):
        profiler.sample_once()
    stop_spin.set()
    spinner.join(timeout=5.0)

    # Two SLO evaluation passes (burn windows need at least two points),
    # read straight off the registry the workload just populated.
    engine = SloEngine(registry, default_slos(), metrics=registry, log=hub)
    engine.evaluate()
    engine.evaluate()

    # Scrape the snapshot the way an operator would: over HTTP.
    scrape = stack.transport.get("/metrics", stack.network.create_egress())
    exposition = (
        scrape.body if scrape.ok else registry.render_text()
    )
    return registry, exposition, service.tracer


def cmd_metrics(args) -> int:
    """Dump the snapshot of one instrumented run (text or JSON)."""
    registry, exposition, tracer = run_metrics_workload(
        scale=args.scale, seed=args.seed, store_shards=args.store_shards
    )
    if args.format == "json":
        from repro.obs import registry_to_json

        # The same serializer behind GET /debug/vars: one parser covers
        # the CLI, the web route, and the recorder's exports.
        print(registry_to_json(registry, indent=2))
        return 0
    print(exposition, end="")
    if tracer is not None and args.slow_spans > 0:
        slow = tracer.recent_slow(args.slow_spans)
        if slow:
            print(f"# recent slow spans (worst-case ring, {len(slow)} shown)")
            for record in slow:
                print(f"#   {record}")
    return 0


def _terminal_width(default: int = 100) -> int:
    """Current terminal width (falls back when not a tty)."""
    import shutil

    return shutil.get_terminal_size((default, 24)).columns


def _format_top_rows(
    recorder, limit: int, width: Optional[int] = None
) -> List[str]:
    """The dashboard body: busiest series by current per-second rate.

    Every line is clamped to ``width`` columns so a refresh on a narrow
    terminal never wraps — wrapped rows used to double the frame height
    and scroll earlier refreshes off screen.
    """
    if width is None:
        width = _terminal_width()
    width = max(20, width)
    rows = []
    for name, labelvalues in recorder.series_keys():
        latest = recorder.latest(name, labelvalues)
        if latest is None:
            continue
        rate = recorder.rate_per_s(name, labelvalues)
        label = name if not labelvalues else (
            name + "{" + ",".join(labelvalues) + "}"
        )
        rows.append((rate, latest[1], label))
    rows.sort(key=lambda row: (-row[0], row[2]))
    lines = [f"{'rate/s':>12}  {'value':>14}  series"]
    for rate, value, label in rows[:limit]:
        lines.append(f"{rate:>12.1f}  {value:>14.1f}  {label}")
    return [
        line if len(line) <= width else line[: width - 1] + "…"
        for line in lines
    ]


def _format_health_panel(report, width: Optional[int] = None) -> List[str]:
    """The ``repro top`` SLO panel: health score + the worst objective."""
    if width is None:
        width = _terminal_width()
    width = max(20, width)
    worst = report.status(report.worst) if report.worst else None
    lines = [f"health {report.health_score:5.1f}/100"]
    if worst is not None:
        short = max(worst.burn_rates.values()) if worst.burn_rates else 0.0
        lines[0] += (
            f" | worst {worst.name}: budget "
            f"{worst.budget_remaining:.0%}, burn {short:.1f}x, "
            f"state {worst.state}"
        )
    alerting = [s.name for s in report.statuses if s.state != "ok"]
    if alerting:
        lines.append("alerting: " + ", ".join(alerting))
    return [
        line if len(line) <= width else line[: width - 1] + "…"
        for line in lines
    ]


def cmd_top(args) -> int:
    """Watch an instrumented workload live: rates, not just totals."""
    import threading
    import time as _time

    from repro.obs import (
        MetricsRegistry,
        SloEngine,
        TimeSeriesRecorder,
        default_slos,
    )

    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry)
    engine = SloEngine(registry, default_slos(), metrics=registry)
    done = threading.Event()
    failed = []

    def work() -> None:
        try:
            run_metrics_workload(
                scale=args.scale, seed=args.seed, registry=registry
            )
        except Exception as exc:  # pragma: no cover - surfaced below
            failed.append(exc)
        finally:
            done.set()

    worker = threading.Thread(target=work, name="top-workload", daemon=True)
    recorder.sample()
    worker.start()
    refreshes = 0
    width = _terminal_width()
    while not done.is_set() or refreshes == 0:
        done.wait(args.interval)
        recorder.sample()
        report = engine.evaluate()
        refreshes += 1
        print(f"--- repro top: refresh {refreshes} "
              f"({recorder.samples_taken} samples) ---")
        for line in _format_health_panel(report, width):
            print(line)
        for line in _format_top_rows(recorder, args.rows, width):
            print(line)
        if args.refreshes and refreshes >= args.refreshes:
            break
    worker.join(timeout=60.0)
    _time.sleep(0.0)  # yield to let daemon threads settle before exit
    if failed:
        print(f"workload failed: {failed[0]}", file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    """Sampling-profile the instrumented workload; print the hotspots."""
    import threading

    from repro.obs import MetricsRegistry, SamplingProfiler

    registry = MetricsRegistry()
    profiler = SamplingProfiler(hz=args.hz, metrics=registry)
    done = threading.Event()
    failed = []

    def work() -> None:
        try:
            run_metrics_workload(
                scale=args.scale, seed=args.seed, registry=registry
            )
        except Exception as exc:  # pragma: no cover - surfaced below
            failed.append(exc)
        finally:
            done.set()

    worker = threading.Thread(
        target=work, name="profile-workload", daemon=True
    )
    profiler.start()
    worker.start()
    done.wait(timeout=args.seconds)
    profiler.stop()
    worker.join(timeout=60.0)
    snapshot = profiler.snapshot()
    print(
        f"profiled {snapshot.elapsed_s:.2f}s at {args.hz:g} Hz: "
        f"{snapshot.samples} sampling passes, "
        f"{snapshot.stack_samples} stack samples, "
        f"{len(snapshot.stacks)} unique stacks, "
        f"{snapshot.dropped} dropped"
    )
    top = snapshot.top(args.top)
    if top:
        name_width = max(len(name) for name, _, _ in top)
        print(f"{'self':>8}  {'total':>8}  function")
        for name, self_count, total_count in top:
            print(
                f"{self_count:>8}  {total_count:>8}  "
                f"{name:<{name_width}}"
            )
    if args.collapsed:
        from pathlib import Path

        path = Path(args.collapsed)
        path.write_text(snapshot.collapsed())
        print(f"wrote collapsed stacks to {path}")
    if failed:
        print(f"workload failed: {failed[0]}", file=sys.stderr)
        return 1
    return 0 if snapshot.stack_samples > 0 else 1


def cmd_slo(args) -> int:
    """Evaluate the default objectives against one instrumented run."""
    from repro.obs import MetricsRegistry, SloEngine, default_slos

    registry = MetricsRegistry()
    run_metrics_workload(scale=args.scale, seed=args.seed, registry=registry)
    engine = SloEngine(registry, default_slos(), metrics=registry)
    engine.evaluate()
    report = engine.evaluate()
    name_width = max(len(s.name) for s in report.statuses)
    print(
        f"{'objective':<{name_width}}  {'target':>7}  {'compliance':>10}  "
        f"{'budget':>7}  {'burn':>8}  state"
    )
    for status in report.statuses:
        burn = max(status.burn_rates.values()) if status.burn_rates else 0.0
        print(
            f"{status.name:<{name_width}}  {status.target:>6.1%}  "
            f"{status.compliance:>9.2%}  {status.budget_remaining:>6.0%}  "
            f"{burn:>8.2f}  {status.state}"
        )
    print(
        f"health score: {report.health_score:.1f}/100 "
        f"(worst: {report.worst})"
    )
    return 0


def cmd_figures(args) -> int:
    """Export every figure's data series as CSV files."""
    from pathlib import Path

    from repro.analysis.figures import all_figures, fig_3_5_tour
    from repro.attack.tour import TourPlanner, VenueCatalog
    from repro.crawler import crawl_full_site
    from repro.geo.regions import city_by_name

    world, stack = _build(args)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress()]
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    figures = all_figures(
        database,
        cheater_user_id=(
            world.roster.mega_cheater.user_id
            if world.roster.mega_cheater
            else None
        ),
        normal_user_id=(
            world.roster.power_users[0].user_id
            if world.roster.power_users
            else None
        ),
    )
    planner = TourPlanner(VenueCatalog.from_crawl_database(database))
    tour = planner.plan_city_spiral(
        city_by_name("New York, NY").center, steps=40
    )
    figures.append(fig_3_5_tour(tour))
    for index, figure in enumerate(figures):
        stem = figure.figure.replace("/", "-").replace(".", "_")
        path = out / f"fig_{stem}_{index}.csv"
        path.write_text(figure.to_csv())
        print(f"wrote {path} ({figure.rows} rows) — {figure.title}")
    return 0


def cmd_chaos(args) -> int:
    """E22: the seeded fault storm, with invariant checks."""
    from repro.obs.log import LogHub
    from repro.obs.metrics import MetricsRegistry
    from repro.workload.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        scale=args.scale,
        seed=args.seed,
        fault_seed=args.fault_seed,
        checkins=args.checkins,
        fetch_failure=args.fetch_failure,
        subscriber_failure=args.subscriber_failure,
        faults_enabled=not args.no_faults,
        store_shards=args.store_shards,
    )
    metrics = MetricsRegistry()
    log = LogHub(metrics=metrics)
    report = run_chaos(config, metrics=metrics, log=log)
    crawl = report.crawl
    print(
        f"chaos seed={config.seed}/{config.fault_seed} "
        f"storm={'off' if args.no_faults else 'on'} "
        f"({report.wall_seconds:.2f}s wall, simulated time throughout)"
    )
    if crawl is not None:
        print(
            f"  crawl: {crawl.hits} hits / {crawl.failures} failures "
            f"({crawl.transient_failures} transient), "
            f"aborted={report.crawl_aborted}, "
            f"breaker opens={report.crawler_breaker_opens}"
        )
    print(
        f"  commits: {report.checkins_returned}/"
        f"{report.checkins_attempted} returned, "
        f"{report.commit_retries} retries, "
        f"{report.commit_exhausted} exhausted"
    )
    print(
        f"  bus: victim errors={report.victim_errors} "
        f"(isolated), ledger suspects={len(report.ledger_suspects)}"
    )
    print(
        f"  breaker drill: opened after "
        f"{report.breaker_failures_to_open} failures, "
        f"half-open={report.breaker_half_opened}, "
        f"re-opened on probe failure="
        f"{report.breaker_reopened_on_probe_failure}, "
        f"closed={report.breaker_closed_after_probe}"
    )
    statuses = ", ".join(
        f"{status}:{count}"
        for status, count in sorted(report.web_statuses.items())
    )
    print(
        f"  web: [{statuses}] metrics_ok={report.metrics_route_ok} "
        f"vars_ok={report.debug_vars_route_ok} "
        f"logs_ok={report.debug_logs_route_ok}"
    )
    fired = ", ".join(
        f"{point}={count}"
        for point, count in sorted(report.faults_fired.items())
    )
    print(f"  faults fired: {fired or '(none)'}")
    print(f"  fault sequence digest: {report.fault_sequence_digest or '-'}")
    print(f"  committed state digest: {report.committed_state_digest}")
    ok = report.commit_exhausted == 0 and not report.crawl_aborted
    if args.verify:
        replay = run_chaos(config)
        seq_ok = (
            replay.fault_sequence_digest == report.fault_sequence_digest
        )
        state_ok = (
            replay.committed_state_digest == report.committed_state_digest
        )
        suspects_ok = replay.ledger_suspects == report.ledger_suspects
        print(
            f"  replay: fault sequence identical={seq_ok}, "
            f"end state identical={state_ok}, "
            f"ledger suspects identical={suspects_ok}"
        )
        if not (seq_ok and state_ok and suspects_ok):
            print("  VERIFY FAILED: replay digests diverged", file=sys.stderr)
        ok = ok and seq_ok and state_ok and suspects_ok
    return 0 if ok else 1


def cmd_snapshot(args) -> int:
    """Write a partitioned WAL + snapshot tree and its manifest."""
    from repro.workload.durable import DurableConfig, write_durable_tree

    config = DurableConfig(
        scale=args.scale,
        seed=args.seed,
        partitions=args.partitions,
        checkins=args.checkins,
        snapshot_every=args.snapshot_every,
        store_shards=args.store_shards,
    )
    report = write_durable_tree(config, args.out)
    print(
        f"durable tree at {args.out}: {config.partitions} partitions, "
        f"{report.events_published} events "
        f"(watermark {report.watermark}), "
        f"{report.checkins_returned}/{report.checkins_attempted} "
        f"storm check-ins ({report.wall_seconds:.2f}s wall)"
    )
    print(
        f"  wal: {report.wal_appended} records, {report.wal_bytes} bytes, "
        f"{report.wal_segments} segments, {report.wal_fsyncs} fsyncs"
    )
    print(f"  snapshots: {report.snapshots_written} shard checkpoints")
    for partition, digest in enumerate(report.victim_digests):
        print(f"  partition-{partition:02d} digest: {digest}")
    print(f"  combined digest: {report.victim_combined}")
    return 0


def cmd_adversary(args) -> int:
    """E26: coordinated rings vs. honeypots, with the scoreboard."""
    from repro.adversary import AdversaryConfig, run_adversary
    from repro.obs.log import LogHub
    from repro.obs.metrics import MetricsRegistry

    config = AdversaryConfig(
        scale=args.scale,
        seed=args.seed,
        rings=args.rings,
        ring_size=args.ring_size,
        targets_per_ring=args.targets_per_ring,
        honeypot_density=args.honeypot_density,
        honest_accounts=args.honest_accounts,
        store_shards=args.store_shards,
    )
    metrics = MetricsRegistry()
    log = LogHub(metrics=metrics)
    report = run_adversary(config, metrics=metrics, log=log)
    print(
        f"adversary seed={config.seed} scale={config.scale} "
        f"shards={config.store_shards} "
        f"({report.wall_seconds:.2f}s wall, simulated time throughout)"
    )
    print(
        f"  board: {report.honeypots_seeded} honeypots seeded, "
        f"target pool {report.target_pool} "
        f"({report.honeypot_targets} honeypots in pool)"
    )
    print(
        f"  rings: {config.rings} x {config.ring_size} accounts, "
        f"corroboration {report.ring_corroboration:.2f}, "
        f"{report.honeypot_checkins} honeypot check-ins observed"
    )
    print(
        f"  catch rate: {report.catch_rate:.3f} "
        f"({len(report.flagged_ring_accounts)}/"
        f"{len(report.ring_accounts)} ring accounts flagged)"
    )
    print(
        f"  false positives: {report.false_positive_rate:.3f} "
        f"({len(report.flagged_honest_accounts)}/"
        f"{len(report.honest_accounts)} honest accounts, "
        f"{report.honest_checkins} honest check-ins driven)"
    )
    print(
        f"  inline refusals: {report.post_flag_refusals}/"
        f"{report.post_flag_attempts} post-flag attempts refused"
    )
    print(f"  catch digest: {report.catch_digest}")
    print(f"  fp digest: {report.fp_digest}")
    ok = True
    if args.verify:
        replay = run_adversary(config)
        catch_ok = replay.catch_digest == report.catch_digest
        fp_ok = replay.fp_digest == report.fp_digest
        print(
            f"  replay: catch digest identical={catch_ok}, "
            f"fp digest identical={fp_ok}"
        )
        if not (catch_ok and fp_ok):
            print("  VERIFY FAILED: replay digests diverged", file=sys.stderr)
        ok = catch_ok and fp_ok
    return 0 if ok else 1


def cmd_wal_replay(args) -> int:
    """Cold-replay a durable tree; optionally verify against its manifest."""
    from pathlib import Path

    from repro.durable.snapshot import SnapshotError
    from repro.durable.wal import WalCorruptionError
    from repro.workload.durable import replay_durable_tree

    if not Path(args.dir).is_dir():
        print(f"no durable tree at {args.dir}", file=sys.stderr)
        return 1
    try:
        result = replay_durable_tree(args.dir)
    except (WalCorruptionError, SnapshotError) as exc:
        print(f"REPLAY FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"replayed {result['partitions']} partition(s) from {args.dir}"
    )
    for partition, digest in enumerate(result["digests"]):
        print(f"  partition-{partition:02d} digest: {digest}")
    print(f"  combined digest: {result['combined_digest']}")
    if not args.verify:
        return 0
    if result["manifest"] is None:
        print(
            "VERIFY FAILED: tree has no manifest.json "
            "(write one with `repro snapshot`)",
            file=sys.stderr,
        )
        return 1
    if not result["matches_manifest"]:
        print(
            "VERIFY FAILED: replayed combined digest "
            f"{result['combined_digest']} != manifest "
            f"{result['manifest'].get('combined_digest')}",
            file=sys.stderr,
        )
        return 1
    print("  verify: replayed digests match the manifest")
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "crawl": cmd_crawl,
    "attack": cmd_attack,
    "detect": cmd_detect,
    "stream-detect": cmd_stream_detect,
    "defend": cmd_defend,
    "metrics": cmd_metrics,
    "top": cmd_top,
    "profile": cmd_profile,
    "slo": cmd_slo,
    "figures": cmd_figures,
    "chaos": cmd_chaos,
    "snapshot": cmd_snapshot,
    "adversary": cmd_adversary,
    "wal-replay": cmd_wal_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
