"""Deterministic fault plans: *what* goes wrong, *where*, *how often*.

The thesis's crawler and cheating scheduler only worked because they
survived a flaky, rate-limited live service (§3.2: multi-threaded
crawling through IP bans, retries, and pacing).  Our simulation has no
accidental flakiness, so this module supplies the deliberate kind: a
:class:`FaultPlan` is a seeded catalogue of :class:`FaultSpec` entries,
each naming a failure point (see :mod:`repro.faults.points`), a firing
probability, and what firing means — an error, added latency, or an
HTTP status.

Determinism contract
--------------------
Every ``(point, spec)`` pair owns its *own* :class:`random.Random`
seeded from ``(plan seed, point, spec index)``.  The decision for the
k-th check at a point is therefore a pure function of the seed and k —
independent of thread interleaving, of activity at other points, and of
how many other plans share the process.  The chaos suite replays a seed
twice and asserts the byte-identical fault sequence this guarantees.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import ReproError
from repro.faults.points import (
    POINT_CRAWLER_FETCH,
    POINT_SIMNET_REQUEST,
    POINT_STORE_COMMIT,
    POINT_STREAM_SUBSCRIBER,
    POINT_WEB_REQUEST,
)


class FaultPlanError(ReproError):
    """Misuse of the fault-plan API (bad probability, duplicate spec...)."""


class FaultKind(Enum):
    """What a fired fault does to the caller."""

    #: Raise a typed error (``spec.error`` or ``FaultInjectedError``).
    ERROR = "error"
    #: Charge ``latency_s`` to the simulated clock, then proceed.
    LATENCY = "latency"
    #: Surface as an HTTP response with ``spec.status`` (transport/web
    #: layers turn this into a real response; ``check()`` raises
    #: :class:`~repro.errors.HttpError`).
    HTTP = "http"


@dataclass(frozen=True)
class FaultSpec:
    """One failure mode at one failure point."""

    #: Which failure point this spec arms (see :mod:`repro.faults.points`).
    point: str
    #: Per-check probability of starting to fire, in [0, 1].
    probability: float
    #: What firing does (error / latency / http).
    kind: FaultKind = FaultKind.ERROR
    #: Once fired, also fire the next ``burst - 1`` checks — models IP-ban
    #: bursts and correlated outages rather than i.i.d. coin flips.
    burst: int = 1
    #: Simulated seconds charged when this fires (all kinds may slow).
    latency_s: float = 0.0
    #: HTTP status for :attr:`FaultKind.HTTP` specs.
    status: int = 500
    #: Error class raised for :attr:`FaultKind.ERROR` specs; defaults to
    #: :class:`~repro.errors.FaultInjectedError` when None.  The class is
    #: constructed as ``error(message)``.
    error: Optional[Type[BaseException]] = None
    #: Stop firing after this many fires (None = unlimited).
    max_fires: Optional[int] = None
    #: When set, only checks carrying one of these labels may fire
    #: (e.g. target one bus subscriber by name).
    only_labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.point:
            raise FaultPlanError("fault spec needs a point name")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1]: {self.probability}"
            )
        if self.burst < 1:
            raise FaultPlanError(f"burst must be >= 1: {self.burst}")
        if self.latency_s < 0:
            raise FaultPlanError(
                f"latency_s must be non-negative: {self.latency_s}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise FaultPlanError(
                f"max_fires must be non-negative: {self.max_fires}"
            )


class FaultPlan:
    """A seeded, ordered collection of fault specs.

    Plans are *descriptions* — pure data plus a seed.  The runtime state
    (per-spec RNG streams, burst counters, fire tallies) lives in the
    :class:`~repro.faults.injector.FaultInjector` built from a plan, so
    one plan can drive many independent, identically-behaving injectors.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: List[FaultSpec] = []

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append one spec; returns self for chaining."""
        self._specs.append(spec)
        return self

    def specs(self) -> List[FaultSpec]:
        """All specs, in arming order."""
        return list(self._specs)

    def specs_for(self, point: str) -> List[FaultSpec]:
        """Specs armed at one failure point, in arming order."""
        return [spec for spec in self._specs if spec.point == point]

    def points(self) -> List[str]:
        """Distinct armed points, in first-arming order."""
        seen: Dict[str, None] = {}
        for spec in self._specs:
            seen.setdefault(spec.point, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._specs)

    def spec_seed(self, spec_index: int) -> int:
        """The deterministic RNG seed for one spec's decision stream.

        Derived by hashing ``(plan seed, point, spec index)`` so streams
        never alias across points or across specs at the same point.
        """
        spec = self._specs[spec_index]
        digest = hashlib.sha256(
            f"{self.seed}:{spec.point}:{spec_index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big")

    # Canned plans -------------------------------------------------------

    @classmethod
    def standard_storm(
        cls,
        seed: int = 0,
        fetch_failure: float = 0.2,
        subscriber_failure: float = 0.05,
        commit_failure: float = 0.05,
        web_failure: float = 0.10,
        network_latency_s: float = 0.04,
        network_latency_probability: float = 0.10,
        victim_subscriber: Optional[str] = "chaos-victim",
    ) -> "FaultPlan":
        """The standard fault storm used by E22, ``repro chaos``, and tests.

        20% fetch failure / 5% bus-subscriber failure by default — the
        acceptance storm — plus light commit contention, injected web
        5xx, and network latency shaping.  ``victim_subscriber`` scopes
        the subscriber faults to one named subscriber (None = all).
        """
        from repro.errors import CommitContentionError

        plan = cls(seed=seed)
        if fetch_failure > 0:
            plan.add(
                FaultSpec(
                    point=POINT_CRAWLER_FETCH,
                    probability=fetch_failure,
                    kind=FaultKind.ERROR,
                )
            )
        if subscriber_failure > 0:
            plan.add(
                FaultSpec(
                    point=POINT_STREAM_SUBSCRIBER,
                    probability=subscriber_failure,
                    kind=FaultKind.ERROR,
                    only_labels=(
                        (victim_subscriber,)
                        if victim_subscriber is not None
                        else None
                    ),
                )
            )
        if commit_failure > 0:
            plan.add(
                FaultSpec(
                    point=POINT_STORE_COMMIT,
                    probability=commit_failure,
                    kind=FaultKind.ERROR,
                    error=CommitContentionError,
                )
            )
        if web_failure > 0:
            plan.add(
                FaultSpec(
                    point=POINT_WEB_REQUEST,
                    probability=web_failure,
                    kind=FaultKind.HTTP,
                    status=500,
                )
            )
        if network_latency_probability > 0 and network_latency_s > 0:
            plan.add(
                FaultSpec(
                    point=POINT_SIMNET_REQUEST,
                    probability=network_latency_probability,
                    kind=FaultKind.LATENCY,
                    latency_s=network_latency_s,
                )
            )
        return plan


__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
]
