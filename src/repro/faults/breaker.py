"""A thread-safe circuit breaker paced by an injectable clock.

The crawler's §3.2 reality was IP bans: once the service starts refusing
an egress, hammering it harder only extends the ban.  A
:class:`CircuitBreaker` encodes the fix — after ``failure_threshold``
consecutive failures the circuit *opens* and calls fail fast with
:class:`~repro.errors.BreakerOpenError`; after ``reset_timeout_s`` on
the injected clock it *half-opens* and admits up to
``half_open_probes`` trial calls; a probe success closes the circuit,
a probe failure re-opens it and re-arms the timer.

``now_fn`` is any zero-argument float callable.  Tests and the chaos
harness pass ``SimClock.now``, so breakers open and half-open entirely
in simulated time — no wall-clock sleeps anywhere.

Telemetry (optional): ``repro_breaker_state{name}`` gauge (0 closed,
1 open, 2 half-open), ``repro_breaker_transitions_total{name,state}``
per transition, ``repro_breaker_short_circuits_total{name}`` per
fast-failed call; INFO/WARNING ``breaker.*`` records on the
``faults.breaker`` logger under the ambient trace_id.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable, Optional, TypeVar

from repro.errors import BreakerOpenError, ReproError
from repro.obs.context import current_trace
from repro.obs.log import LogHub, StructuredLogger
from repro.obs.metrics import MetricsRegistry

T = TypeVar("T")


class BreakerError(ReproError):
    """Misuse of the circuit-breaker API (bad threshold, bad timeout...)."""


class BreakerState(Enum):
    """The classic three states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding of the state, documented in docs/RESILIENCE.md.
_STATE_VALUE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.OPEN: 1.0,
    BreakerState.HALF_OPEN: 2.0,
}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        now_fn: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
    ) -> None:
        if failure_threshold < 1:
            raise BreakerError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise BreakerError(
                f"reset_timeout_s must be non-negative: {reset_timeout_s}"
            )
        if half_open_probes < 1:
            raise BreakerError(
                f"half_open_probes must be >= 1: {half_open_probes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._now = now_fn if now_fn is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_granted = 0
        self._open_count = 0
        self._logger: Optional[StructuredLogger] = (
            log.logger("faults.breaker") if log is not None else None
        )
        if metrics is not None:
            self._state_metric = metrics.gauge(
                "repro_breaker_state",
                "Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
                ("name",),
            ).labels(name)
            self._transitions_metric = metrics.counter(
                "repro_breaker_transitions_total",
                "Circuit-breaker state transitions, by breaker and state "
                "entered.",
                ("name", "state"),
            )
            self._short_circuits_metric = metrics.counter(
                "repro_breaker_short_circuits_total",
                "Calls fast-failed while the breaker was open, by breaker.",
                ("name",),
            ).labels(name)
        else:
            self._state_metric = None
            self._transitions_metric = None
            self._short_circuits_metric = None

    # State ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state (promotes OPEN → HALF_OPEN when the timer is due)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (CLOSED bookkeeping)."""
        with self._lock:
            return self._consecutive_failures

    @property
    def open_count(self) -> int:
        """How many times the breaker has opened, ever."""
        with self._lock:
            return self._open_count

    def _maybe_half_open(self) -> None:
        """Promote OPEN → HALF_OPEN once the reset timer is due.

        Caller holds the lock.
        """
        if (
            self._state is BreakerState.OPEN
            and self._now() >= self._opened_at + self.reset_timeout_s
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_granted = 0

    def _transition(self, state: BreakerState) -> None:
        """Move to ``state`` with telemetry.  Caller holds the lock."""
        if state is self._state:
            return
        self._state = state
        if state is BreakerState.OPEN:
            self._opened_at = self._now()
            self._open_count += 1
        if self._state_metric is not None:
            self._state_metric.set(_STATE_VALUE[state])
        if self._transitions_metric is not None:
            self._transitions_metric.labels(self.name, state.value).inc()
        logger = self._logger
        if logger is not None:
            ambient = current_trace()
            logger.warning(
                f"breaker.{state.value}",
                name=self.name,
                consecutive_failures=self._consecutive_failures,
                open_count=self._open_count,
                trace_id=ambient.trace_id if ambient is not None else None,
            )

    # The caller protocol -------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?

        CLOSED: always.  OPEN: no (counted as a short circuit) until the
        reset timer promotes to HALF_OPEN.  HALF_OPEN: yes for up to
        ``half_open_probes`` callers; further callers are refused until
        a probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probes_granted < self.half_open_probes:
                    self._probes_granted += 1
                    return True
                if self._short_circuits_metric is not None:
                    self._short_circuits_metric.inc()
                return False
            if self._short_circuits_metric is not None:
                self._short_circuits_metric.inc()
            return False

    def ensure(self) -> None:
        """Raise :class:`~repro.errors.BreakerOpenError` unless allowed."""
        if not self.allow():
            raise BreakerOpenError(self.name)

    def record_success(self) -> None:
        """Report a protected call that succeeded."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Report a protected call that failed."""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.HALF_OPEN:
                # A probe failed: straight back to OPEN, timer re-armed.
                self._transition(BreakerState.OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(BreakerState.OPEN)

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker: gate, then report the outcome."""
        self.ensure()
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
