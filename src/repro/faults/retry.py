"""Resilience primitives: capped exponential backoff, retries, timeouts.

The thesis's crawler retried through transient bans and paced itself
against rate limiting (§3.2); :func:`retry_call` is that discipline as a
library function.  Policy decisions are explicit and testable:

* :class:`BackoffPolicy` — capped exponential schedule with bounded
  jitter and an optional total-delay budget.  Hypothesis property tests
  pin the schedule's invariants (monotone non-decreasing pre-jitter
  delays, jitter within bounds, total budget never exceeded).
* :class:`Timeout` — a deadline budget against an injectable ``now``
  callable (usually ``SimClock.now``), so budgets work in simulated
  time with zero wall-clock sleeps.
* :func:`retry_call` — retries *transient* errors
  (:class:`~repro.errors.TransientError` by default) and re-raises
  everything else immediately; sleeping is delegated to an injectable
  callable (tests pass ``clock.advance``; nothing here ever calls
  ``time.sleep``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, TypeVar

from repro.errors import ReproError, TimeoutExceededError, TransientError
from repro.obs.context import current_trace
from repro.obs.log import LogHub, StructuredLogger
from repro.obs.metrics import MetricsRegistry

T = TypeVar("T")


class RetryPolicyError(ReproError):
    """Misuse of the retry/backoff API (bad attempts, bad jitter...)."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with bounded jitter.

    The pre-jitter delay before retry ``n`` (1-based) is
    ``min(initial_delay_s * multiplier**(n-1), max_delay_s)``; jitter
    multiplies it by a uniform draw from
    ``[1 - jitter_fraction, 1 + jitter_fraction]``.  When
    ``max_total_delay_s`` is set, the schedule is truncated so the *sum*
    of delays (jitter included — jitter is bounded above, so the cap
    uses the worst case) never exceeds the budget.
    """

    max_attempts: int = 5
    initial_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter_fraction: float = 0.1
    max_total_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RetryPolicyError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.initial_delay_s < 0:
            raise RetryPolicyError(
                f"initial_delay_s must be non-negative: {self.initial_delay_s}"
            )
        if self.multiplier < 1.0:
            raise RetryPolicyError(
                f"multiplier must be >= 1: {self.multiplier}"
            )
        if self.max_delay_s < self.initial_delay_s:
            raise RetryPolicyError(
                f"max_delay_s ({self.max_delay_s}) must be >= "
                f"initial_delay_s ({self.initial_delay_s})"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise RetryPolicyError(
                f"jitter_fraction must be in [0, 1): {self.jitter_fraction}"
            )
        if self.max_total_delay_s is not None and self.max_total_delay_s < 0:
            raise RetryPolicyError(
                f"max_total_delay_s must be non-negative: "
                f"{self.max_total_delay_s}"
            )

    def base_delay(self, retry_number: int) -> float:
        """Pre-jitter delay before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise RetryPolicyError(
                f"retry_number is 1-based: {retry_number}"
            )
        delay = self.initial_delay_s * self.multiplier ** (retry_number - 1)
        return min(delay, self.max_delay_s)

    def delay(
        self, retry_number: int, rng: Optional[random.Random] = None
    ) -> float:
        """Jittered delay before retry ``retry_number`` (1-based)."""
        base = self.base_delay(retry_number)
        if rng is None or self.jitter_fraction == 0.0:
            return base
        spread = rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return base * (1.0 + spread)

    def schedule(
        self, rng: Optional[random.Random] = None
    ) -> List[float]:
        """The full delay schedule (one entry per possible retry).

        Truncated so the cumulative delay never exceeds
        ``max_total_delay_s`` (when set): the retry that would cross the
        budget — and everything after it — is dropped.
        """
        delays: List[float] = []
        total = 0.0
        for retry_number in range(1, self.max_attempts):
            delay = self.delay(retry_number, rng)
            if (
                self.max_total_delay_s is not None
                and total + delay > self.max_total_delay_s
            ):
                break
            delays.append(delay)
            total += delay
        return delays


class Timeout:
    """A deadline budget against an injectable clock.

    ``now_fn`` is any zero-argument float callable — tests and the chaos
    harness pass ``SimClock.now``, so budgets elapse in simulated time
    and never block a real thread.
    """

    def __init__(
        self, budget_s: float, now_fn: Callable[[], float], op: str = "call"
    ) -> None:
        if budget_s < 0:
            raise RetryPolicyError(
                f"timeout budget must be non-negative: {budget_s}"
            )
        self.budget_s = float(budget_s)
        self.op = op
        self._now = now_fn
        self._deadline = now_fn() + budget_s

    @property
    def deadline(self) -> float:
        """Absolute deadline on the injected clock."""
        return self._deadline

    def remaining(self) -> float:
        """Budget left, floored at zero."""
        return max(0.0, self._deadline - self._now())

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self._now() >= self._deadline

    def ensure(self) -> "Timeout":
        """Raise :class:`~repro.errors.TimeoutExceededError` if expired."""
        if self.expired:
            raise TimeoutExceededError(self.op, self.budget_s)
        return self


def default_classify(error: BaseException) -> bool:
    """The default retryability test: transient errors retry."""
    return isinstance(error, TransientError)


def retry_call(
    fn: Callable[[], T],
    policy: Optional[BackoffPolicy] = None,
    *,
    classify: Callable[[BaseException], bool] = default_classify,
    sleep: Optional[Callable[[float], object]] = None,
    timeout: Optional[Timeout] = None,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, BaseException, float], object]] = None,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
    op: str = "call",
) -> T:
    """Call ``fn`` with classified retries and capped backoff.

    ``classify(error) -> bool`` decides retryability; the default retries
    :class:`~repro.errors.TransientError` subclasses only — permanent
    errors re-raise on the first attempt, which is the typed-error
    contract the crawler fetcher's transient/permanent split feeds.

    ``sleep`` receives each backoff delay; pass ``clock.advance`` to pace
    in simulated time, or leave None to retry immediately (still counted
    — the *schedule* is what the backoff property tests pin).  With a
    ``timeout``, retries stop once the budget is exhausted and the
    budget's :class:`~repro.errors.TimeoutExceededError` is raised from
    the last failure.

    Telemetry (optional): ``repro_retry_attempts_total{op}`` per retry,
    ``repro_retry_recoveries_total{op}`` when a retried call eventually
    succeeds, ``repro_retry_exhausted_total{op}`` when the budget or the
    attempt cap gives up; WARNING ``retry.attempt`` / ERROR
    ``retry.exhausted`` records under the ambient trace_id.
    """
    policy = policy or BackoffPolicy()
    logger: Optional[StructuredLogger] = (
        log.logger("faults.retry") if log is not None else None
    )
    attempts_metric = recoveries_metric = exhausted_metric = None
    if metrics is not None:
        attempts_metric = metrics.counter(
            "repro_retry_attempts_total",
            "Retry attempts made after a transient failure, by operation.",
            ("op",),
        ).labels(op)
        recoveries_metric = metrics.counter(
            "repro_retry_recoveries_total",
            "Operations that succeeded after at least one retry, by op.",
            ("op",),
        ).labels(op)
        exhausted_metric = metrics.counter(
            "repro_retry_exhausted_total",
            "Operations whose retry budget ran out, by operation.",
            ("op",),
        ).labels(op)

    total_slept = 0.0
    for attempt in range(1, policy.max_attempts + 1):
        try:
            result = fn()
        except BaseException as error:  # noqa: BLE001 - classified below
            if not classify(error):
                raise
            retries_left = attempt < policy.max_attempts
            delay = policy.delay(attempt, rng) if retries_left else 0.0
            budget_ok = True
            if timeout is not None and retries_left:
                budget_ok = (
                    not timeout.expired and timeout.remaining() >= delay
                )
            if policy.max_total_delay_s is not None and retries_left:
                if total_slept + delay > policy.max_total_delay_s:
                    budget_ok = False
            if not retries_left or not budget_ok:
                if exhausted_metric is not None:
                    exhausted_metric.inc()
                if logger is not None:
                    ambient = current_trace()
                    logger.error(
                        "retry.exhausted",
                        op=op,
                        attempts=attempt,
                        error=f"{type(error).__name__}: {error}",
                        trace_id=(
                            ambient.trace_id if ambient is not None else None
                        ),
                    )
                if timeout is not None and timeout.expired:
                    raise TimeoutExceededError(
                        timeout.op, timeout.budget_s
                    ) from error
                raise
            if attempts_metric is not None:
                attempts_metric.inc()
            if logger is not None:
                ambient = current_trace()
                logger.warning(
                    "retry.attempt",
                    op=op,
                    attempt=attempt,
                    delay_s=delay,
                    error=f"{type(error).__name__}: {error}",
                    trace_id=(
                        ambient.trace_id if ambient is not None else None
                    ),
                )
            if on_retry is not None:
                on_retry(attempt, error, delay)
            if sleep is not None and delay > 0:
                sleep(delay)
            total_slept += delay
            continue
        if attempt > 1 and recoveries_metric is not None:
            recoveries_metric.inc()
        return result
    raise AssertionError("unreachable")  # pragma: no cover
