"""The canonical failure-point catalogue.

A *failure point* is a named place in the codebase where a
:class:`~repro.faults.FaultPlan` may fire: the layer asks its injector
"does anything go wrong here, now?" and either proceeds, slows down, or
fails with a typed error.  The names below are the complete set the
library wires; ``docs/RESILIENCE.md`` documents each one and a two-way
parity test keeps that table and this module identical.

Keeping the catalogue in one dependency-free module means every layer
(and the docs test) imports the same constants — no stringly-typed
drift between the injector, the wiring sites, and the chaos suite.
"""

from __future__ import annotations

from typing import Dict

#: One page fetch by :class:`repro.crawler.fetcher.PageFetcher` — fires
#: as fetch errors, slow responses, or ban bursts before the HTTP attempt.
POINT_CRAWLER_FETCH = "crawler.fetch"

#: One request through :class:`repro.simnet.http.HttpTransport` — fires
#: as packet loss (a :class:`~repro.errors.NetworkError`), added latency,
#: or a transport-level error response.
POINT_SIMNET_REQUEST = "simnet.request"

#: One event delivery to one :class:`repro.stream.bus.EventBus`
#: subscriber — fires as a subscriber exception (isolated and counted by
#: the bus) or a slow callback.  ``label`` is the subscriber name, so a
#: plan can target a single victim subscriber.
POINT_STREAM_SUBSCRIBER = "stream.subscriber"

#: One committed check-in in :meth:`repro.lbsn.store.DataStore.
#: add_checkin_committed` — fires as a typed
#: :class:`~repro.errors.CommitContentionError` *before* any table row
#: mutates, so a fired commit fault never leaves partial state.
POINT_STORE_COMMIT = "store.commit"

#: One event applied by a :class:`repro.durable.worker.DetectorWorker` —
#: fires *after* the WAL append and *before* detector state mutates, so a
#: fired fault crashes the worker (in-memory ledger discarded) while the
#: durable intake stays complete.  ``label`` is the partition name
#: (``partition-NN``), so a plan can kill a single victim worker.
POINT_DURABLE_WORKER = "durable.worker"

#: One public web request served by :class:`repro.lbsn.webserver.
#: LbsnWebServer`'s fault middleware — fires as an injected 5xx or a
#: timeout (504 after the latency charge).  ``/metrics`` and ``/debug/*``
#: are exempt: observability must not degrade with the service.
POINT_WEB_REQUEST = "web.request"

#: name → one-line description; the docs parity test renders this table.
FAILURE_POINTS: Dict[str, str] = {
    POINT_CRAWLER_FETCH: (
        "One crawler page fetch: fetch errors, slow responses, ban bursts."
    ),
    POINT_SIMNET_REQUEST: (
        "One simulated HTTP request: loss (NetworkError) or latency shaping."
    ),
    POINT_STREAM_SUBSCRIBER: (
        "One bus delivery to one subscriber (label = subscriber name): "
        "callback exceptions or slow consumers."
    ),
    POINT_STORE_COMMIT: (
        "One check-in commit: typed CommitContentionError before any "
        "row mutates (atomic abort)."
    ),
    POINT_DURABLE_WORKER: (
        "One event applied by a partitioned detector worker (label = "
        "partition-NN): crashes the worker after the WAL append, before "
        "detector state mutates."
    ),
    POINT_WEB_REQUEST: (
        "One public web request: injected 5xx or 504 timeout; /metrics "
        "and /debug/* are exempt."
    ),
}
