"""The runtime half of fault injection: decisions, sequencing, telemetry.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into live decisions.  Layers call :meth:`FaultInjector.check` (raise /
slow / proceed) or :meth:`FaultInjector.decide` (inspect the decision
and map it themselves — the HTTP transport and web middleware do this to
turn fired faults into status codes instead of exceptions).

Every fired fault:

* increments ``repro_faults_injected_total{point,kind}``,
* emits a WARNING ``fault.injected`` record on the ``faults`` logger
  carrying the ambient ``trace_id`` (or an explicit one), and
* appends to the per-point decision sequence, whose digest
  (:meth:`FaultInjector.sequence_digest`) is the determinism witness the
  chaos suite compares across replays.

Injectors are thread-safe: each ``(point, spec)`` stream advances under
its own lock, so 40 crawler threads draw from the same deterministic
stream without tearing it.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjectedError, HttpError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.context import current_trace
from repro.obs.log import LogHub, StructuredLogger
from repro.obs.metrics import MetricsRegistry

#: Decisions retained per point for sequence digests and assertions.
SEQUENCE_RING_SIZE = 65_536


@dataclass(frozen=True)
class FaultDecision:
    """One fired fault: which spec, at which per-point fire index."""

    point: str
    spec: FaultSpec
    #: 0-based index of this fire among the point's fires so far.
    fire_index: int
    #: 0-based index of the check (fired or not) that produced this.
    check_index: int
    #: True when this fire came from an ongoing burst, not a fresh draw.
    from_burst: bool = False

    @property
    def kind(self) -> FaultKind:
        """Shorthand for the spec's kind."""
        return self.spec.kind

    @property
    def latency_s(self) -> float:
        """Shorthand for the spec's latency charge."""
        return self.spec.latency_s

    @property
    def status(self) -> int:
        """Shorthand for the spec's HTTP status."""
        return self.spec.status


class _SpecState:
    """Mutable decision stream for one (point, spec) pair."""

    __slots__ = ("spec", "rng", "burst_left", "fires")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random(seed)
        self.burst_left = 0
        self.fires = 0

    def draw(self, label: Optional[str]) -> Tuple[bool, bool]:
        """(fired, from_burst) for one check.  Caller holds the lock.

        The RNG is advanced for every *eligible* check — including those
        suppressed by ``max_fires`` — so the decision stream stays a pure
        function of the check index.
        """
        spec = self.spec
        if spec.only_labels is not None and label not in spec.only_labels:
            return False, False
        if self.burst_left > 0:
            self.burst_left -= 1
            self.fires += 1
            return True, True
        fired = self.rng.random() < spec.probability
        if not fired:
            return False, False
        if spec.max_fires is not None and self.fires >= spec.max_fires:
            return False, False
        self.fires += 1
        self.burst_left = spec.burst - 1
        return True, False


class FaultInjector:
    """Live fault decisions for one plan, with metrics/log/sequence."""

    def __init__(
        self,
        plan: FaultPlan,
        clock=None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
    ) -> None:
        self.plan = plan
        self.clock = clock
        self._lock = threading.Lock()
        self._armed = True
        self._states: Dict[str, List[_SpecState]] = {}
        for index, spec in enumerate(plan.specs()):
            self._states.setdefault(spec.point, []).append(
                _SpecState(spec, plan.spec_seed(index))
            )
        self._checks: Dict[str, int] = {point: 0 for point in self._states}
        self._fired: Dict[str, int] = {point: 0 for point in self._states}
        #: Per-point decision history: (check_index, kind value) per fire.
        self._sequence: Dict[str, List[Tuple[int, str]]] = {
            point: [] for point in self._states
        }
        self._logger: Optional[StructuredLogger] = (
            log.logger("faults") if log is not None else None
        )
        if metrics is not None:
            self._injected_metric = metrics.counter(
                "repro_faults_injected_total",
                "Faults fired by the active plan, by point and kind.",
                ("point", "kind"),
            )
            self._checks_metric = metrics.counter(
                "repro_faults_checks_total",
                "Failure-point checks evaluated (fired or not), by point.",
                ("point",),
            )
            self._armed_metric = metrics.gauge(
                "repro_faults_armed",
                "1 while the fault plan is armed, 0 while disarmed.",
            ).child()
            self._armed_metric.set(1.0)
        else:
            self._injected_metric = None
            self._checks_metric = None
            self._armed_metric = None

    # Arming -------------------------------------------------------------

    @property
    def armed(self) -> bool:
        """Whether checks may fire at all."""
        with self._lock:
            return self._armed

    def arm(self) -> None:
        """Enable firing (the initial state)."""
        with self._lock:
            self._armed = True
        if self._armed_metric is not None:
            self._armed_metric.set(1.0)

    def disarm(self) -> None:
        """Disable firing; checks return clean until re-armed.

        Disarmed checks do **not** advance the decision streams, so a
        workload that only arms faults for its storm phase still replays
        deterministically.
        """
        with self._lock:
            self._armed = False
        if self._armed_metric is not None:
            self._armed_metric.set(0.0)

    # Decisions ----------------------------------------------------------

    def decide(
        self,
        point: str,
        label: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Optional[FaultDecision]:
        """Evaluate one check at ``point``; None when nothing fires.

        Fired decisions are fully accounted (metrics, log, sequence)
        here, so callers that map the decision themselves (transport,
        web middleware) need no extra bookkeeping.  The caller applies
        the decision's latency/error itself or via :meth:`apply`.
        """
        decision: Optional[FaultDecision] = None
        with self._lock:
            states = self._states.get(point)
            if not self._armed or not states:
                return None
            check_index = self._checks[point]
            self._checks[point] = check_index + 1
            for state in states:
                fired, from_burst = state.draw(label)
                if fired:
                    fire_index = self._fired[point]
                    self._fired[point] = fire_index + 1
                    decision = FaultDecision(
                        point=point,
                        spec=state.spec,
                        fire_index=fire_index,
                        check_index=check_index,
                        from_burst=from_burst,
                    )
                    sequence = self._sequence[point]
                    if len(sequence) < SEQUENCE_RING_SIZE:
                        sequence.append(
                            (check_index, state.spec.kind.value)
                        )
                    break
        if self._checks_metric is not None:
            self._checks_metric.labels(point).inc()
        if decision is not None:
            self._account(decision, label, trace_id)
        return decision

    def check(
        self,
        point: str,
        label: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> float:
        """Decide and *apply*: raise, slow, or pass through.

        Returns the latency charged (0.0 when nothing fired).  ERROR
        faults raise their typed error; HTTP faults raise
        :class:`~repro.errors.HttpError`; LATENCY faults advance the
        injector's clock (when it has one) and return the charge.
        """
        decision = self.decide(point, label=label, trace_id=trace_id)
        if decision is None:
            return 0.0
        return self.apply(decision)

    def apply(self, decision: FaultDecision) -> float:
        """Apply a fired decision: charge latency, then raise if due."""
        spec = decision.spec
        if spec.latency_s > 0 and self.clock is not None:
            self.clock.advance(spec.latency_s)
        if spec.kind is FaultKind.ERROR:
            error = spec.error or FaultInjectedError
            if error is FaultInjectedError:
                raise FaultInjectedError(decision.point)
            raise error(
                f"injected fault at {decision.point!r} "
                f"(fire #{decision.fire_index})"
            )
        if spec.kind is FaultKind.HTTP:
            raise HttpError(
                spec.status,
                f"injected HTTP {spec.status} at {decision.point!r}",
            )
        return spec.latency_s

    def _account(
        self,
        decision: FaultDecision,
        label: Optional[str],
        trace_id: Optional[str],
    ) -> None:
        if self._injected_metric is not None:
            self._injected_metric.labels(
                decision.point, decision.spec.kind.value
            ).inc()
        logger = self._logger
        if logger is not None:
            if trace_id is None:
                ambient = current_trace()
                trace_id = ambient.trace_id if ambient is not None else None
            logger.warning(
                "fault.injected",
                point=decision.point,
                kind=decision.spec.kind.value,
                label=label,
                fire_index=decision.fire_index,
                check_index=decision.check_index,
                from_burst=decision.from_burst,
                trace_id=trace_id,
            )

    # Introspection ------------------------------------------------------

    def checks_at(self, point: str) -> int:
        """How many checks a point has evaluated."""
        with self._lock:
            return self._checks.get(point, 0)

    def fired_at(self, point: str) -> int:
        """How many faults a point has fired."""
        with self._lock:
            return self._fired.get(point, 0)

    def fired_counts(self) -> Dict[str, int]:
        """``{point: fires}`` snapshot over all armed points."""
        with self._lock:
            return dict(self._fired)

    def sequence(self, point: str) -> List[Tuple[int, str]]:
        """The per-point fire history: (check_index, kind) pairs."""
        with self._lock:
            return list(self._sequence.get(point, []))

    def sequence_digest(self) -> str:
        """SHA-256 over every point's fire history, points sorted.

        Per-point decision streams are pure functions of (seed, check
        index), so this digest is identical across replays of the same
        seed — even when worker threads interleave differently — and is
        the chaos suite's "identical fault sequence" witness.
        """
        hasher = hashlib.sha256()
        with self._lock:
            for point in sorted(self._sequence):
                hasher.update(point.encode())
                for check_index, kind in self._sequence[point]:
                    hasher.update(f":{check_index}:{kind}".encode())
        return hasher.hexdigest()
