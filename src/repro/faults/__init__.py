"""repro.faults: deterministic fault injection + resilience toolkit.

Two halves, one package:

* **Injection** — :class:`FaultPlan` (seeded catalogue of
  :class:`FaultSpec` entries at named failure points) and
  :class:`FaultInjector` (live decisions with metrics/log/sequence
  telemetry).  The failure-point names live in
  :mod:`repro.faults.points` and are documented in docs/RESILIENCE.md.
* **Resilience** — :class:`BackoffPolicy` + :func:`retry_call` (classified
  retries with capped exponential backoff), :class:`Timeout` (deadline
  budgets on an injectable clock), and :class:`CircuitBreaker`
  (consecutive-failure breaker with half-open probing).

Everything paces itself against injectable clocks/sleeps, so the chaos
suite runs entirely in simulated time — zero wall-clock sleeps.
"""

from repro.faults.breaker import BreakerError, BreakerState, CircuitBreaker
from repro.faults.injector import (
    SEQUENCE_RING_SIZE,
    FaultDecision,
    FaultInjector,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanError, FaultSpec
from repro.faults.points import (
    FAILURE_POINTS,
    POINT_CRAWLER_FETCH,
    POINT_DURABLE_WORKER,
    POINT_SIMNET_REQUEST,
    POINT_STORE_COMMIT,
    POINT_STREAM_SUBSCRIBER,
    POINT_WEB_REQUEST,
)
from repro.faults.retry import (
    BackoffPolicy,
    RetryPolicyError,
    Timeout,
    default_classify,
    retry_call,
)

__all__ = [
    "FAILURE_POINTS",
    "POINT_CRAWLER_FETCH",
    "POINT_DURABLE_WORKER",
    "POINT_SIMNET_REQUEST",
    "POINT_STORE_COMMIT",
    "POINT_STREAM_SUBSCRIBER",
    "POINT_WEB_REQUEST",
    "BackoffPolicy",
    "BreakerError",
    "BreakerState",
    "CircuitBreaker",
    "FaultDecision",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "RetryPolicyError",
    "SEQUENCE_RING_SIZE",
    "Timeout",
    "default_classify",
    "retry_call",
]
