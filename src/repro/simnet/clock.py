"""A controllable simulation clock.

Every timestamped behaviour in the reproduction — check-in intervals, the
60-day mayorship window, crawler throughput, Wi-Fi round-trip timing — reads
time from a :class:`SimClock` instead of the wall clock, so experiments that
span months of simulated activity run in milliseconds and are deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List

from repro.errors import ReproError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0

#: Simulated epoch for human-readable offsets: 2010-08-01T00:00:00Z, the
#: month the thesis's crawl ran.
SIM_EPOCH_LABEL = "2010-08-01T00:00:00Z"


class ClockError(ReproError):
    """Attempt to move a clock backwards or misuse scheduled events."""


@dataclass(frozen=True, order=True)
class _ScheduledEvent:
    fire_at: float
    sequence: int
    callback: Callable[[], None] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.callback is None:
            raise ClockError("scheduled event needs a callback")


class SimClock:
    """A monotonically advancing, thread-safe simulated clock.

    Time is a float in seconds since the simulated epoch.  Callers advance
    it explicitly (``advance``/``advance_to``); registered events fire in
    timestamp order as the clock passes them.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start before the epoch: {start}")
        self._now = float(start)
        self._lock = threading.RLock()
        self._events: List[_ScheduledEvent] = []
        self._sequence = 0

    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance by a negative amount: {seconds}")
        with self._lock:
            target = self._now + seconds
        return self.advance_to(target)

    def advance_to(self, timestamp: float) -> float:
        """Move the clock to an absolute time, firing due events in order."""
        while True:
            with self._lock:
                if timestamp < self._now:
                    raise ClockError(
                        f"cannot move clock backwards: {timestamp} < {self._now}"
                    )
                due = [e for e in self._events if e.fire_at <= timestamp]
                if not due:
                    self._now = timestamp
                    return self._now
                due.sort()
                event = due[0]
                self._events.remove(event)
                self._now = max(self._now, event.fire_at)
            # Fire outside the lock so callbacks may schedule or advance.
            event.callback()

    def schedule(self, fire_at: float, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire when the clock reaches ``fire_at``."""
        with self._lock:
            if fire_at < self._now:
                raise ClockError(
                    f"cannot schedule in the past: {fire_at} < {self._now}"
                )
            self._events.append(
                _ScheduledEvent(fire_at=fire_at, sequence=self._sequence, callback=callback)
            )
            self._sequence += 1

    def pending_events(self) -> int:
        """Number of not-yet-fired scheduled events."""
        with self._lock:
            return len(self._events)

    # Convenience constructors for readable test/benchmark code -------------

    @staticmethod
    def minutes(n: float) -> float:
        """``n`` minutes expressed in clock seconds."""
        return n * SECONDS_PER_MINUTE

    @staticmethod
    def hours(n: float) -> float:
        """``n`` hours expressed in clock seconds."""
        return n * SECONDS_PER_HOUR

    @staticmethod
    def days(n: float) -> float:
        """``n`` days expressed in clock seconds."""
        return n * SECONDS_PER_DAY


def day_index(timestamp: float) -> int:
    """Which simulated calendar day a timestamp falls on (day 0 = epoch).

    The mayorship rule counts *days with check-ins*, so the service needs a
    stable day bucketing; this is it.
    """
    if timestamp < 0:
        raise ClockError(f"timestamp before the epoch: {timestamp}")
    return int(timestamp // SECONDS_PER_DAY)
