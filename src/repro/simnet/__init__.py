"""Simulation substrate: controllable clock, IDs, IP network, HTTP layer."""

from repro.simnet.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    SIM_EPOCH_LABEL,
    ClockError,
    SimClock,
    day_index,
)
from repro.simnet.http import (
    HTTP_FORBIDDEN,
    HTTP_NOT_FOUND,
    HTTP_OK,
    HTTP_TOO_MANY_REQUESTS,
    HTTP_UNAUTHORIZED,
    HttpRequest,
    HttpResponse,
    HttpTransport,
    Router,
    TransportStats,
)
from repro.simnet.ids import IdExhaustedError, SequentialIdAllocator
from repro.simnet.network import (
    Egress,
    EgressKind,
    GeoIpRegistry,
    IpAddress,
    IpAllocator,
    LatencyModel,
    Network,
)

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "SIM_EPOCH_LABEL",
    "ClockError",
    "SimClock",
    "day_index",
    "HTTP_FORBIDDEN",
    "HTTP_NOT_FOUND",
    "HTTP_OK",
    "HTTP_TOO_MANY_REQUESTS",
    "HTTP_UNAUTHORIZED",
    "HttpRequest",
    "HttpResponse",
    "HttpTransport",
    "Router",
    "TransportStats",
    "IdExhaustedError",
    "SequentialIdAllocator",
    "Egress",
    "EgressKind",
    "GeoIpRegistry",
    "IpAddress",
    "IpAllocator",
    "LatencyModel",
    "Network",
]
