"""Simulated IP network: endpoints, NAT/proxy/Tor aggregation, latency.

Two chapters of the thesis need an IP layer: §5.1's address-mapping defense
geolocates the client's IP, and §5.2's crawl-control discussion reasons about
blocking IPs behind NATs, proxies, and Tor.  This module models just enough:
every client egress has an :class:`IpAddress`, an egress *kind* (direct, NAT,
proxy, Tor exit), a registered geolocation, and a latency distribution.

Latency calibration: ``Egress.base_latency_s`` defaults to 20 ms one-way
(typical 2010 broadband to a nearby datacenter), doubled into an RTT and
scaled by ``LatencyModel.KIND_MULTIPLIER`` — direct ×1.0, NAT ×1.1,
public proxy ×6.0, Tor ×25.0 — with ±20% uniform jitter.  The proxy and
Tor multipliers are not measured in the thesis; they encode its
*qualitative* §5.2 claims ("crawling behind a public proxy cannot
achieve enough performance", Tor "suffers from limited performance") at
magnitudes consistent with contemporaneous Tor performance studies, and
the E11 crawl-control bench turns them into the reproduced throughput
collapse.  Crawler throughput experiments (E2) therefore reproduce the
*scaling shape* — throughput ∝ threads until transport saturation — not
2010 hardware's absolute pages/hour.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import NetworkError
from repro.geo.coordinates import GeoPoint


class EgressKind(Enum):
    """How a client's traffic reaches the server."""

    DIRECT = "direct"
    NAT = "nat"
    PROXY = "proxy"
    TOR = "tor"


@dataclass(frozen=True)
class IpAddress:
    """A dotted-quad IPv4 address used as an opaque identity."""

    value: str

    def __post_init__(self) -> None:
        parts = self.value.split(".")
        if len(parts) != 4:
            raise NetworkError(f"malformed IPv4 address: {self.value!r}")
        for part in parts:
            if not part.isdigit() or not 0 <= int(part) <= 255:
                raise NetworkError(f"malformed IPv4 address: {self.value!r}")

    def __str__(self) -> str:
        return self.value


@dataclass
class Egress:
    """An egress point: the IP the server sees, plus who shares it."""

    ip: IpAddress
    kind: EgressKind
    #: Where this egress physically is (None when unregistered/unknown).
    location: Optional[GeoPoint] = None
    #: Client identifiers sharing this egress (NATs aggregate a few hosts,
    #: proxies many — Casado & Freedman's observation cited in §5.2).
    clients: List[str] = field(default_factory=list)
    #: Mean one-way latency in (simulated) seconds for traffic via here.
    base_latency_s: float = 0.02

    def add_client(self, client_id: str) -> None:
        """Attach a client to this egress."""
        if client_id not in self.clients:
            self.clients.append(client_id)


class IpAllocator:
    """Deterministic allocator of unique IPv4 addresses from a seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._used: set = set()
        self._lock = threading.Lock()

    def allocate(self) -> IpAddress:
        """Return a fresh, never-before-returned address."""
        with self._lock:
            while True:
                candidate = "{}.{}.{}.{}".format(
                    self._rng.randint(1, 223),
                    self._rng.randint(0, 255),
                    self._rng.randint(0, 255),
                    self._rng.randint(1, 254),
                )
                if candidate not in self._used:
                    self._used.add(candidate)
                    return IpAddress(candidate)


class GeoIpRegistry:
    """IP-to-location database, the substrate of the address-mapping defense.

    Real GeoIP data is coarse; the registry models that with a configurable
    error radius the defense must tolerate.
    """

    def __init__(self, typical_error_m: float = 25_000.0) -> None:
        self._locations: Dict[str, GeoPoint] = {}
        self._lock = threading.Lock()
        self.typical_error_m = typical_error_m

    def register(self, ip: IpAddress, location: GeoPoint) -> None:
        """Record where an IP is located."""
        with self._lock:
            self._locations[ip.value] = location

    def locate(self, ip: IpAddress) -> Optional[GeoPoint]:
        """Best-known location of ``ip``, or None when unmapped."""
        with self._lock:
            return self._locations.get(ip.value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._locations)


class LatencyModel:
    """Sampled per-request latency: base + jitter, Tor much slower.

    The §5.2 observation that "crawling behind a public proxy cannot achieve
    enough performance" and Tor "suffers from limited performance" is
    reproduced by the multipliers here; the E11 bench measures the resulting
    throughput collapse.
    """

    KIND_MULTIPLIER = {
        EgressKind.DIRECT: 1.0,
        EgressKind.NAT: 1.1,
        EgressKind.PROXY: 6.0,
        EgressKind.TOR: 25.0,
    }

    def __init__(self, seed: int = 0, jitter_fraction: float = 0.2) -> None:
        if not 0.0 <= jitter_fraction < 1.0:
            raise NetworkError(
                f"jitter fraction must be in [0, 1), got {jitter_fraction}"
            )
        self._rng = random.Random(seed)
        self._jitter = jitter_fraction
        self._lock = threading.Lock()

    def sample_rtt_s(self, egress: Egress) -> float:
        """One round-trip time sample for a request through ``egress``."""
        base = 2.0 * egress.base_latency_s * self.KIND_MULTIPLIER[egress.kind]
        with self._lock:
            jitter = self._rng.uniform(-self._jitter, self._jitter)
        return max(1e-4, base * (1.0 + jitter))


class Network:
    """The network fabric: allocates egresses and samples request latency."""

    def __init__(self, seed: int = 0) -> None:
        self._ips = IpAllocator(seed=seed)
        self.geoip = GeoIpRegistry()
        self.latency = LatencyModel(seed=seed + 1)
        self._egresses: Dict[str, Egress] = {}
        self._lock = threading.Lock()

    def create_egress(
        self,
        kind: EgressKind = EgressKind.DIRECT,
        location: Optional[GeoPoint] = None,
        register_geoip: bool = True,
    ) -> Egress:
        """Allocate a new egress point with a fresh IP."""
        ip = self._ips.allocate()
        egress = Egress(ip=ip, kind=kind, location=location)
        if register_geoip and location is not None:
            self.geoip.register(ip, location)
        with self._lock:
            self._egresses[ip.value] = egress
        return egress

    def egress_for_ip(self, ip: IpAddress) -> Optional[Egress]:
        """Reverse lookup of an egress by its IP."""
        with self._lock:
            return self._egresses.get(ip.value)
