"""A minimal simulated HTTP layer.

The crawler in §3.2 "sent HTTP Get to this URL and got the HTML source code
from the server's response".  We reproduce that boundary faithfully: the web
server renders real HTML strings, the crawler issues :class:`HttpRequest`
objects through a :class:`HttpTransport`, and everything in between (status
codes, middleware such as the crawl-control defense, latency accounting) is
observable.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Pattern, Tuple

from repro.errors import HttpError, NetworkError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.points import POINT_SIMNET_REQUEST
from repro.simnet.network import Egress, Network

HTTP_OK = 200
HTTP_FOUND = 302
HTTP_UNAUTHORIZED = 401
HTTP_FORBIDDEN = 403
HTTP_NOT_FOUND = 404
HTTP_TOO_MANY_REQUESTS = 429
HTTP_SERVER_ERROR = 500
HTTP_GATEWAY_TIMEOUT = 504


@dataclass(frozen=True)
class HttpRequest:
    """One GET/POST request as seen by the server."""

    method: str
    path: str
    client_ip: str
    headers: Dict[str, str] = field(default_factory=dict)
    params: Dict[str, str] = field(default_factory=dict)
    #: Simulated time the request arrived (filled by the transport).
    timestamp: float = 0.0

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass
class HttpResponse:
    """The server's reply: status, body, headers."""

    status: int = HTTP_OK
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def raise_for_status(self) -> "HttpResponse":
        """Raise :class:`HttpError` on non-2xx, else return self."""
        if not self.ok:
            raise HttpError(self.status, f"HTTP {self.status} for request")
        return self


Handler = Callable[[HttpRequest, "re.Match[str]"], HttpResponse]
Middleware = Callable[[HttpRequest], Optional[HttpResponse]]


class Router:
    """Regex-based path router, like any small web framework."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Pattern[str], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` requests matching ``pattern``.

        ``pattern`` is a full-match regular expression over the path.
        """
        self._routes.append((method.upper(), re.compile(pattern), handler))

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Route a request; 404 when nothing matches."""
        for method, pattern, handler in self._routes:
            if method != request.method.upper():
                continue
            match = pattern.fullmatch(request.path)
            if match:
                return handler(request, match)
        return HttpResponse(status=HTTP_NOT_FOUND, body="Not Found")


@dataclass
class TransportStats:
    """Counters the E2 crawler bench reads off the wire."""

    requests: int = 0
    responses_by_status: Dict[int, int] = field(default_factory=dict)
    total_latency_s: float = 0.0

    def record(self, status: int, latency_s: float) -> None:
        """Tally one response."""
        self.requests += 1
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        self.total_latency_s += latency_s


class HttpTransport:
    """Connects clients to a :class:`Router` through the simulated network.

    Middleware (e.g. the crawl-control defense) runs before routing and may
    short-circuit with its own response — that is how login walls and IP
    blocks are injected without the server handlers knowing.
    """

    def __init__(
        self,
        router: Router,
        network: Network,
        clock=None,
        blocking: bool = False,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._router = router
        self._network = network
        self._clock = clock
        self._middleware: List[Middleware] = []
        self._stats = TransportStats()
        self._lock = threading.Lock()
        #: Optional fault injector consulted once per request at
        #: ``simnet.request``: LATENCY faults add to the sampled
        #: round-trip, ERROR faults raise (``spec.error`` or
        #: :class:`~repro.errors.NetworkError` — packet loss), HTTP
        #: faults short-circuit into a response with ``spec.status``.
        self.faults = faults
        #: When True, each request really sleeps its sampled round-trip
        #: time, so multi-threaded clients overlap network waits exactly as
        #: they would against a remote server — the effect the E2 crawler
        #: thread-scaling experiment measures.
        self.blocking = blocking

    def add_middleware(self, middleware: Middleware) -> None:
        """Install a pre-routing hook (first installed runs first)."""
        self._middleware.append(middleware)

    @property
    def stats(self) -> TransportStats:
        """Wire-level counters (shared object, updated in place)."""
        return self._stats

    def request(
        self,
        method: str,
        path: str,
        egress: Egress,
        headers: Optional[Dict[str, str]] = None,
        params: Optional[Dict[str, str]] = None,
    ) -> HttpResponse:
        """Issue one request through ``egress`` and return the response.

        The sampled round-trip latency is charged to the simulated clock's
        *accounting* (via stats); it does not advance the shared clock, so
        concurrent crawler threads do not fight over global time.
        """
        if egress is None:
            raise NetworkError("request needs an egress")
        latency = self._network.latency.sample_rtt_s(egress)
        injected: Optional[HttpResponse] = None
        if self.faults is not None:
            decision = self.faults.decide(
                POINT_SIMNET_REQUEST, label=egress.ip.value
            )
            if decision is not None:
                latency += decision.latency_s
                if decision.kind is FaultKind.ERROR:
                    with self._lock:
                        self._stats.total_latency_s += latency
                    error = decision.spec.error or NetworkError
                    raise error(
                        f"injected network loss for {method} {path} "
                        f"(fire #{decision.fire_index})"
                    )
                if decision.kind is FaultKind.HTTP:
                    injected = HttpResponse(
                        status=decision.status,
                        body=f"injected HTTP {decision.status}",
                    )
        if self.blocking:
            time.sleep(latency)
        timestamp = self._clock.now() if self._clock is not None else 0.0
        request = HttpRequest(
            method=method,
            path=path,
            client_ip=egress.ip.value,
            headers=dict(headers or {}),
            params=dict(params or {}),
            timestamp=timestamp,
        )
        response: Optional[HttpResponse] = injected
        if response is None:
            for middleware in self._middleware:
                response = middleware(request)
                if response is not None:
                    break
        if response is None:
            response = self._router.dispatch(request)
        with self._lock:
            self._stats.record(response.status, latency)
        return response

    def get(self, path: str, egress: Egress, **kwargs) -> HttpResponse:
        """Convenience GET."""
        return self.request("GET", path, egress, **kwargs)

    def post(self, path: str, egress: Egress, **kwargs) -> HttpResponse:
        """Convenience POST."""
        return self.request("POST", path, egress, **kwargs)
