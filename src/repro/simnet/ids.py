"""Incrementing numeric ID allocation.

The thesis's crawl is possible precisely because "Foursquare uses
incrementing numerical IDs to identify their users and venues" (§3.2).  The
service therefore allocates IDs from this counter, and the crawler's frontier
enumerates the same dense integer space.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.errors import ReproError


class IdExhaustedError(ReproError):
    """An allocator ran past its configured ceiling."""


class SequentialIdAllocator:
    """A thread-safe counter handing out 1-based consecutive integers."""

    def __init__(self, start: int = 1, ceiling: int = 2**62) -> None:
        if start < 1:
            raise ReproError(f"ids start at 1, got start={start}")
        if ceiling < start:
            raise ReproError(f"ceiling {ceiling} below start {start}")
        self._next = start
        self._ceiling = ceiling
        self._lock = threading.Lock()

    def allocate(self) -> int:
        """Return the next unused ID."""
        with self._lock:
            if self._next > self._ceiling:
                raise IdExhaustedError(
                    f"allocator exhausted at ceiling {self._ceiling}"
                )
            value = self._next
            self._next += 1
            return value

    def peek(self) -> int:
        """The ID the next :meth:`allocate` call would return."""
        with self._lock:
            return self._next

    def allocated_count(self) -> int:
        """How many IDs have been handed out so far."""
        with self._lock:
            return self._next - 1

    def iter_allocated(self) -> Iterator[int]:
        """Iterate over every ID allocated so far (1..count), a snapshot."""
        return iter(range(1, self.allocated_count() + 1))
