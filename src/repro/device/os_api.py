"""The smartphone operating system's location API (§3.1, channel 1).

Modeled on Android's ``LocationManager``: apps ask a named *provider* for
the last known location, and the OS routes the request to whatever module
backs that provider.  Because the OS is open source, an attacker "is able to
cheat on his/her location using falsified GPS information" by re-pointing
the provider — the API-hook spoofing channel.  Apps (including the LBSN
client) only ever see this API, never the hardware, so every channel that
compromises a layer below it is invisible to them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.device.gps import GpsFix, GpsModule
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.simnet.clock import SimClock

#: The standard provider names, as on Android.
GPS_PROVIDER = "gps"
NETWORK_PROVIDER = "network"


class LocationApi:
    """The OS-level location service apps talk to."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._providers: Dict[str, GpsModule] = {}
        #: Optional hook an OS-level hack installs to rewrite every fix.
        self._api_hook: Optional[Callable[[Optional[GpsFix]], Optional[GpsFix]]] = None

    def register_provider(self, name: str, module: GpsModule) -> None:
        """Attach a location source under a provider name."""
        if not name:
            raise DeviceError("provider name must be non-empty")
        self._providers[name] = module

    def remove_provider(self, name: str) -> bool:
        """Detach a provider; returns whether it existed."""
        return self._providers.pop(name, None) is not None

    def providers(self) -> List[str]:
        """Registered provider names."""
        return sorted(self._providers)

    def install_api_hook(
        self, hook: Callable[[Optional[GpsFix]], Optional[GpsFix]]
    ) -> None:
        """Install the §3.1 API modification.

        On an open-source OS the GPS-related APIs "can be modified to get
        GPS locations from sources other than the phone's GPS module, for
        example, from a server that returns fake GPS coordinates, or simply
        from a local file".  The hook sees the genuine fix (or None) and
        returns the fix apps will receive.
        """
        self._api_hook = hook

    def clear_api_hook(self) -> None:
        """Restore the unmodified OS behaviour."""
        self._api_hook = None

    @property
    def hooked(self) -> bool:
        """Whether an API hook is currently installed."""
        return self._api_hook is not None

    def get_last_known_location(
        self, provider: str = GPS_PROVIDER
    ) -> Optional[GpsFix]:
        """What an app receives when it asks for the current location."""
        module = self._providers.get(provider)
        fix = module.current_fix(self._clock.now()) if module else None
        if self._api_hook is not None:
            fix = self._api_hook(fix)
        return fix

    def best_fix(self) -> Optional[GpsFix]:
        """The most accurate fix across all providers (GPS preferred)."""
        best: Optional[GpsFix] = None
        for name in [GPS_PROVIDER, NETWORK_PROVIDER] + self.providers():
            if name not in self._providers:
                continue
            fix = self.get_last_known_location(name)
            if fix is None:
                continue
            if best is None or fix.accuracy_m < best.accuracy_m:
                best = fix
        return best


def fixed_location_hook(location: GeoPoint, accuracy_m: float = 5.0):
    """An API hook that always reports ``location`` (the local-file variant)."""

    def hook(fix: Optional[GpsFix]) -> Optional[GpsFix]:
        timestamp = fix.timestamp if fix is not None else 0.0
        return GpsFix(
            location=location, accuracy_m=accuracy_m, timestamp=timestamp
        )

    return hook


def remote_feed_hook(feed: Callable[[], GeoPoint], accuracy_m: float = 5.0):
    """An API hook pulling coordinates from an attacker-run server feed."""

    def hook(fix: Optional[GpsFix]) -> Optional[GpsFix]:
        timestamp = fix.timestamp if fix is not None else 0.0
        return GpsFix(
            location=feed(), accuracy_m=accuracy_m, timestamp=timestamp
        )

    return hook
