"""A simulated Bluetooth GPS receiver speaking NMEA 0183 (§3.1, channel 2b).

"An attacker can write a program on a computer that simulates the behavior
of a Bluetooth GPS receiver and let the phone connect to this simulated
Bluetooth GPS receiver, enabling the simulated GPS to return fake
coordinates."  Tools like Skylab GPS Simulator did exactly this; we emit and
parse genuine ``$GPGGA`` sentences (with correct checksums) so the phone-side
NMEA driver exercises a realistic protocol path.
"""

from __future__ import annotations

from typing import Optional

from repro.device.gps import GpsFix
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint


def nmea_checksum(sentence_body: str) -> str:
    """XOR checksum over the characters between ``$`` and ``*``, as hex."""
    value = 0
    for char in sentence_body:
        value ^= ord(char)
    return f"{value:02X}"


def _to_nmea_coord(degrees: float, is_latitude: bool) -> str:
    """Encode decimal degrees as NMEA ddmm.mmmm / dddmm.mmmm."""
    absolute = abs(degrees)
    whole = int(absolute)
    minutes = (absolute - whole) * 60.0
    width = 2 if is_latitude else 3
    return f"{whole:0{width}d}{minutes:07.4f}"


def _from_nmea_coord(text: str, hemisphere: str) -> float:
    """Decode NMEA ddmm.mmmm back to signed decimal degrees."""
    dot = text.index(".")
    degrees = float(text[: dot - 2])
    minutes = float(text[dot - 2 :])
    value = degrees + minutes / 60.0
    if hemisphere in ("S", "W"):
        value = -value
    return value


def build_gpgga(
    location: GeoPoint,
    utc_seconds: float,
    satellites: int = 9,
    hdop: float = 1.0,
) -> str:
    """Render one ``$GPGGA`` fix sentence for ``location``."""
    hours = int(utc_seconds // 3600) % 24
    minutes = int(utc_seconds // 60) % 60
    seconds = utc_seconds % 60
    time_field = f"{hours:02d}{minutes:02d}{seconds:05.2f}"
    lat_field = _to_nmea_coord(location.latitude, is_latitude=True)
    lat_hemisphere = "N" if location.latitude >= 0 else "S"
    lon_field = _to_nmea_coord(location.longitude, is_latitude=False)
    lon_hemisphere = "E" if location.longitude >= 0 else "W"
    body = (
        f"GPGGA,{time_field},{lat_field},{lat_hemisphere},"
        f"{lon_field},{lon_hemisphere},1,{satellites:02d},{hdop:.1f},"
        f"10.0,M,0.0,M,,"
    )
    return f"${body}*{nmea_checksum(body)}"


def parse_gpgga(sentence: str, timestamp: float) -> GpsFix:
    """Parse a ``$GPGGA`` sentence into a :class:`GpsFix`.

    Raises :class:`DeviceError` on malformed input or a bad checksum, the
    way a real NMEA driver drops corrupt sentences.
    """
    if not sentence.startswith("$") or "*" not in sentence:
        raise DeviceError(f"not an NMEA sentence: {sentence!r}")
    body, _, checksum = sentence[1:].partition("*")
    if nmea_checksum(body) != checksum.strip().upper():
        raise DeviceError(f"NMEA checksum mismatch in {sentence!r}")
    fields = body.split(",")
    if fields[0] != "GPGGA" or len(fields) < 10:
        raise DeviceError(f"not a GPGGA sentence: {sentence!r}")
    if fields[6] == "0":
        raise DeviceError("GPGGA reports no fix")
    latitude = _from_nmea_coord(fields[2], fields[3])
    longitude = _from_nmea_coord(fields[4], fields[5])
    satellites = int(fields[7]) if fields[7] else 0
    hdop = float(fields[8]) if fields[8] else 1.0
    return GpsFix(
        location=GeoPoint(latitude, longitude),
        # HDOP ~ horizontal dilution; 5 m per unit is a common rule of thumb.
        accuracy_m=5.0 * hdop,
        timestamp=timestamp,
        satellites=satellites,
    )


class BluetoothGpsSimulator:
    """The attacker's computer pretending to be a Bluetooth GPS puck."""

    def __init__(self, location: Optional[GeoPoint] = None) -> None:
        self._location = location

    def set_location(self, location: GeoPoint) -> None:
        """Choose the coordinates the fake puck reports."""
        self._location = location

    def next_sentence(self, utc_seconds: float) -> str:
        """Emit the next GPGGA sentence, as the puck would over RFCOMM."""
        if self._location is None:
            raise DeviceError("Bluetooth GPS simulator has no location set")
        return build_gpgga(self._location, utc_seconds)


class BluetoothGpsModule:
    """Phone-side driver: a GPS 'module' backed by a paired Bluetooth puck.

    Plugs into the device's location API exactly like the internal module,
    so once paired, every app transparently receives the puck's (spoofed)
    coordinates.
    """

    def __init__(self, simulator: BluetoothGpsSimulator) -> None:
        self._simulator = simulator

    def current_fix(self, timestamp: float) -> Optional[GpsFix]:
        """Parse the puck's next NMEA sentence into a fix (None on error)."""
        try:
            sentence = self._simulator.next_sentence(timestamp % 86_400.0)
            return parse_gpgga(sentence, timestamp)
        except DeviceError:
            return None
