"""GPS hardware simulation: fixes, satellites, and the phone's GPS module.

§3.1's spoofing channel 2 ("via GPS module") needs a GPS module abstraction
with two concrete forms: the genuine hardware module that reports where the
phone physically is, and hacked/simulated modules that report whatever the
attacker wants while remaining indistinguishable to the operating system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point

#: A full GPS constellation keeps ~8-12 satellites in view.
TYPICAL_SATELLITES_IN_VIEW = 9


@dataclass(frozen=True)
class GpsFix:
    """One position fix as delivered by a GPS receiver."""

    location: GeoPoint
    #: Estimated horizontal accuracy in meters.
    accuracy_m: float
    #: Clock time the fix was produced.
    timestamp: float
    #: Satellites used in the solution.
    satellites: int = TYPICAL_SATELLITES_IN_VIEW

    def __post_init__(self) -> None:
        if self.accuracy_m < 0:
            raise DeviceError(f"accuracy must be non-negative: {self.accuracy_m}")
        if self.satellites < 0:
            raise DeviceError(f"satellite count must be non-negative: {self.satellites}")


class GpsModule(Protocol):
    """Anything that can produce a position fix on demand."""

    def current_fix(self, timestamp: float) -> Optional[GpsFix]:
        """The current fix, or None when no signal is available."""
        ...


class HardwareGpsModule:
    """The phone's genuine GPS chip.

    Reports the device's *physical* position with realistic measurement
    noise.  The simulation moves the phone via :meth:`move_to`; an attacker
    cannot change what this module reports without replacing it (which is
    exactly what the hardware-hack spoofing channel does).
    """

    def __init__(
        self,
        physical_location: GeoPoint,
        noise_m: float = 5.0,
        seed: int = 0,
        has_signal: bool = True,
    ) -> None:
        if noise_m < 0:
            raise DeviceError(f"noise must be non-negative: {noise_m}")
        self._location = physical_location
        self._noise_m = noise_m
        self._rng = random.Random(seed)
        self.has_signal = has_signal

    @property
    def physical_location(self) -> GeoPoint:
        """Where the phone actually is."""
        return self._location

    def move_to(self, location: GeoPoint) -> None:
        """Physically relocate the device (the simulation's hand, not an app's)."""
        self._location = location

    def current_fix(self, timestamp: float) -> Optional[GpsFix]:
        """A noisy fix around the physical position, or None indoors."""
        if not self.has_signal:
            return None
        bearing = self._rng.uniform(0.0, 360.0)
        error = abs(self._rng.gauss(0.0, self._noise_m / 2.0))
        noisy = destination_point(self._location, bearing, error)
        return GpsFix(
            location=noisy,
            accuracy_m=self._noise_m,
            timestamp=timestamp,
            satellites=self._rng.randint(6, 12),
        )


class FakeGpsModule:
    """A replaced/compromised GPS module reporting attacker-chosen fixes.

    This models §3.1's hardware hack: "modifies the physical GPS hardware
    inside the phone, making it capable of faking data, so that the cheating
    is transparent to the mobile phone's operating system."  The OS cannot
    tell it apart from :class:`HardwareGpsModule` — same fix shape, same
    plausible accuracy and satellite counts.
    """

    def __init__(self, fake_location: Optional[GeoPoint] = None, accuracy_m: float = 5.0) -> None:
        self._fake = fake_location
        self._accuracy_m = accuracy_m

    def set_location(self, location: GeoPoint) -> None:
        """Choose what the module will report from now on."""
        self._fake = location

    def current_fix(self, timestamp: float) -> Optional[GpsFix]:
        """The attacker-chosen fix, or None before a location is set."""
        if self._fake is None:
            return None
        return GpsFix(
            location=self._fake,
            accuracy_m=self._accuracy_m,
            timestamp=timestamp,
            satellites=TYPICAL_SATELLITES_IN_VIEW,
        )
