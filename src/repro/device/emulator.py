"""Smartphones and the device emulator (§3.1, channel 4).

:class:`Device` is a physical phone: its GPS module reports where the phone
really is.  :class:`DeviceEmulator` is the Android-emulator stand-in the
thesis used: a full virtual device whose "GPS module" is a configurable
simulation, driven by the ``geo fix`` console command the Dalvik Debug
Monitor sends.  The thesis calls this channel "the easiest and most
reliable"; the E1 experiment uses it.

The emulator also reproduces the market lock the authors had to bypass:
stock emulator images exclude the application market, so the Foursquare
client cannot be installed until a manufacturer recovery image is flashed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.device.gps import FakeGpsModule, GpsFix, HardwareGpsModule
from repro.device.os_api import GPS_PROVIDER, LocationApi
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.simnet.clock import SimClock


class Device:
    """A physical smartphone: hardware GPS + OS location API + apps."""

    def __init__(
        self,
        clock: SimClock,
        physical_location: GeoPoint,
        name: str = "phone",
        gps_seed: int = 0,
    ) -> None:
        self.clock = clock
        self.name = name
        self.gps = HardwareGpsModule(physical_location, seed=gps_seed)
        self.location_api = LocationApi(clock)
        self.location_api.register_provider(GPS_PROVIDER, self.gps)
        self._apps: Dict[str, object] = {}

    def install_app(self, name: str, app: object) -> None:
        """Install an application on the device."""
        if name in self._apps:
            raise DeviceError(f"app already installed: {name!r}")
        self._apps[name] = app

    def get_app(self, name: str) -> object:
        """Retrieve an installed application."""
        try:
            return self._apps[name]
        except KeyError:
            raise DeviceError(f"app not installed: {name!r}") from None

    @property
    def installed_apps(self) -> list:
        """Names of installed applications."""
        return sorted(self._apps)

    def replace_gps_module(self, module) -> None:
        """Swap in a different GPS module (the hardware-hack channel)."""
        self.location_api.register_provider(GPS_PROVIDER, module)


class EmulatorConsole:
    """The emulator's control console (what Dalvik Debug Monitor talks to)."""

    def __init__(self, emulator: "DeviceEmulator") -> None:
        self._emulator = emulator

    def execute(self, command: str) -> str:
        """Run a console command string; only ``geo fix`` is implemented.

        The Android emulator's syntax is ``geo fix <longitude> <latitude>``
        — longitude first, a detail that has tripped up many a developer and
        which we keep faithfully.
        """
        parts = command.split()
        if len(parts) == 4 and parts[0] == "geo" and parts[1] == "fix":
            try:
                longitude = float(parts[2])
                latitude = float(parts[3])
            except ValueError:
                return "KO: bad coordinates"
            self._emulator.set_gps(GeoPoint(latitude, longitude))
            return "OK"
        return f"KO: unknown command {command!r}"


class DeviceEmulator(Device):
    """A virtual device whose GPS is fully attacker-controlled.

    Construction mirrors the thesis's workflow:

    1. The stock image has no application market (``market_enabled`` False).
    2. :meth:`flash_recovery_image` restores "a full featured system with
       the Android Market".
    3. The LBSN client is installed like on a real phone.
    4. ``geo fix`` (via :attr:`console` or :meth:`set_gps`) points the
       simulated GPS anywhere on Earth.
    """

    def __init__(self, clock: SimClock, name: str = "emulator") -> None:
        # The emulator has no physical location; its GPS module starts
        # with no fix until the console sets one.
        super().__init__(clock, GeoPoint(0.0, 0.0), name=name)
        self._sim_gps = FakeGpsModule()
        self.location_api.register_provider(GPS_PROVIDER, self._sim_gps)
        self.market_enabled = False
        self.console = EmulatorConsole(self)
        self._flashed_image: Optional[str] = None

    def flash_recovery_image(self, image_name: str) -> None:
        """Flash a manufacturer system image, unlocking the market (§3.1)."""
        if not image_name:
            raise DeviceError("image name must be non-empty")
        self._flashed_image = image_name
        self.market_enabled = True

    def install_app(self, name: str, app: object) -> None:
        """Install from the market — fails on a stock (locked) image."""
        if not self.market_enabled:
            raise DeviceError(
                "stock emulator image has no application market; flash a "
                "full system recovery image first"
            )
        super().install_app(name, app)

    def set_gps(self, location: GeoPoint) -> None:
        """Point the simulated GPS module at ``location``."""
        self._sim_gps.set_location(location)

    def current_gps_fix(self) -> Optional[GpsFix]:
        """What the simulated GPS currently reports (None before any fix)."""
        return self._sim_gps.current_fix(self.clock.now())
