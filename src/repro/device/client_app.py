"""The LBSN client application installed on a device.

The thesis "analyzed Foursquare's client application source code and
confirmed that it gets the GPS location data from the phone's GPS-related
APIs" — so this client does exactly that: every operation reads the device's
:class:`~repro.device.os_api.LocationApi` and reports whatever it returns to
the server.  The client is honest; the deception happens below it (hooked
API, fake module, emulator GPS) or beside it (direct server-API calls).
"""

from __future__ import annotations

from typing import List, Optional

from repro.device.os_api import LocationApi
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInResult, Venue
from repro.lbsn.service import LbsnService


class LbsnClientApp:
    """The official client app: location-aware venue list + check-in."""

    APP_NAME = "simsquare"

    def __init__(
        self,
        service: LbsnService,
        location_api: LocationApi,
        user_id: int,
    ) -> None:
        self.service = service
        self.location_api = location_api
        self.user_id = user_id

    def current_location(self) -> GeoPoint:
        """The device's current position, per the OS location API.

        Raises :class:`DeviceError` when no provider has a fix (e.g. a
        fresh emulator before any ``geo fix``).
        """
        fix = self.location_api.best_fix()
        if fix is None:
            raise DeviceError("no location fix available")
        return fix.location

    def nearby_venues(self) -> List[Venue]:
        """The suggested list of venues around the (reported) position."""
        return self.service.nearby_venues(self.current_location())

    def find_nearby_venue(self, name_substring: str) -> Optional[Venue]:
        """First nearby venue whose name contains ``name_substring``."""
        needle = name_substring.lower()
        for venue in self.nearby_venues():
            if needle in venue.name.lower():
                return venue
        return None

    def check_in(self, venue_id: int) -> CheckInResult:
        """Check in to ``venue_id``, reporting the API-provided location."""
        return self.service.check_in(
            user_id=self.user_id,
            venue_id=venue_id,
            reported_location=self.current_location(),
        )

    def check_in_by_name(self, name_substring: str) -> CheckInResult:
        """Find a nearby venue by name and check in to it.

        This is the thesis's flow: "find the target venue in the list of
        nearby venues in Foursquare application; and check into the target
        venue."
        """
        venue = self.find_nearby_venue(name_substring)
        if venue is None:
            raise DeviceError(
                f"no nearby venue matching {name_substring!r}"
            )
        return self.check_in(venue.venue_id)
