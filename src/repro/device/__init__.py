"""Smartphone substrate: GPS hardware, OS location API, emulator, client app."""

from repro.device.bluetooth import (
    BluetoothGpsModule,
    BluetoothGpsSimulator,
    build_gpgga,
    nmea_checksum,
    parse_gpgga,
)
from repro.device.client_app import LbsnClientApp
from repro.device.emulator import Device, DeviceEmulator, EmulatorConsole
from repro.device.gps import (
    TYPICAL_SATELLITES_IN_VIEW,
    FakeGpsModule,
    GpsFix,
    GpsModule,
    HardwareGpsModule,
)
from repro.device.os_api import (
    GPS_PROVIDER,
    NETWORK_PROVIDER,
    LocationApi,
    fixed_location_hook,
    remote_feed_hook,
)

__all__ = [
    "BluetoothGpsModule",
    "BluetoothGpsSimulator",
    "build_gpgga",
    "nmea_checksum",
    "parse_gpgga",
    "LbsnClientApp",
    "Device",
    "DeviceEmulator",
    "EmulatorConsole",
    "TYPICAL_SATELLITES_IN_VIEW",
    "FakeGpsModule",
    "GpsFix",
    "GpsModule",
    "HardwareGpsModule",
    "GPS_PROVIDER",
    "NETWORK_PROVIDER",
    "LocationApi",
    "fixed_location_hook",
    "remote_feed_hook",
]
