"""Privacy leakage from public profiles (§6.2.1, the thesis's future work).

"After we crawled webpages for all venues, we built a personal location
history for each user on Foursquare."  Given a series of crawl snapshots,
this module reconstructs per-user location timelines, infers home cities,
and detects co-location between users — all from data the site exposes to
anyone.  The point is not the attack itself but the demonstration that the
§5.2 information-hiding defenses have something real to protect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.patterns import cluster_cities
from repro.crawler.database import CrawlDatabase
from repro.crawler.snapshots import ObservedCheckIn, SnapshotDiff
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint, centroid


@dataclass(frozen=True)
class TimelineEntry:
    """One reconstructed sighting: where a user was, within a time bound."""

    venue_id: int
    location: GeoPoint
    window_start: float
    window_end: float


@dataclass
class LocationTimeline:
    """A user's reconstructed location history."""

    user_id: int
    entries: List[TimelineEntry] = field(default_factory=list)

    @property
    def sightings(self) -> int:
        """Number of reconstructed sightings."""
        return len(self.entries)

    def locations(self) -> List[GeoPoint]:
        """All sighting locations."""
        return [entry.location for entry in self.entries]

    def between(self, start: float, end: float) -> List[TimelineEntry]:
        """Entries whose time bounds overlap [start, end]."""
        return [
            entry
            for entry in self.entries
            if entry.window_end >= start and entry.window_start <= end
        ]


def build_timelines(
    diffs: Sequence[SnapshotDiff], database: CrawlDatabase
) -> Dict[int, LocationTimeline]:
    """Assemble per-user timelines from snapshot diffs.

    ``database`` supplies venue coordinates (any snapshot's will do: venues
    don't move).
    """
    timelines: Dict[int, LocationTimeline] = {}
    for diff in diffs:
        for observation in diff.observed_checkins:
            venue = database.venue(observation.venue_id)
            if venue is None:
                continue
            timeline = timelines.setdefault(
                observation.user_id,
                LocationTimeline(user_id=observation.user_id),
            )
            timeline.entries.append(
                TimelineEntry(
                    venue_id=observation.venue_id,
                    location=GeoPoint(venue.latitude, venue.longitude),
                    window_start=observation.window_start,
                    window_end=observation.window_end,
                )
            )
    for timeline in timelines.values():
        timeline.entries.sort(key=lambda entry: entry.window_start)
    return timelines


@dataclass
class HomeInference:
    """Where a user most plausibly lives, and how confident we are."""

    user_id: int
    home_center: Optional[GeoPoint]
    #: Fraction of sightings inside the inferred home cluster.
    confidence: float
    sightings: int


def infer_home(timeline: LocationTimeline) -> HomeInference:
    """Infer the home metro as the largest sighting cluster."""
    points = timeline.locations()
    if not points:
        return HomeInference(
            user_id=timeline.user_id,
            home_center=None,
            confidence=0.0,
            sightings=0,
        )
    clusters = cluster_cities(points)
    largest = max(clusters, key=len)
    return HomeInference(
        user_id=timeline.user_id,
        home_center=centroid(largest),
        confidence=len(largest) / len(points),
        sightings=len(points),
    )


@dataclass(frozen=True)
class CoLocation:
    """Two users observed at the same venue in the same crawl window."""

    user_a: int
    user_b: int
    venue_id: int
    window_start: float
    window_end: float


def find_co_locations(
    diffs: Sequence[SnapshotDiff], min_occurrences: int = 2
) -> Dict[Tuple[int, int], List[CoLocation]]:
    """Pairs of users repeatedly surfacing at the same venue together.

    One shared sighting is coincidence; ``min_occurrences`` repeated
    co-appearances suggest an offline relationship — the kind of inference
    §5.2's hashing defense is meant to kill.
    """
    if min_occurrences < 1:
        raise ReproError(f"min_occurrences must be >= 1: {min_occurrences}")
    events: Dict[Tuple[int, int], List[CoLocation]] = {}
    for diff in diffs:
        by_venue: Dict[int, List[ObservedCheckIn]] = {}
        for observation in diff.observed_checkins:
            by_venue.setdefault(observation.venue_id, []).append(observation)
        for venue_id, observations in by_venue.items():
            users = sorted({obs.user_id for obs in observations})
            for index, user_a in enumerate(users):
                for user_b in users[index + 1 :]:
                    events.setdefault((user_a, user_b), []).append(
                        CoLocation(
                            user_a=user_a,
                            user_b=user_b,
                            venue_id=venue_id,
                            window_start=diff.window_start,
                            window_end=diff.window_end,
                        )
                    )
    return {
        pair: occurrences
        for pair, occurrences in events.items()
        if len(occurrences) >= min_occurrences
    }


@dataclass
class FriendshipSignal:
    """How strongly co-location predicts friendship.

    The §5.2-cited literature (Heatherly et al.; Zheleva & Getoor) infers
    private attributes from public social data; here the direction is
    reversed and measurable: pairs repeatedly co-located in crawl windows
    are friends at ``lift`` times the population's base friendship rate.
    """

    co_located_pairs: int
    co_located_friend_pairs: int
    baseline_friend_rate: float

    @property
    def co_located_friend_rate(self) -> float:
        """Fraction of co-located pairs that are listed friends."""
        if not self.co_located_pairs:
            return 0.0
        return self.co_located_friend_pairs / self.co_located_pairs

    @property
    def lift(self) -> float:
        """Co-located friend rate over the population base rate."""
        if self.baseline_friend_rate <= 0:
            return 0.0
        return self.co_located_friend_rate / self.baseline_friend_rate


def friendship_signal(
    diffs: Sequence[SnapshotDiff],
    database: CrawlDatabase,
    min_occurrences: int = 2,
) -> FriendshipSignal:
    """Measure co-location's power to predict (crawled) friendships."""
    pairs = find_co_locations(diffs, min_occurrences=min_occurrences)
    friend_edges = set()
    users = database.users()
    for user in users:
        for friend_id in user.friend_ids:
            friend_edges.add(
                (min(user.user_id, friend_id), max(user.user_id, friend_id))
            )
    total_users = len(users)
    possible_pairs = total_users * (total_users - 1) / 2.0
    baseline = len(friend_edges) / possible_pairs if possible_pairs else 0.0
    hits = sum(1 for pair in pairs if pair in friend_edges)
    return FriendshipSignal(
        co_located_pairs=len(pairs),
        co_located_friend_pairs=hits,
        baseline_friend_rate=baseline,
    )


@dataclass
class PrivacyReport:
    """Corpus-level summary of what repeated crawling exposes."""

    users_with_timelines: int = 0
    total_sightings: int = 0
    median_time_bound_s: float = 0.0
    homes_inferred: int = 0
    high_confidence_homes: int = 0
    co_located_pairs: int = 0


def privacy_exposure_report(
    diffs: Sequence[SnapshotDiff],
    database: CrawlDatabase,
    home_confidence_threshold: float = 0.6,
    co_location_min: int = 2,
) -> PrivacyReport:
    """One-call summary of the §6.2.1 exposure on a crawled corpus."""
    timelines = build_timelines(diffs, database)
    report = PrivacyReport()
    report.users_with_timelines = len(timelines)
    bounds: List[float] = []
    for timeline in timelines.values():
        report.total_sightings += timeline.sightings
        bounds.extend(
            entry.window_end - entry.window_start
            for entry in timeline.entries
        )
        inference = infer_home(timeline)
        if inference.home_center is not None:
            report.homes_inferred += 1
            if (
                inference.confidence >= home_confidence_threshold
                and inference.sightings >= 3
            ):
                report.high_confidence_homes += 1
    if bounds:
        bounds.sort()
        report.median_time_bound_s = bounds[len(bounds) // 2]
    report.co_located_pairs = len(
        find_co_locations(diffs, min_occurrences=co_location_min)
    )
    return report
