"""Fig 4.1: recent check-ins vs. total check-ins (§4.1).

"A recent check-in of a user means that the user is in a venue's recent
visitor list" — so the x-axis is the profile's total check-in count and the
y-axis the number of RecentCheckin rows for that user, averaged over users
with similar totals.  An abnormally high recent/total ratio means the user
keeps appearing at the top of many venues' lists at once, "a sign of
cheating".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.crawler.database import CrawlDatabase, UserInfoRow
from repro.errors import ReproError

#: The thesis plots users with 2000 or fewer totals: "they cover 99.98% of
#: users".
DEFAULT_MAX_TOTAL = 2_000


@dataclass(frozen=True)
class CurvePoint:
    """One aggregated point of the Fig 4.1 curve."""

    total_checkins: int
    average_recent: float
    users: int


def recent_vs_total_curve(
    database: CrawlDatabase,
    max_total: int = DEFAULT_MAX_TOTAL,
    bucket_width: int = 25,
) -> List[CurvePoint]:
    """Compute the Fig 4.1 series.

    Users are bucketed by total check-ins (the thesis's x-axis is exact
    totals over 1.89 M users; at reduced scale buckets stabilise the
    average); each bucket reports the mean recent-check-in count.
    Requires :meth:`CrawlDatabase.recompute_derived` to have run.
    """
    if bucket_width < 1:
        raise ReproError(f"bucket_width must be >= 1: {bucket_width}")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for user in database.users():
        if user.total_checkins < 1 or user.total_checkins > max_total:
            continue
        bucket = (user.total_checkins // bucket_width) * bucket_width
        sums[bucket] = sums.get(bucket, 0.0) + user.recent_checkins
        counts[bucket] = counts.get(bucket, 0) + 1
    return [
        CurvePoint(
            total_checkins=bucket + bucket_width // 2,
            average_recent=sums[bucket] / counts[bucket],
            users=counts[bucket],
        )
        for bucket in sorted(sums)
    ]


def high_ratio_users(
    database: CrawlDatabase,
    min_total: int = 500,
    min_ratio: float = 0.5,
) -> List[UserInfoRow]:
    """Users whose recent/total ratio marks them as possible cheaters.

    The thesis: "some users with more than 1,000 check-ins have an
    unusually high percentage of recent check-ins, which suggests that
    those users are possibly cheaters."
    """
    suspects = database.select_users(
        lambda u: u.total_checkins >= min_total
        and u.recent_checkins / max(1, u.total_checkins) >= min_ratio
    )
    return sorted(
        suspects,
        key=lambda u: u.recent_checkins / max(1, u.total_checkins),
        reverse=True,
    )


def trackable_users(
    database: CrawlDatabase,
    min_total: int = 500,
    max_total: int = 2_000,
) -> Tuple[int, float]:
    """The §4.1 privacy observation: heavy users are easy to track.

    "On average, we get around 100 recent check-ins of a user, if the user
    did more than 500 check-ins total. There are 25,074 users that have a
    total check-in number falling in between 500 and 2000."  Returns
    ``(user_count, average_recent_checkins)`` for that band.
    """
    band = database.select_users(
        lambda u: min_total <= u.total_checkins <= max_total
    )
    if not band:
        return (0, 0.0)
    average = sum(u.recent_checkins for u in band) / len(band)
    return (len(band), average)
