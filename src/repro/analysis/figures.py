"""Figure-series export: the paper's plots as plain data.

Downstream users regenerate the thesis's figures with their own plotting
stack; each function here returns the exact (x, y) series or point cloud a
figure needs, plus a ``to_csv`` helper for flat files.  The benchmark
harness renders the same series as ASCII; this module is the
programmatic surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.activity import recent_vs_total_curve
from repro.analysis.patterns import checkin_map
from repro.analysis.reward_rate import badges_vs_total_curve
from repro.crawler.database import CrawlDatabase
from repro.errors import ReproError


@dataclass
class FigureData:
    """One figure's data: named columns of equal length."""

    figure: str
    title: str
    columns: Dict[str, List[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ReproError(
                f"figure {self.figure}: ragged columns {sorted(lengths)}"
            )

    @property
    def rows(self) -> int:
        """Number of data rows."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def to_csv(self) -> str:
        """Render as CSV text (header + rows)."""
        names = list(self.columns)
        lines = [",".join(names)]
        for index in range(self.rows):
            lines.append(
                ",".join(
                    f"{self.columns[name][index]:.6g}" for name in names
                )
            )
        return "\n".join(lines) + "\n"


def fig_3_4_starbucks(
    database: CrawlDatabase, pattern: str = "%Starbucks%"
) -> FigureData:
    """Fig 3.4: (longitude, latitude) of every name-matched venue."""
    coordinates = database.venue_coordinates_like(pattern)
    return FigureData(
        figure="3.4",
        title=f"Locations of venues matching {pattern!r}",
        columns={
            "longitude": [lon for lon, _ in coordinates],
            "latitude": [lat for _, lat in coordinates],
        },
    )


def fig_3_5_tour(tour) -> FigureData:
    """Fig 3.5: intended waypoints vs snapped venues of a planned tour.

    ``tour`` is a :class:`repro.attack.tour.PlannedTour`.
    """
    return FigureData(
        figure="3.5",
        title="Location cheating check-ins along a virtual path",
        columns={
            "intended_longitude": [s.intended.longitude for s in tour.stops],
            "intended_latitude": [s.intended.latitude for s in tour.stops],
            "actual_longitude": [
                s.venue_location.longitude for s in tour.stops
            ],
            "actual_latitude": [s.venue_location.latitude for s in tour.stops],
        },
    )


def fig_4_1_recent_vs_total(
    database: CrawlDatabase,
    max_total: int = 2_000,
    bucket_width: int = 25,
) -> FigureData:
    """Fig 4.1: average recent check-ins per total-check-in bucket."""
    curve = recent_vs_total_curve(
        database, max_total=max_total, bucket_width=bucket_width
    )
    return FigureData(
        figure="4.1",
        title="Recent check-ins vs. total check-ins",
        columns={
            "total_checkins": [float(p.total_checkins) for p in curve],
            "average_recent_checkins": [p.average_recent for p in curve],
            "users": [float(p.users) for p in curve],
        },
    )


def fig_4_2_badges(
    database: CrawlDatabase,
    max_total: int = 14_000,
    bucket_width: int = 100,
) -> FigureData:
    """Fig 4.2: average badges per total-check-in bucket."""
    curve = badges_vs_total_curve(
        database, max_total=max_total, bucket_width=bucket_width
    )
    return FigureData(
        figure="4.2",
        title="Number of badges vs. number of check-ins",
        columns={
            "total_checkins": [float(p.total_checkins) for p in curve],
            "average_badges": [p.average_badges for p in curve],
            "users": [float(p.users) for p in curve],
        },
    )


def fig_4_3_user_map(database: CrawlDatabase, user_id: int) -> FigureData:
    """Figs 4.3/4.4: one user's reconstructed check-in locations."""
    points = checkin_map(database, user_id)
    return FigureData(
        figure="4.3/4.4",
        title=f"Check-in locations of user {user_id}",
        columns={
            "longitude": [p.longitude for p in points],
            "latitude": [p.latitude for p in points],
        },
    )


def all_figures(
    database: CrawlDatabase,
    cheater_user_id: Optional[int] = None,
    normal_user_id: Optional[int] = None,
) -> List[FigureData]:
    """Every corpus figure in one call (tour figures need a tour)."""
    figures = [
        fig_3_4_starbucks(database),
        fig_4_1_recent_vs_total(database),
        fig_4_2_badges(database),
    ]
    if cheater_user_id is not None:
        figures.append(fig_4_3_user_map(database, cheater_user_id))
    if normal_user_id is not None:
        figures.append(fig_4_3_user_map(database, normal_user_id))
    return figures
