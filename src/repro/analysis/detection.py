"""Combined cheater detection: the three identifying factors of Chapter 4.

"(1) above normal level of activity, (2) below normal level of rewards,
and (3) suspicious check-in patterns."  Each factor contributes a score in
[0, 1]; users above a combined threshold are reported as suspects.  This is
the "find cheaters Foursquare hasn't found" future-work tool the thesis
sketches at the end of §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.patterns import (
    PatternVerdict,
    analyze_pattern,
)
from repro.crawler.database import CrawlDatabase, UserInfoRow


@dataclass
class SuspicionReport:
    """Per-user factor scores and the combined verdict."""

    user_id: int
    total_checkins: int
    activity_score: float = 0.0
    reward_score: float = 0.0
    pattern_score: float = 0.0
    city_count: int = 0

    @property
    def combined_score(self) -> float:
        """Mean of the three factor scores."""
        return (self.activity_score + self.reward_score + self.pattern_score) / 3.0

    @property
    def strongest_factor(self) -> float:
        """The most incriminating single factor."""
        return max(self.activity_score, self.reward_score, self.pattern_score)


@dataclass
class DetectorConfig:
    """Thresholds for the three factors."""

    #: Minimum total check-ins to be worth scoring at all.
    min_total_checkins: int = 200
    #: recent/total ratio that saturates the activity factor.
    saturating_ratio: float = 0.8
    #: Expected badges per 100 check-ins for honest users...
    expected_badges_per_100: float = 8.0
    #: ...saturating at the catalogue's practical ceiling (the Fig 4.2
    #: curve plateaus near 90 for heavy legitimate users).
    badge_ceiling: float = 90.0
    #: City count that saturates the pattern factor.
    saturating_city_count: int = 20
    #: Combined score above which a user is reported.
    report_threshold: float = 0.45
    #: A single factor at or above this also reports the user: each of
    #: Chapter 4's three signals is individually incriminating.
    strong_factor_threshold: float = 0.8


class CheaterDetector:
    """Scores users over a crawl database."""

    def __init__(
        self,
        database: CrawlDatabase,
        config: Optional[DetectorConfig] = None,
    ) -> None:
        self.database = database
        self.config = config or DetectorConfig()

    def score_user(self, user: UserInfoRow) -> SuspicionReport:
        """Score one user on all three factors."""
        config = self.config
        report = SuspicionReport(
            user_id=user.user_id, total_checkins=user.total_checkins
        )
        if user.total_checkins <= 0:
            return report

        # Factor 1 — above-normal activity: the recent/total ratio.
        ratio = user.recent_checkins / user.total_checkins
        report.activity_score = min(1.0, ratio / config.saturating_ratio)

        # Factor 2 — below-normal rewards: badge shortfall against a
        # saturating expectation (badges plateau for heavy honest users).
        expected = max(
            1.0,
            min(
                config.badge_ceiling,
                user.total_checkins * config.expected_badges_per_100 / 100.0,
            ),
        )
        shortfall = max(0.0, 1.0 - user.total_badges / expected)
        report.reward_score = shortfall

        # Factor 3 — suspicious pattern: geographic dispersion.
        pattern = analyze_pattern(self.database, user.user_id)
        report.city_count = pattern.city_count
        if pattern.verdict is not PatternVerdict.INSUFFICIENT_DATA:
            report.pattern_score = min(
                1.0, pattern.city_count / config.saturating_city_count
            )
        return report

    def find_suspects(self) -> List[SuspicionReport]:
        """All users above the reporting threshold, strongest first."""
        suspects: List[SuspicionReport] = []
        for user in self.database.users():
            if user.total_checkins < self.config.min_total_checkins:
                continue
            report = self.score_user(user)
            if self._reportable(report):
                suspects.append(report)
        suspects.sort(key=lambda r: r.combined_score, reverse=True)
        return suspects

    def _reportable(self, report: SuspicionReport) -> bool:
        """Combined score over the bar, or any single factor screaming."""
        if report.combined_score >= self.config.report_threshold:
            return True
        return report.strongest_factor >= self.config.strong_factor_threshold

    def undetected_mayor_holders(
        self, min_mayorships: int = 10
    ) -> List[SuspicionReport]:
        """Suspicious users who currently hold mayorships (§4.3's closing).

        "By the time this work was conducted, all mayors passed the
        scrutiny of the cheater code. So any cheaters we found in this
        group of users were new discoveries."
        """
        reports: List[SuspicionReport] = []
        for user in self.database.select_users(
            lambda u: u.total_mayors >= min_mayorships
        ):
            report = self.score_user(user)
            if self._reportable(report):
                reports.append(report)
        reports.sort(key=lambda r: r.combined_score, reverse=True)
        return reports
