"""Registration-cohort inference from sequential user IDs (§4.3).

"Judging from this user's ID (Foursquare increments this ID as user
registers), we believe that the user has used Foursquare for less than one
year."  Sequential IDs are a *clock*: with the service's launch date and
the current maximum ID, any user's registration date is interpolable —
another privacy cost of the enumerable ID space, and an input the thesis's
own cheater reasoning uses ("at least 30 different cities *within a
year*").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.crawler.database import CrawlDatabase
from repro.errors import ReproError


@dataclass
class GrowthModel:
    """Maps user IDs to estimated registration times.

    Assumes registrations grew with cumulative count proportional to
    ``t**exponent`` — exponent 1 is linear growth, 2 matches the steep
    "10,000 new members daily" ramp the thesis describes (and the
    workload generator's t² registration weighting).
    """

    max_user_id: int
    service_age_days: float
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.max_user_id < 1:
            raise ReproError(f"max_user_id must be >= 1: {self.max_user_id}")
        if self.service_age_days <= 0:
            raise ReproError(
                f"service age must be positive: {self.service_age_days}"
            )
        if self.exponent <= 0:
            raise ReproError(f"exponent must be positive: {self.exponent}")

    def registration_age_days(self, user_id: int) -> float:
        """Estimated days since this account registered.

        Inverts cumulative-registrations ∝ t^e: a user holding fraction f
        of the ID space registered at t = T * f^(1/e), i.e. their account
        is T * (1 - f^(1/e)) days old.
        """
        if user_id < 1:
            raise ReproError(f"user ids start at 1: {user_id}")
        fraction = min(1.0, user_id / self.max_user_id)
        registered_at = self.service_age_days * fraction ** (1.0 / self.exponent)
        return self.service_age_days - registered_at

    def account_younger_than(self, user_id: int, days: float) -> bool:
        """The §4.3 inference: is this account under ``days`` old?"""
        return self.registration_age_days(user_id) < days


def growth_model_from_crawl(
    database: CrawlDatabase,
    service_age_days: float,
    exponent: float = 2.0,
) -> GrowthModel:
    """Fit the ID clock from a crawl (max observed ID = newest account)."""
    users = database.users()
    if not users:
        raise ReproError("crawl contains no users")
    return GrowthModel(
        max_user_id=max(user.user_id for user in users),
        service_age_days=service_age_days,
        exponent=exponent,
    )


@dataclass
class ActivityRateReport:
    """A user's activity normalised by estimated account age (§4.3)."""

    user_id: int
    total_checkins: int
    estimated_age_days: float

    @property
    def checkins_per_day(self) -> float:
        """Lifetime check-in rate; §4.2 calls >16/day 'strong evidence'."""
        return self.total_checkins / max(1.0, self.estimated_age_days)


def activity_rates(
    database: CrawlDatabase,
    model: GrowthModel,
    min_total_checkins: int = 100,
) -> List[ActivityRateReport]:
    """Per-user lifetime check-in rates, heaviest first.

    §4.2's smoking gun: "The average check-ins per day for these users is
    over 16 times since the Foursquare service was launched", except the
    ID clock sharpens it — a huge total on a *young* account is even more
    damning than the same total since launch.
    """
    reports = [
        ActivityRateReport(
            user_id=user.user_id,
            total_checkins=user.total_checkins,
            estimated_age_days=model.registration_age_days(user.user_id),
        )
        for user in database.users()
        if user.total_checkins >= min_total_checkins
    ]
    reports.sort(key=lambda r: r.checkins_per_day, reverse=True)
    return reports
