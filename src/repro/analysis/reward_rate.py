"""Fig 4.2: badges vs. total check-ins — the low-reward-rate signal (§4.2).

For honest users, badges rise steadily with check-ins.  Users whose
check-ins were invalidated by the cheater code keep accumulating *totals*
but not *rewards*, so heavy accounts with almost no badges are caught
cheaters: "many users with more than 1000 check-ins only have less than 10
badges ... they are location cheaters and were caught by Foursquare."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.crawler.database import CrawlDatabase, UserInfoRow
from repro.errors import ReproError


@dataclass(frozen=True)
class BadgeCurvePoint:
    """One aggregated point of the Fig 4.2 curve."""

    total_checkins: int
    average_badges: float
    users: int


def badges_vs_total_curve(
    database: CrawlDatabase,
    max_total: int = 14_000,
    bucket_width: int = 100,
) -> List[BadgeCurvePoint]:
    """Compute the Fig 4.2 series (mean badges per total-check-in bucket)."""
    if bucket_width < 1:
        raise ReproError(f"bucket_width must be >= 1: {bucket_width}")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for user in database.users():
        if user.total_checkins < 1 or user.total_checkins > max_total:
            continue
        bucket = (user.total_checkins // bucket_width) * bucket_width
        sums[bucket] = sums.get(bucket, 0.0) + user.total_badges
        counts[bucket] = counts.get(bucket, 0) + 1
    return [
        BadgeCurvePoint(
            total_checkins=bucket + bucket_width // 2,
            average_badges=sums[bucket] / counts[bucket],
            users=counts[bucket],
        )
        for bucket in sorted(sums)
    ]


def low_reward_users(
    database: CrawlDatabase,
    min_total: int = 1_000,
    max_badges: int = 10,
) -> List[UserInfoRow]:
    """Heavy accounts with almost no badges — the caught-cheater signature."""
    return sorted(
        database.select_users(
            lambda u: u.total_checkins >= min_total
            and u.total_badges <= max_badges
        ),
        key=lambda u: u.total_checkins,
        reverse=True,
    )


@dataclass
class ExtremeClubReport:
    """§4.2's analysis of the >= 5000-check-in club.

    "These 11 users ... can be divided into two distinct groups by the
    number of mayorships they have": mayored power users vs. caught
    cheaters with none.
    """

    members: List[UserInfoRow]
    with_mayorships: List[UserInfoRow]
    without_mayorships: List[UserInfoRow]

    @property
    def size(self) -> int:
        """Club membership count."""
        return len(self.members)


def extreme_club(
    database: CrawlDatabase, min_total: int = 5_000
) -> ExtremeClubReport:
    """Split the heaviest accounts by mayorship holdings.

    Requires :meth:`CrawlDatabase.recompute_derived` (TotalMayors).
    """
    members = sorted(
        database.select_users(lambda u: u.total_checkins >= min_total),
        key=lambda u: u.total_checkins,
        reverse=True,
    )
    with_m = [u for u in members if u.total_mayors > 0]
    without_m = [u for u in members if u.total_mayors == 0]
    return ExtremeClubReport(
        members=members,
        with_mayorships=with_m,
        without_mayorships=without_m,
    )
