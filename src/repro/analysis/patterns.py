"""Figs 4.3/4.4: geographic check-in patterns (§4.3).

The thesis reconstructs a user's "visited" map by joining the venues whose
recent-visitor lists contain the user with those venues' coordinates — all
public data.  A user scattered over 30+ cities in under a year (Fig 4.3) is
a suspected cheater; one concentrated in ~3 cities with a vacation or two
(Fig 4.4) is normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.crawler.database import CrawlDatabase
from repro.errors import ReproError
from repro.geo.coordinates import BoundingBox, GeoPoint
from repro.geo.distance import haversine_m, pairwise_max_distance_m

#: Two check-in points within this distance belong to the same "city".
CITY_CLUSTER_RADIUS_M = 60_000.0

#: Fig 4.3's cheater spans "over 30 different cities"; Fig 4.4's normal
#: user concentrates in three.  The default boundary sits between them.
SUSPICIOUS_CITY_COUNT = 10


class PatternVerdict(Enum):
    """Outcome of the check-in pattern classifier."""

    NORMAL = "normal"
    SUSPICIOUS = "suspicious"
    INSUFFICIENT_DATA = "insufficient-data"


def cluster_cities(
    points: List[GeoPoint],
    radius_m: float = CITY_CLUSTER_RADIUS_M,
) -> List[List[GeoPoint]]:
    """Greedy leader clustering of check-in points into "cities".

    Each point joins the first existing cluster whose leader is within
    ``radius_m``; otherwise it founds a new cluster.  Simple, deterministic
    and entirely adequate for metro-scale separation (cities are hundreds
    of kilometers apart; metros tens of kilometers wide).
    """
    if radius_m <= 0:
        raise ReproError(f"radius must be positive: {radius_m}")
    leaders: List[GeoPoint] = []
    clusters: List[List[GeoPoint]] = []
    for point in points:
        placed = False
        for index, leader in enumerate(leaders):
            if haversine_m(leader, point) <= radius_m:
                clusters[index].append(point)
                placed = True
                break
        if not placed:
            leaders.append(point)
            clusters.append([point])
    return clusters


@dataclass
class PatternReport:
    """Everything the §4.3 analysis derives from one user's check-in map."""

    user_id: int
    points: List[GeoPoint] = field(default_factory=list)
    city_count: int = 0
    #: Points in the largest city cluster / total (concentration measure).
    concentration: float = 0.0
    diameter_m: float = 0.0
    bbox: Optional[BoundingBox] = None
    verdict: PatternVerdict = PatternVerdict.INSUFFICIENT_DATA

    @property
    def point_count(self) -> int:
        """Number of mapped check-in locations."""
        return len(self.points)


def checkin_map(database: CrawlDatabase, user_id: int) -> List[GeoPoint]:
    """The user's publicly reconstructible check-in locations.

    Joins RecentCheckin rows against VenueInfo coordinates — exactly the
    thesis's method ("we draw the venues to which a user has checked in on
    a map").
    """
    points: List[GeoPoint] = []
    for venue_id in database.recent_venues_of_user(user_id):
        venue = database.venue(venue_id)
        if venue is not None:
            points.append(GeoPoint(venue.latitude, venue.longitude))
    return points


def analyze_pattern(
    database: CrawlDatabase,
    user_id: int,
    min_points: int = 5,
    suspicious_city_count: int = SUSPICIOUS_CITY_COUNT,
) -> PatternReport:
    """Build the full Fig 4.3/4.4 report for one user."""
    points = checkin_map(database, user_id)
    report = PatternReport(user_id=user_id, points=points)
    if len(points) < min_points:
        return report
    clusters = cluster_cities(points)
    report.city_count = len(clusters)
    report.concentration = max(len(c) for c in clusters) / len(points)
    report.diameter_m = pairwise_max_distance_m(points)
    report.bbox = BoundingBox.around(points)
    if report.city_count >= suspicious_city_count:
        report.verdict = PatternVerdict.SUSPICIOUS
    else:
        report.verdict = PatternVerdict.NORMAL
    return report


def scan_patterns(
    database: CrawlDatabase,
    min_recent_checkins: int = 50,
    suspicious_city_count: int = SUSPICIOUS_CITY_COUNT,
) -> List[PatternReport]:
    """Run the pattern analysis over every sufficiently visible user.

    The thesis examined "users with more than 1,000 recent check-in
    records, users with more than 2000 total check-ins, and users with
    more than 100 mayorships"; the threshold here scales to smaller
    corpora.
    """
    reports: List[PatternReport] = []
    for user in database.users():
        if user.recent_checkins < min_recent_checkins:
            continue
        reports.append(
            analyze_pattern(
                database,
                user.user_id,
                suspicious_city_count=suspicious_city_count,
            )
        )
    reports.sort(key=lambda r: r.city_count, reverse=True)
    return reports
