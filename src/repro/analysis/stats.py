"""Population statistics: every inline number the thesis reports (E8).

Computed from the *crawl database*, like the thesis's own analysis.  At
reduced world scale the absolute counts shrink; the proportions are what
the EXPERIMENTS.md comparison tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.crawler.database import CrawlDatabase


@dataclass
class PopulationStats:
    """The §2.1/§3.2/§4.2 corpus statistics."""

    users: int = 0
    venues: int = 0
    recent_checkin_records: int = 0

    users_with_zero_checkins: int = 0
    users_with_1_to_5: int = 0
    users_with_1000_plus: int = 0
    users_with_5000_plus: int = 0
    users_with_usernames: int = 0

    venues_with_one_checkin: int = 0
    venues_with_one_visitor: int = 0
    venues_with_specials: int = 0
    mayor_only_specials: int = 0

    users_with_mayorships: int = 0
    venues_with_mayors: int = 0

    # Derived fractions -------------------------------------------------

    @property
    def zero_checkin_fraction(self) -> float:
        """Thesis: 36.3%."""
        return self.users_with_zero_checkins / max(1, self.users)

    @property
    def light_checkin_fraction(self) -> float:
        """Thesis: 20.4% with one to five check-ins."""
        return self.users_with_1_to_5 / max(1, self.users)

    @property
    def under_six_fraction(self) -> float:
        """Thesis: "more than half of the users have ... less than six"."""
        return self.zero_checkin_fraction + self.light_checkin_fraction

    @property
    def heavy_user_fraction(self) -> float:
        """Thesis: 0.2% with at least 1,000 check-ins."""
        return self.users_with_1000_plus / max(1, self.users)

    @property
    def username_fraction(self) -> float:
        """Thesis: 26.1% of users have usernames."""
        return self.users_with_usernames / max(1, self.users)

    @property
    def mayor_only_special_fraction(self) -> float:
        """Thesis: "more than 90% of the rewards were only for mayors"."""
        return self.mayor_only_specials / max(1, self.venues_with_specials)

    @property
    def average_mayorships_per_mayor(self) -> float:
        """Thesis: 5.45 venues per mayor-holding user."""
        return self.venues_with_mayors / max(1, self.users_with_mayorships)

    @property
    def average_recent_checkins_per_user(self) -> float:
        """Thesis: >= 10 check-ins per user from the 20 M crawled records."""
        return self.recent_checkin_records / max(1, self.users)


def compute_population_stats(database: CrawlDatabase) -> PopulationStats:
    """Tally everything in one pass over the crawl tables.

    Requires :meth:`CrawlDatabase.recompute_derived` for the mayor counts.
    """
    stats = PopulationStats()
    users = database.users()
    stats.users = len(users)
    for user in users:
        if user.total_checkins == 0:
            stats.users_with_zero_checkins += 1
        elif user.total_checkins <= 5:
            stats.users_with_1_to_5 += 1
        if user.total_checkins >= 1_000:
            stats.users_with_1000_plus += 1
        if user.total_checkins >= 5_000:
            stats.users_with_5000_plus += 1
        if user.user_name is not None:
            stats.users_with_usernames += 1
        if user.total_mayors > 0:
            stats.users_with_mayorships += 1

    venues = database.venues()
    stats.venues = len(venues)
    for venue in venues:
        if venue.checkins_here == 1:
            stats.venues_with_one_checkin += 1
        if venue.unique_visitors == 1:
            stats.venues_with_one_visitor += 1
        if venue.special is not None:
            stats.venues_with_specials += 1
            if venue.special_mayor_only:
                stats.mayor_only_specials += 1
        if venue.mayor_id is not None:
            stats.venues_with_mayors += 1

    stats.recent_checkin_records = len(database.recent_checkins())
    return stats


def format_stats_table(stats: PopulationStats) -> List[str]:
    """Paper-vs-measured rows for the E8 bench output."""
    rows = [
        f"users: {stats.users}",
        f"venues: {stats.venues}",
        f"recent check-in records: {stats.recent_checkin_records}",
        f"zero-check-in users: {stats.zero_checkin_fraction:.1%} (paper 36.3%)",
        f"1-5 check-in users: {stats.light_checkin_fraction:.1%} (paper 20.4%)",
        f"under-six users: {stats.under_six_fraction:.1%} (paper >50%)",
        f">=1000-check-in users: {stats.heavy_user_fraction:.2%} (paper 0.2%)",
        f">=5000-check-in users: {stats.users_with_5000_plus} (paper 11)",
        f"username users: {stats.username_fraction:.1%} (paper 26.1%)",
        f"one-check-in venues: {stats.venues_with_one_checkin}"
        f" ({stats.venues_with_one_checkin / max(1, stats.venues):.1%};"
        f" paper 1,291,125 of 5.6M = 23.1%)",
        f"one-visitor venues: {stats.venues_with_one_visitor}"
        f" ({stats.venues_with_one_visitor / max(1, stats.venues):.1%};"
        f" paper 2,014,305 of 5.6M = 36.0%)",
        f"mayor-only specials: {stats.mayor_only_special_fraction:.1%}"
        f" (paper >90%)",
        f"users with mayorships: {stats.users_with_mayorships}"
        f" (paper 425,196)",
        f"venues with mayors: {stats.venues_with_mayors} (paper 2,315,747)",
        f"avg mayorships per mayor: {stats.average_mayorships_per_mayor:.2f}"
        f" (paper 5.45)",
    ]
    return rows
