"""Detector quality evaluation against planted ground truth (§6.2.2).

The thesis's second future-work direction: "find better solutions to
identify possible cheaters, especially those whom haven't been found by
the existing anti-cheating mechanisms."  The simulator knows exactly which
accounts cheat, so detector quality is measurable: precision/recall at a
threshold, and the full tradeoff curve as the threshold sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.analysis.detection import CheaterDetector, SuspicionReport
from repro.errors import ReproError


@dataclass(frozen=True)
class DetectionQuality:
    """Confusion-matrix summary at one operating point."""

    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); vacuously 1.0 with no positives reported."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); vacuously 1.0 with no actual positives."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN)."""
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0


def score_population(
    detector: CheaterDetector, min_total_checkins: int = 0
) -> List[SuspicionReport]:
    """Score every sufficiently active user (no threshold filtering)."""
    reports = []
    for user in detector.database.users():
        if user.total_checkins < max(
            min_total_checkins, detector.config.min_total_checkins
        ):
            continue
        reports.append(detector.score_user(user))
    return reports


def quality_at_threshold(
    reports: Sequence[SuspicionReport],
    cheater_ids: Set[int],
    threshold: float,
) -> DetectionQuality:
    """Confusion matrix when reporting ``combined_score >= threshold``."""
    tp = fp = fn = tn = 0
    for report in reports:
        predicted = report.combined_score >= threshold
        actual = report.user_id in cheater_ids
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif not predicted and actual:
            fn += 1
        else:
            tn += 1
    return DetectionQuality(
        threshold=threshold,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def threshold_sweep(
    reports: Sequence[SuspicionReport],
    cheater_ids: Set[int],
    thresholds: Iterable[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
) -> List[DetectionQuality]:
    """Quality at every threshold — the detector's tradeoff curve."""
    if not reports:
        raise ReproError("no scored reports to evaluate")
    return [
        quality_at_threshold(reports, cheater_ids, threshold)
        for threshold in thresholds
    ]


def best_f1(sweep: Sequence[DetectionQuality]) -> DetectionQuality:
    """The operating point with the highest F1."""
    if not sweep:
        raise ReproError("empty sweep")
    return max(sweep, key=lambda quality: quality.f1)


def format_sweep_table(sweep: Sequence[DetectionQuality]) -> List[str]:
    """Printable rows for the E17 bench."""
    rows = ["threshold  precision  recall     F1   FPR"]
    for quality in sweep:
        rows.append(
            f"{quality.threshold:9.2f}  {quality.precision:9.2f}  "
            f"{quality.recall:6.2f}  {quality.f1:5.2f}  "
            f"{quality.false_positive_rate:5.3f}"
        )
    return rows
