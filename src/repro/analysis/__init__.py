"""Chapter-4 evaluation pipeline over crawled data."""

from repro.analysis.activity import (
    CurvePoint,
    high_ratio_users,
    recent_vs_total_curve,
    trackable_users,
)
from repro.analysis.detection import (
    CheaterDetector,
    DetectorConfig,
    SuspicionReport,
)
from repro.analysis.patterns import (
    CITY_CLUSTER_RADIUS_M,
    SUSPICIOUS_CITY_COUNT,
    PatternReport,
    PatternVerdict,
    analyze_pattern,
    checkin_map,
    cluster_cities,
    scan_patterns,
)
from repro.analysis.reward_rate import (
    BadgeCurvePoint,
    ExtremeClubReport,
    badges_vs_total_curve,
    extreme_club,
    low_reward_users,
)
from repro.analysis.stats import (
    PopulationStats,
    compute_population_stats,
    format_stats_table,
)

__all__ = [
    "CurvePoint",
    "high_ratio_users",
    "recent_vs_total_curve",
    "trackable_users",
    "CheaterDetector",
    "DetectorConfig",
    "SuspicionReport",
    "CITY_CLUSTER_RADIUS_M",
    "SUSPICIOUS_CITY_COUNT",
    "PatternReport",
    "PatternVerdict",
    "analyze_pattern",
    "checkin_map",
    "cluster_cities",
    "scan_patterns",
    "BadgeCurvePoint",
    "ExtremeClubReport",
    "badges_vs_total_curve",
    "extreme_club",
    "low_reward_users",
    "PopulationStats",
    "compute_population_stats",
    "format_stats_table",
]

from repro.analysis.privacy import (
    CoLocation,
    HomeInference,
    LocationTimeline,
    PrivacyReport,
    TimelineEntry,
    build_timelines,
    find_co_locations,
    infer_home,
    privacy_exposure_report,
)

__all__ += [
    "CoLocation",
    "HomeInference",
    "LocationTimeline",
    "PrivacyReport",
    "TimelineEntry",
    "build_timelines",
    "find_co_locations",
    "infer_home",
    "privacy_exposure_report",
]

from repro.analysis.figures import (
    FigureData,
    all_figures,
    fig_3_4_starbucks,
    fig_3_5_tour,
    fig_4_1_recent_vs_total,
    fig_4_2_badges,
    fig_4_3_user_map,
)

__all__ += [
    "FigureData",
    "all_figures",
    "fig_3_4_starbucks",
    "fig_3_5_tour",
    "fig_4_1_recent_vs_total",
    "fig_4_2_badges",
    "fig_4_3_user_map",
]

from repro.analysis.evaluation import (
    DetectionQuality,
    best_f1,
    format_sweep_table,
    quality_at_threshold,
    score_population,
    threshold_sweep,
)

__all__ += [
    "DetectionQuality",
    "best_f1",
    "format_sweep_table",
    "quality_at_threshold",
    "score_population",
    "threshold_sweep",
]

from repro.analysis.privacy import FriendshipSignal, friendship_signal

__all__ += ["FriendshipSignal", "friendship_signal"]

from repro.analysis.growth import (
    ActivityRateReport,
    GrowthModel,
    activity_rates,
    growth_model_from_crawl,
)

__all__ += [
    "ActivityRateReport",
    "GrowthModel",
    "activity_rates",
    "growth_model_from_crawl",
]
