"""Points and badge engine — the "progressive reward mechanism" of §2.1.

The thesis lists four reward tiers from easiest to hardest: points (every
valid check-in), badges (specific achievements such as "30 check-ins in a
month" or "checked into 10 different venues"), mayorships (competitive), and
real-world rewards (specials).  Points and badges live here; mayorship logic
is in :mod:`repro.lbsn.mayorship`, specials in :mod:`repro.lbsn.specials`.

Only VALID check-ins make badge/point progress: flagged check-ins count
toward the raw total but earn nothing, which is exactly the signature the
Fig 4.2 analysis exploits to spot caught cheaters.

Badge predicates are written to scan history *backwards from the newest
check-in and stop at their time window*, so evaluating a badge is O(window
activity) rather than O(lifetime activity) — the workload generator replays
hundreds of thousands of check-ins through this engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.lbsn.models import CheckIn, CheckInStatus, User
from repro.simnet.clock import SECONDS_PER_DAY, day_index


@dataclass
class PointsPolicy:
    """How many points each kind of valid check-in earns."""

    base: int = 1
    first_visit_bonus: int = 2
    first_of_day_bonus: int = 3
    became_mayor_bonus: int = 5

    def score(
        self,
        first_visit: bool,
        first_of_day: bool,
        became_mayor: bool,
    ) -> int:
        """Points for one valid check-in with the given attributes."""
        points = self.base
        if first_visit:
            points += self.first_visit_bonus
        if first_of_day:
            points += self.first_of_day_bonus
        if became_mayor:
            points += self.became_mayor_bonus
        return points


def _recent_valid(
    history: Sequence[CheckIn], window_start: float
) -> Iterator[CheckIn]:
    """Valid check-ins at or after ``window_start``, newest first.

    Relies on ``history`` being time-ordered (the store appends in order),
    so the scan stops at the first record older than the window.
    """
    for checkin in reversed(history):
        if checkin.timestamp < window_start:
            return
        if checkin.status is CheckInStatus.VALID:
            yield checkin


@dataclass(frozen=True)
class BadgeDefinition:
    """One badge: a name, the unlock text, and an unlock predicate.

    The predicate sees the user (whose counters are already updated for the
    triggering check-in) and their full recorded history with the new
    check-in as its last element; it returns True when the badge unlocks.
    """

    name: str
    description: str
    predicate: Callable[[User, Sequence[CheckIn]], bool]


def _distinct_venue_badge(
    threshold: int,
) -> Callable[[User, Sequence[CheckIn]], bool]:
    def unlocked(user: User, history: Sequence[CheckIn]) -> bool:
        # The service maintains venues_visited incrementally; O(1).
        return len(user.venues_visited) >= threshold

    return unlocked


def _newbie(user: User, history: Sequence[CheckIn]) -> bool:
    return user.valid_checkins >= 1


def _super_user(user: User, history: Sequence[CheckIn]) -> bool:
    """30 valid check-ins within a rolling 30-day window."""
    if not history or user.valid_checkins < 30:
        return False
    window_start = history[-1].timestamp - 30.0 * SECONDS_PER_DAY
    count = 0
    for _ in _recent_valid(history, window_start):
        count += 1
        if count >= 30:
            return True
    return False


def _bender(user: User, history: Sequence[CheckIn]) -> bool:
    """Valid check-ins on 4 consecutive calendar days ending today.

    Scans backwards over distinct days and stops at the first gap, so the
    cost is bounded by the length of the current streak.
    """
    if not history:
        return False
    today = day_index(history[-1].timestamp)
    expected = today
    streak = 0
    for checkin in reversed(history):
        if checkin.status is not CheckInStatus.VALID:
            continue
        day = day_index(checkin.timestamp)
        if day == expected:
            streak += 1
            if streak >= 4:
                return True
            expected -= 1
        elif day < expected:
            return False
        # day == expected + 1 means another check-in on an already-counted
        # day; skip it.
    return False


def _local(user: User, history: Sequence[CheckIn]) -> bool:
    """3 valid check-ins at the same venue within one week."""
    if not history:
        return False
    latest = history[-1]
    window_start = latest.timestamp - 7.0 * SECONDS_PER_DAY
    count = 0
    for checkin in _recent_valid(history, window_start):
        if checkin.venue_id == latest.venue_id:
            count += 1
            if count >= 3:
                return True
    return False


def _overshare(user: User, history: Sequence[CheckIn]) -> bool:
    """10 valid check-ins within 12 hours."""
    if not history or user.valid_checkins < 10:
        return False
    window_start = history[-1].timestamp - 12.0 * 3_600.0
    count = 0
    for _ in _recent_valid(history, window_start):
        count += 1
        if count >= 10:
            return True
    return False


def _crunked(user: User, history: Sequence[CheckIn]) -> bool:
    """4+ distinct valid stops within a 4-hour night out."""
    if not history or user.valid_checkins < 4:
        return False
    window_start = history[-1].timestamp - 4.0 * 3_600.0
    venues = set()
    for checkin in _recent_valid(history, window_start):
        venues.add(checkin.venue_id)
        if len(venues) >= 4:
            return True
    return False


#: Valid-check-in count milestones (the largest badge family).
CHECKIN_MILESTONES = (
    5, 15, 25, 35, 50, 75, 100, 150, 200, 250, 300, 400, 500, 600, 700,
    800, 900, 1_000, 1_250, 1_500, 2_000, 2_500, 3_000, 4_000, 5_000,
)

#: Distinct-venue milestones beyond the four named badges.
VENUE_MILESTONES = (
    3, 5, 15, 20, 30, 40, 60, 70, 80, 90, 125, 150, 200, 250, 300, 400, 500,
)

#: Distinct active-day milestones.
DAY_MILESTONES = (2, 5, 10, 20, 30, 50, 75, 100, 150, 200, 250, 300, 365)

#: Concurrent-mayorship milestones.
MAYOR_MILESTONES = (1, 3, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300, 500)


def _checkin_milestone(threshold: int):
    def unlocked(user: User, history: Sequence[CheckIn]) -> bool:
        return user.valid_checkins >= threshold

    return unlocked


def _day_milestone(threshold: int):
    def unlocked(user: User, history: Sequence[CheckIn]) -> bool:
        return len(user.active_days) >= threshold

    return unlocked


def _mayor_milestone(threshold: int):
    def unlocked(user: User, history: Sequence[CheckIn]) -> bool:
        return user.mayorship_count >= threshold

    return unlocked


def milestone_badges() -> List[BadgeDefinition]:
    """The four parametric badge ladders.

    Real Foursquare's catalogue was large enough that heavy legitimate
    users held on the order of 80-90 badges (the Fig 4.2 y-axis); these
    ladders give the simulated catalogue the same dynamic range while
    every unlock stays O(1) against the user's maintained counters.
    """
    badges: List[BadgeDefinition] = []
    for threshold in CHECKIN_MILESTONES:
        badges.append(
            BadgeDefinition(
                f"Check-ins x{threshold}",
                f"{threshold} lifetime check-ins!",
                _checkin_milestone(threshold),
            )
        )
    for threshold in VENUE_MILESTONES:
        badges.append(
            BadgeDefinition(
                f"Venues x{threshold}",
                f"Checked into {threshold} different venues!",
                _distinct_venue_badge(threshold),
            )
        )
    for threshold in DAY_MILESTONES:
        badges.append(
            BadgeDefinition(
                f"Days x{threshold}",
                f"Checked in on {threshold} different days!",
                _day_milestone(threshold),
            )
        )
    for threshold in MAYOR_MILESTONES:
        badges.append(
            BadgeDefinition(
                f"Mayor x{threshold}",
                f"Mayor of {threshold} venues at once!",
                _mayor_milestone(threshold),
            )
        )
    return badges


def default_badges() -> List[BadgeDefinition]:
    """The badge catalogue, anchored on the two the thesis names.

    "Adventurer: You've checked into 10 different venues!" is quoted
    directly in §3.1; "30 check-ins in a month" is §2.1's example.  The
    named badges are period-faithful Foursquare badges; the milestone
    ladders give the Fig 4.2 badges-vs-check-ins curve its dynamic range
    (legitimate heavy users reach ~90 badges, caught cheaters stall under
    10).
    """
    return milestone_badges() + [
        BadgeDefinition("Newbie", "Your first check-in!", _newbie),
        BadgeDefinition(
            "Adventurer",
            "You've checked into 10 different venues!",
            _distinct_venue_badge(10),
        ),
        BadgeDefinition(
            "Explorer",
            "You've checked into 25 different venues!",
            _distinct_venue_badge(25),
        ),
        BadgeDefinition(
            "Superstar",
            "You've checked into 50 different venues!",
            _distinct_venue_badge(50),
        ),
        BadgeDefinition(
            "Wanderlust",
            "You've checked into 100 different venues!",
            _distinct_venue_badge(100),
        ),
        BadgeDefinition("Super User", "30 check-ins in a month!", _super_user),
        BadgeDefinition("Bender", "Checked in 4 days in a row!", _bender),
        BadgeDefinition(
            "Local",
            "3 check-ins at the same venue in one week!",
            _local,
        ),
        BadgeDefinition("Overshare", "10 check-ins in 12 hours!", _overshare),
        BadgeDefinition("Crunked", "4+ stops in one night!", _crunked),
    ]


class BadgeEngine:
    """Awards badges after each valid check-in."""

    def __init__(
        self, definitions: Optional[List[BadgeDefinition]] = None
    ) -> None:
        self._definitions = definitions or default_badges()

    @property
    def catalogue(self) -> List[BadgeDefinition]:
        """All badge definitions in evaluation order."""
        return list(self._definitions)

    def evaluate(self, user: User, history: Sequence[CheckIn]) -> List[str]:
        """Return names of newly unlocked badges and add them to ``user``.

        ``history`` must already include the triggering check-in as its
        last element.
        """
        if len(user.badges) >= len(self._definitions):
            return []
        earned: List[str] = []
        for definition in self._definitions:
            if definition.name in user.badges:
                continue
            if definition.predicate(user, history):
                user.badges.add(definition.name)
                earned.append(definition.name)
        return earned
