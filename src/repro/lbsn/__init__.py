"""The simulated LBSN service: the substrate under attack.

``LbsnService`` is the server; ``LbsnWebServer`` its public website (the
crawler's target); ``LbsnApiServer`` its developer API (spoofing channel 3);
``CheaterCode`` the anti-cheating rule set the attack must evade.
"""

from repro.lbsn.api import LbsnApiServer, TokenRegistry, parse_kv
from repro.lbsn.cheater_code import (
    RULE_FREQUENT,
    RULE_RAPID_FIRE,
    RULE_SUPERHUMAN,
    CheaterCode,
    CheaterCodeConfig,
    RuleAction,
    RuleVerdict,
)
from repro.lbsn.mayorship import (
    MAYORSHIP_WINDOW_DAYS,
    MayorDecision,
    checkin_days_by_user,
    decide_mayor,
)
from repro.lbsn.models import (
    CheckIn,
    CheckInResult,
    CheckInStatus,
    Special,
    User,
    Venue,
    VenueCategory,
)
from repro.lbsn.rewards import (
    BadgeDefinition,
    BadgeEngine,
    PointsPolicy,
    default_badges,
)
from repro.lbsn.service import (
    RULE_GPS_VERIFICATION,
    LbsnService,
    ServiceConfig,
    ServiceCounters,
)
from repro.lbsn.specials import (
    mayor_only_fraction,
    no_mayorship_specials,
    special_unlocked_by,
    undefended_special_venues,
    venues_with_specials,
)
from repro.lbsn.sharded import (
    DEFAULT_SHARDS,
    ShardedDataStore,
    shard_for_key,
)
from repro.lbsn.store import DataStore, EventSequencer
from repro.lbsn.webserver import LbsnWebServer

__all__ = [
    "LbsnApiServer",
    "TokenRegistry",
    "parse_kv",
    "RULE_FREQUENT",
    "RULE_RAPID_FIRE",
    "RULE_SUPERHUMAN",
    "CheaterCode",
    "CheaterCodeConfig",
    "RuleAction",
    "RuleVerdict",
    "MAYORSHIP_WINDOW_DAYS",
    "MayorDecision",
    "checkin_days_by_user",
    "decide_mayor",
    "CheckIn",
    "CheckInResult",
    "CheckInStatus",
    "Special",
    "User",
    "Venue",
    "VenueCategory",
    "BadgeDefinition",
    "BadgeEngine",
    "PointsPolicy",
    "default_badges",
    "RULE_GPS_VERIFICATION",
    "LbsnService",
    "ServiceConfig",
    "ServiceCounters",
    "mayor_only_fraction",
    "no_mayorship_specials",
    "special_unlocked_by",
    "undefended_special_venues",
    "venues_with_specials",
    "DataStore",
    "EventSequencer",
    "DEFAULT_SHARDS",
    "ShardedDataStore",
    "shard_for_key",
    "LbsnWebServer",
]

from repro.lbsn.items import (
    Item,
    ItemEvent,
    ItemRarity,
    ItemSystem,
    farm_items,
)

__all__ += [
    "Item",
    "ItemEvent",
    "ItemRarity",
    "ItemSystem",
    "farm_items",
]
