"""A Gowalla-style item economy — the §1.1 generality claim, made testable.

The thesis's method chapter closes: "The methods may also apply to other
similar LBSs."  Gowalla (the paper's second-named service) rewarded
check-ins with collectible *items* dropped at venues rather than
mayorships.  This module bolts that reward scheme onto the same service
substrate, so the identical spoofing channels and scheduler can be run
against a structurally different LBSN: the attack code does not change,
only the loot does.

Mechanics (modeled on 2010 Gowalla):

* Venues seed with a few items of varying rarity.
* A valid check-in lets the visitor pick up one item (rarest first) and
  optionally drop one of their own — items circulate.
* Collectors prize completing rare-item sets; an item-farming attack is a
  tour over seeded venues, exactly like a mayorship harvest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService


class ItemRarity(Enum):
    """Gowalla items came in tiers; rare ones drove the collecting game."""

    COMMON = 1
    UNCOMMON = 2
    RARE = 3
    EPIC = 4

    @property
    def score(self) -> int:
        """Collection points for holding one item of this tier."""
        return 10 ** (self.value - 1)


_ITEM_NAMES = (
    "Espresso Cup", "Sombrero", "Compass", "Harmonica", "Cactus",
    "Paper Lantern", "Old Map", "Snow Globe", "Vinyl Record", "Bonsai",
    "Gold Pan", "Lighthouse", "Totem", "Gramophone", "Meteorite",
)


@dataclass(frozen=True)
class Item:
    """One collectible: identity, display name, rarity tier."""

    item_id: int
    name: str
    rarity: ItemRarity


@dataclass
class ItemEvent:
    """What happened to the visitor's satchel at one check-in."""

    picked_up: Optional[Item] = None
    dropped: Optional[Item] = None


class ItemSystem:
    """The item economy layered on an :class:`LbsnService`.

    The service itself is untouched: the item system *observes* check-in
    results and moves items accordingly, the way Gowalla's loot layer sat
    on top of its check-in flow.
    """

    def __init__(
        self,
        service: LbsnService,
        seed: int = 0,
        seeded_fraction: float = 0.25,
        items_per_venue: int = 2,
    ) -> None:
        if not 0.0 <= seeded_fraction <= 1.0:
            raise ServiceError(
                f"seeded fraction must be in [0, 1]: {seeded_fraction}"
            )
        if items_per_venue < 1:
            raise ServiceError(
                f"items per venue must be >= 1: {items_per_venue}"
            )
        self.service = service
        self._rng = random.Random(seed)
        self._next_item_id = 1
        #: venue_id -> items currently lying there.
        self._venue_items: Dict[int, List[Item]] = {}
        #: user_id -> satchel contents.
        self._satchels: Dict[int, List[Item]] = {}
        self._seed_venues(seeded_fraction, items_per_venue)

    # Seeding -----------------------------------------------------------

    def _mint(self) -> Item:
        roll = self._rng.random()
        if roll < 0.60:
            rarity = ItemRarity.COMMON
        elif roll < 0.85:
            rarity = ItemRarity.UNCOMMON
        elif roll < 0.97:
            rarity = ItemRarity.RARE
        else:
            rarity = ItemRarity.EPIC
        item = Item(
            item_id=self._next_item_id,
            name=self._rng.choice(_ITEM_NAMES),
            rarity=rarity,
        )
        self._next_item_id += 1
        return item

    def _seed_venues(self, fraction: float, per_venue: int) -> None:
        for venue in self.service.store.iter_venues():
            if self._rng.random() < fraction:
                self._venue_items[venue.venue_id] = [
                    self._mint() for _ in range(per_venue)
                ]

    # Queries -------------------------------------------------------------

    def items_at(self, venue_id: int) -> List[Item]:
        """Items currently lying at a venue."""
        return list(self._venue_items.get(venue_id, []))

    def satchel_of(self, user_id: int) -> List[Item]:
        """A user's current item collection."""
        return list(self._satchels.get(user_id, []))

    def collection_score(self, user_id: int) -> int:
        """Rarity-weighted score of a user's satchel."""
        return sum(item.rarity.score for item in self.satchel_of(user_id))

    def seeded_venue_ids(self) -> List[int]:
        """Venues that still hold at least one item (attack targets)."""
        return sorted(
            venue_id
            for venue_id, items in self._venue_items.items()
            if items
        )

    # The loot hook --------------------------------------------------------

    def on_checkin(self, user_id: int, venue_id: int, status: CheckInStatus,
                   drop: bool = False) -> ItemEvent:
        """Apply item mechanics to one check-in outcome.

        Only VALID check-ins move items — a flagged or rejected check-in
        earns nothing, mirroring the host service's reward policy.  The
        visitor takes the rarest item present; with ``drop`` they leave
        their most common one behind (Gowalla's swap custom).
        """
        event = ItemEvent()
        if status is not CheckInStatus.VALID:
            return event
        pile = self._venue_items.get(venue_id)
        if pile:
            pile.sort(key=lambda item: item.rarity.value, reverse=True)
            event.picked_up = pile.pop(0)
            self._satchels.setdefault(user_id, []).append(event.picked_up)
        if drop:
            satchel = self._satchels.get(user_id, [])
            if len(satchel) > 1:
                satchel.sort(key=lambda item: item.rarity.value)
                event.dropped = satchel.pop(0)
                self._venue_items.setdefault(venue_id, []).append(
                    event.dropped
                )
        return event


def farm_items(
    system: ItemSystem,
    channel,
    scheduler,
    planner,
    max_targets: int = 25,
) -> Dict[str, object]:
    """An item-farming raid: the mayorship harvest, re-aimed at loot.

    Builds a tour over seeded venues with the SAME planner/scheduler/
    channel stack used against the Foursquare-style rewards — demonstrating
    the §1.1 claim that the attack transfers across LBSNs unchanged.
    Returns a summary dict (attempts, detections, items, score).
    """
    from repro.attack.campaign import greedy_route, tour_from_targets
    from repro.attack.targeting import TargetVenue

    service = system.service
    targets = []
    for venue_id in system.seeded_venue_ids()[: max_targets * 3]:
        venue = service.store.get_venue(venue_id)
        if venue is None:
            continue
        targets.append(
            TargetVenue(
                venue_id=venue_id,
                name=venue.name,
                latitude=venue.location.latitude,
                longitude=venue.location.longitude,
                special=None,
                reason="item cache",
            )
        )
        if len(targets) >= max_targets:
            break
    if not targets:
        raise ServiceError("no seeded venues to farm")
    tour = tour_from_targets(greedy_route(targets))
    schedule = scheduler.build(tour)
    picked: List[Item] = []
    detected = 0
    user_id = channel.app.user_id
    for entry in schedule:
        if entry.fire_at > service.clock.now():
            service.clock.advance_to(entry.fire_at)
        channel.set_location(entry.location)
        outcome = channel.check_in(entry.venue_id)
        if not outcome.rewarded:
            detected += 1
        event = system.on_checkin(
            user_id, entry.venue_id, outcome.status
        )
        if event.picked_up:
            picked.append(event.picked_up)
    return {
        "attempts": len(schedule.entries),
        "detected": detected,
        "items": picked,
        "score": system.collection_score(user_id),
    }
