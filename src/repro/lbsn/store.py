"""Thread-safe in-memory datastore backing the LBSN service.

One coarse reentrant lock guards all tables.  The crawler hammers the web
server from many threads while the attack campaign checks in concurrently,
so every public method takes the lock; the service layer composes multi-step
operations under :meth:`locked`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.faults.injector import FaultInjector
from repro.faults.points import POINT_STORE_COMMIT
from repro.geo.coordinates import GeoPoint
from repro.geo.grid import SpatialGrid
from repro.lbsn.models import CheckIn, User, Venue
from repro.obs.log import DEBUG, LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.ids import SequentialIdAllocator

#: Histogram buckets for group-commit batch sizes (check-ins per batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class EventSequencer:
    """Global monotonic allocator for stream-event sequence numbers.

    One instance is shared by every shard of a
    :class:`~repro.lbsn.sharded.ShardedDataStore`, so sequence numbers
    stay globally unique, dense, and commit-ordered no matter which shard
    allocated them.  :meth:`allocate_block` hands out a contiguous run in
    one lock acquisition — the group-commit path's amortisation lever.

    The contract the conformance harness checks: every allocated number
    is used exactly once (allocation happens *after* fault checks and
    duplicate validation, so an aborted commit never burns a slot), and
    the union of all allocations is exactly ``range(watermark())``.
    """

    __slots__ = ("_lock", "_next")

    def __init__(self, start: int = 0) -> None:
        self._lock = threading.Lock()
        self._next = start

    def allocate(self) -> int:
        """Allocate one sequence number."""
        with self._lock:
            seq = self._next
            self._next += 1
            return seq

    def allocate_block(self, count: int) -> int:
        """Allocate ``count`` contiguous numbers; returns the first."""
        if count < 0:
            raise ValueError(f"negative block size: {count}")
        with self._lock:
            start = self._next
            self._next += count
            return start

    def watermark(self) -> int:
        """The next sequence number that will be allocated."""
        with self._lock:
            return self._next


class DataStore:
    """Users, venues, check-ins, and the spatial index over venues.

    Pass a :class:`~repro.obs.MetricsRegistry` to export entity counts as
    gauges (``repro_store_users`` / ``_venues`` / ``_checkins``) and lock
    hold times (``repro_store_lock_hold_seconds``) for the composite
    sections — :meth:`locked` and :meth:`add_checkin_committed`, the two
    places the lock is held across multi-step work.  Fine-grained getters
    are deliberately not timed: their hold time is one dict lookup, and
    per-call timers there would cost more than the work they measure.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        sequencer: Optional[EventSequencer] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._metrics = metrics
        #: Optional fault injector checked at ``store.commit`` *before*
        #: any table row mutates, so a fired commit fault aborts cleanly
        #: (typically as :class:`~repro.errors.CommitContentionError`).
        self.faults = faults
        #: DEBUG-level commit records ("store.commit"), carrying the
        #: check-in's trace so a grep over the structured log shows the
        #: commit between the service's verify and publish records.
        self._logger = log.logger("lbsn.store") if log is not None else None
        if metrics is not None:
            # Bind the anonymous children directly: these record on every
            # row insert, so each saved indirection matters (E20 bench).
            self._gauge_users = metrics.gauge(
                "repro_store_users", "Users resident in the datastore."
            ).child()
            self._gauge_venues = metrics.gauge(
                "repro_store_venues", "Venues resident in the datastore."
            ).child()
            self._gauge_checkins = metrics.gauge(
                "repro_store_checkins",
                "Check-in rows resident in the datastore.",
            ).child()
            self._lock_hold = metrics.histogram(
                "repro_store_lock_hold_seconds",
                "Store-lock hold time across composite sections.",
            ).child()
            self._batch_commits = metrics.counter(
                "repro_store_batch_commits_total",
                "Group-commit batches applied.",
            ).child()
            self._batch_checkins = metrics.counter(
                "repro_store_batch_checkins_total",
                "Check-ins committed through the group-commit path.",
            ).child()
            self._batch_size = metrics.histogram(
                "repro_store_batch_size",
                "Check-ins coalesced per group-commit batch.",
                buckets=BATCH_SIZE_BUCKETS,
            ).child()
        else:
            self._gauge_users = None
            self._gauge_venues = None
            self._gauge_checkins = None
            self._lock_hold = None
            self._batch_commits = None
            self._batch_checkins = None
            self._batch_size = None
        self._users: Dict[int, User] = {}
        self._venues: Dict[int, Venue] = {}
        self._checkins: Dict[int, CheckIn] = {}
        self._checkins_by_user: Dict[int, List[CheckIn]] = {}
        self._checkins_by_venue: Dict[int, List[CheckIn]] = {}
        self._usernames: Dict[str, int] = {}
        self._venue_grid: SpatialGrid[int] = SpatialGrid(cell_size_deg=0.01)
        self.user_ids = SequentialIdAllocator()
        self.venue_ids = SequentialIdAllocator()
        self.checkin_ids = SequentialIdAllocator()
        #: Monotonic commit-order sequencer for stream events.  Allocated
        #: under the store lock so event sequence == commit sequence; a
        #: :class:`~repro.lbsn.sharded.ShardedDataStore` injects one
        #: shared :class:`EventSequencer` into every shard so the order
        #: stays global.
        self._sequencer = sequencer if sequencer is not None else EventSequencer()

    @property
    def sequencer(self) -> EventSequencer:
        """The (possibly shared) commit-order sequencer."""
        return self._sequencer

    @contextmanager
    def locked(self) -> Iterator[None]:
        """Hold the store lock across a multi-step operation."""
        # Bind once: the instrument may be attached/detached mid-run, and
        # mixing a None check with a later re-read observes garbage.
        lock_hold = self._lock_hold
        if lock_hold is None:
            with self._lock:
                yield
            return
        with self._lock:
            acquired = time.perf_counter()
            try:
                yield
            finally:
                lock_hold.observe(time.perf_counter() - acquired)

    # Users ------------------------------------------------------------

    def add_user(self, user: User) -> User:
        """Insert a user; the ID must already be allocated and unused."""
        with self._lock:
            if user.user_id in self._users:
                raise ServiceError(f"duplicate user id {user.user_id}")
            if user.username is not None:
                if user.username in self._usernames:
                    raise ServiceError(f"duplicate username {user.username!r}")
                self._usernames[user.username] = user.user_id
            self._users[user.user_id] = user
            self._checkins_by_user.setdefault(user.user_id, [])
            if self._gauge_users is not None:
                self._gauge_users.inc()
            return user

    def get_user(self, user_id: int) -> Optional[User]:
        """User by numeric ID, or None."""
        with self._lock:
            return self._users.get(user_id)

    def get_user_by_username(self, username: str) -> Optional[User]:
        """User by username (the second URL form in §3.2), or None."""
        with self._lock:
            user_id = self._usernames.get(username)
            return None if user_id is None else self._users.get(user_id)

    def require_user(self, user_id: int) -> User:
        """User by ID, raising :class:`ServiceError` when missing."""
        user = self.get_user(user_id)
        if user is None:
            raise ServiceError(f"no such user: {user_id}")
        return user

    def user_count(self) -> int:
        """Total registered users."""
        with self._lock:
            return len(self._users)

    def iter_users(self) -> List[User]:
        """Snapshot list of all users."""
        with self._lock:
            return list(self._users.values())

    # Venues -----------------------------------------------------------

    def add_venue(self, venue: Venue) -> Venue:
        """Insert a venue and index its location."""
        with self._lock:
            if venue.venue_id in self._venues:
                raise ServiceError(f"duplicate venue id {venue.venue_id}")
            self._venues[venue.venue_id] = venue
            self._checkins_by_venue.setdefault(venue.venue_id, [])
            self._venue_grid.insert(venue.venue_id, venue.location)
            if self._gauge_venues is not None:
                self._gauge_venues.inc()
            return venue

    def get_venue(self, venue_id: int) -> Optional[Venue]:
        """Venue by numeric ID, or None."""
        with self._lock:
            return self._venues.get(venue_id)

    def require_venue(self, venue_id: int) -> Venue:
        """Venue by ID, raising :class:`ServiceError` when missing."""
        venue = self.get_venue(venue_id)
        if venue is None:
            raise ServiceError(f"no such venue: {venue_id}")
        return venue

    def venue_count(self) -> int:
        """Total registered venues."""
        with self._lock:
            return len(self._venues)

    def iter_venues(self) -> List[Venue]:
        """Snapshot list of all venues."""
        with self._lock:
            return list(self._venues.values())

    def venues_near(
        self, point: GeoPoint, radius_m: float
    ) -> List[Venue]:
        """Venues within ``radius_m`` of ``point``, nearest first.

        This backs both the client app's "nearby venues" suggestion list
        and the rapid-fire rule's area query.
        """
        with self._lock:
            hits = self._venue_grid.query_radius(point, radius_m)
            return [self._venues[venue_id] for venue_id, _, _ in hits]

    def venues_near_with_distance(
        self, point: GeoPoint, radius_m: float
    ) -> List[Tuple[Venue, float]]:
        """Like :meth:`venues_near` but keeping each hit's distance (m).

        A :class:`~repro.lbsn.sharded.ShardedDataStore` needs distances
        to merge per-shard result lists into one nearest-first order.
        """
        with self._lock:
            hits = self._venue_grid.query_radius(point, radius_m)
            return [
                (self._venues[venue_id], distance)
                for venue_id, _, distance in hits
            ]

    def nearest_venue(
        self, point: GeoPoint, max_radius_m: float = 50_000.0
    ) -> Optional[Venue]:
        """The closest venue to ``point`` within ``max_radius_m``."""
        with self._lock:
            hit = self._venue_grid.nearest(point, max_radius_m=max_radius_m)
            return None if hit is None else self._venues[hit[0]]

    def nearest_venue_with_distance(
        self, point: GeoPoint, max_radius_m: float = 50_000.0
    ) -> Optional[Tuple[Venue, float]]:
        """Like :meth:`nearest_venue` but keeping the distance (m)."""
        with self._lock:
            hit = self._venue_grid.nearest(point, max_radius_m=max_radius_m)
            return None if hit is None else (self._venues[hit[0]], hit[2])

    # Check-ins ----------------------------------------------------------

    def _insert_checkin_row_locked(self, checkin: CheckIn) -> None:
        """Row-table + per-user-index insert.  Caller holds the lock."""
        if checkin.checkin_id in self._checkins:
            raise ServiceError(f"duplicate checkin id {checkin.checkin_id}")
        self._checkins[checkin.checkin_id] = checkin
        self._checkins_by_user.setdefault(checkin.user_id, []).append(
            checkin
        )
        if self._gauge_checkins is not None:
            self._gauge_checkins.inc()

    def add_checkin(self, checkin: CheckIn) -> CheckIn:
        """Record a check-in attempt (any status)."""
        with self._lock:
            self._insert_checkin_row_locked(checkin)
            self._checkins_by_venue.setdefault(checkin.venue_id, []).append(
                checkin
            )
            return checkin

    def insert_checkin_rows(self, checkins: Sequence[CheckIn]) -> None:
        """Insert row-table + per-user-index entries, one lock hold.

        The per-*venue* index is deliberately **not** touched: this is the
        sharding seam.  A :class:`~repro.lbsn.sharded.ShardedDataStore`
        keys rows by user id but venue order by venue id, so the two
        halves of a commit may land on different shards — the facade
        routes the venue half through :meth:`index_checkins_at_venue`.
        Single-store callers wanting both in one step keep using
        :meth:`add_checkin` / :meth:`add_checkin_committed`.
        """
        with self._lock:
            ids = self._validate_new_rows_locked(checkins)
            self._insert_rows_fast_locked(checkins, ids)

    def commit_checkin_rows(self, checkins: Sequence[CheckIn]) -> int:
        """Insert rows AND allocate a contiguous seq block atomically.

        Returns the first sequence number of the block; ``checkins[i]``
        owns ``start + i``.  One lock hold covers validation, every row
        insert, and the block allocation, so per-user commit order equals
        seq order — the contract :meth:`add_checkin_committed` documents,
        batched.  Like :meth:`insert_checkin_rows` this leaves the venue
        index to the caller.
        """
        lock_hold = self._lock_hold
        with self._lock:
            started = time.perf_counter() if lock_hold is not None else 0.0
            ids = self._validate_new_rows_locked(checkins)
            self._insert_rows_fast_locked(checkins, ids)
            start = self._sequencer.allocate_block(len(checkins))
            if lock_hold is not None:
                lock_hold.observe(time.perf_counter() - started)
        return start

    def _insert_rows_fast_locked(
        self,
        checkins: Sequence[CheckIn],
        ids: Optional[List[int]] = None,
    ) -> None:
        """Batch row insert: caller holds the lock AND already validated.

        The amortisation half of group commit: the row table fills via
        one C-level ``dict.update`` (reusing the id list the validator
        already built), locals are hoisted out of the per-user index
        loop, and ONE gauge increment covers the whole batch (each
        ``inc`` takes the child's lock, which at 8 writers is real
        money).
        """
        if ids is None:
            ids = [checkin.checkin_id for checkin in checkins]
        self._checkins.update(zip(ids, checkins))
        by_user = self._checkins_by_user
        by_user_get = by_user.get
        for checkin in checkins:
            user_id = checkin.user_id
            rows = by_user_get(user_id)
            if rows is None:
                rows = by_user[user_id] = []
            rows.append(checkin)
        if self._gauge_checkins is not None:
            self._gauge_checkins.inc(len(checkins))

    def _validate_new_rows_locked(
        self, checkins: Sequence[CheckIn]
    ) -> List[int]:
        """All-or-nothing guard: reject the whole batch before any insert.

        The happy path is two C-level set operations (no per-row Python
        work); only an actual collision walks the batch again to name the
        offending id.  Returns the batch's id list so the insert path
        can reuse it without re-reading every row.
        """
        ids = [checkin.checkin_id for checkin in checkins]
        id_set = set(ids)
        if len(id_set) == len(ids) and not (self._checkins.keys() & id_set):
            return ids
        seen: set = set()
        for checkin_id in ids:
            if checkin_id in self._checkins or checkin_id in seen:
                raise ServiceError(f"duplicate checkin id {checkin_id}")
            seen.add(checkin_id)
        raise ServiceError("duplicate checkin id in batch")

    def index_checkins_at_venue(self, checkins: Sequence[CheckIn]) -> None:
        """Append check-ins to the per-venue order index, one lock hold.

        The other half of the sharding seam (see
        :meth:`insert_checkin_rows`).  Appends happen in iteration order
        under this store's lock, so per-venue order is venue-commit
        order; under cross-shard races it may diverge from global seq
        order, which the mayorship logic (day-bucketed counts) tolerates.
        """
        with self._lock:
            by_venue = self._checkins_by_venue
            by_venue_get = by_venue.get
            for checkin in checkins:
                venue_id = checkin.venue_id
                rows = by_venue_get(venue_id)
                if rows is None:
                    rows = by_venue[venue_id] = []
                rows.append(checkin)

    def allocate_event_seq(self) -> int:
        """Allocate one stream-event sequence number under the store lock.

        Used for transitions that change no table rows (rejections, new
        users/venues) but still need a slot in the global commit order.
        """
        with self._lock:
            return self._sequencer.allocate()

    def add_checkin_committed(
        self, checkin: CheckIn, trace_id: Optional[str] = None
    ) -> Tuple[CheckIn, int]:
        """Append a check-in AND allocate its event sequence atomically.

        This is the event-ordering fix: ``add_checkin`` followed by a
        separate sequence allocation lets two racing threads commit in one
        order and sequence in the other, producing a stream that
        contradicts the store.  Composing both under one :meth:`locked`
        section guarantees that for every user (and venue), event sequence
        numbers are strictly increasing in exactly list-append order.

        When a :class:`~repro.obs.log.LogHub` was injected, each commit
        emits a DEBUG ``store.commit`` record carrying ``trace_id`` — the
        link between the service's ``checkin`` record and the bus events
        that follow.  The record is emitted *outside* the lock.

        With a fault injector attached, the ``store.commit`` failure
        point is checked *before* the lock is taken or any row mutates:
        a fired fault (typically
        :class:`~repro.errors.CommitContentionError`) therefore never
        leaves partial state — the commit is all-or-nothing, which is
        the invariant the chaos suite's ledger-parity check leans on.
        """
        if self.faults is not None:
            self.faults.check(POINT_STORE_COMMIT, trace_id=trace_id)
        # Bind the instrument once: attaching/detaching it mid-commit must
        # not pair a ``started = 0.0`` with a live ``observe`` (which
        # would record ~machine-uptime garbage into the histogram).
        lock_hold = self._lock_hold
        with self._lock:
            started = time.perf_counter() if lock_hold is not None else 0.0
            self._insert_checkin_row_locked(checkin)
            self._checkins_by_venue.setdefault(checkin.venue_id, []).append(
                checkin
            )
            seq = self._sequencer.allocate()
            if lock_hold is not None:
                lock_hold.observe(time.perf_counter() - started)
        logger = self._logger
        if logger is not None and logger.enabled_for(DEBUG):
            logger.debug(
                "store.commit",
                trace_id=trace_id,
                checkin_id=checkin.checkin_id,
                user_id=checkin.user_id,
                venue_id=checkin.venue_id,
                seq=seq,
            )
        return checkin, seq

    def add_checkins_committed(
        self,
        checkins: Sequence[CheckIn],
        trace_id: Optional[str] = None,
    ) -> List[Tuple[CheckIn, int]]:
        """Group-commit: append a batch under ONE lock hold + seq block.

        The batched twin of :meth:`add_checkin_committed`: every fault
        check runs up front (one decision per check-in, mirroring what
        the same commits would draw singly, and still *before* any row
        mutates — a fired fault aborts the whole batch atomically), then
        one lock acquisition covers validation, every row and index
        insert, and one contiguous :meth:`EventSequencer.allocate_block`.
        ``result[i]`` is ``(checkins[i], start_seq + i)``, so per-user
        seq order equals list order exactly as in the single path.

        This is the capacity lever the E25 bench measures: at 8 writer
        threads the single path pays a contended lock acquisition, a
        sequencer hit, and a histogram observation *per check-in*; this
        path pays each once per batch.
        """
        checkins = list(checkins)
        if not checkins:
            return []
        if self.faults is not None:
            for checkin in checkins:
                self.faults.check(POINT_STORE_COMMIT, trace_id=trace_id)
        lock_hold = self._lock_hold
        with self._lock:
            started = time.perf_counter() if lock_hold is not None else 0.0
            ids = self._validate_new_rows_locked(checkins)
            self._insert_rows_fast_locked(checkins, ids)
            by_venue = self._checkins_by_venue
            for checkin in checkins:
                by_venue.setdefault(checkin.venue_id, []).append(checkin)
            start = self._sequencer.allocate_block(len(checkins))
            if lock_hold is not None:
                lock_hold.observe(time.perf_counter() - started)
        if self._batch_commits is not None:
            self._batch_commits.inc()
            self._batch_checkins.inc(len(checkins))
            self._batch_size.observe(len(checkins))
        logger = self._logger
        if logger is not None and logger.enabled_for(DEBUG):
            logger.debug(
                "store.commit",
                trace_id=trace_id,
                batch=len(checkins),
                first_seq=start,
            )
        return [
            (checkin, start + offset)
            for offset, checkin in enumerate(checkins)
        ]

    def event_seq_watermark(self) -> int:
        """The next sequence number that will be allocated."""
        return self._sequencer.watermark()

    def get_checkin(self, checkin_id: int) -> Optional[CheckIn]:
        """Look up one check-in by ID."""
        with self._lock:
            return self._checkins.get(checkin_id)

    def checkins_of_user(self, user_id: int) -> List[CheckIn]:
        """All recorded check-ins by a user, oldest first.

        Returns the **live internal list** to keep history scans O(1) per
        access (heavy cheater accounts accumulate 10k+ records, and the
        check-in pipeline reads history on every attempt).  Callers must
        treat it as read-only; mutation goes through :meth:`add_checkin`.
        """
        with self._lock:
            return self._checkins_by_user.setdefault(user_id, [])

    def checkins_at_venue(self, venue_id: int) -> List[CheckIn]:
        """All recorded check-ins at a venue, oldest first.

        Same live-reference contract as :meth:`checkins_of_user`.
        """
        with self._lock:
            return self._checkins_by_venue.setdefault(venue_id, [])

    def checkin_count(self) -> int:
        """Total recorded check-ins (valid + flagged)."""
        with self._lock:
            return len(self._checkins)

    def last_checkin_of_user(self, user_id: int) -> Optional[CheckIn]:
        """Most recent recorded check-in by ``user_id``, or None."""
        with self._lock:
            checkins = self._checkins_by_user.get(user_id)
            return checkins[-1] if checkins else None

    def recent_checkins_of_user(
        self, user_id: int, limit: int
    ) -> List[CheckIn]:
        """Up to ``limit`` most recent check-ins by a user, newest first."""
        with self._lock:
            checkins = self._checkins_by_user.get(user_id, [])
            return list(reversed(checkins[-limit:]))
