"""The public server-side developer API (§3.1, spoofing channel 3).

"Foursquare provides a set of application APIs that allow developers to
create new applications ... These APIs can be employed by a location cheater
to check into a place."  The API accepts a latitude/longitude *as request
parameters*, so a cheater needs no device at all — the thesis notes this is
"more convenient to issue a large-scale cheating attack".

Responses are a deliberately simple ``key=value`` line format so the attack
tooling can parse them without a JSON dependency mismatch with 2010-era
clients.
"""

from __future__ import annotations

import secrets
import threading
from typing import Dict, Optional

from repro.errors import ServiceError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.obs.context import TraceContext, use_trace
from repro.simnet.http import (
    HTTP_NOT_FOUND,
    HTTP_UNAUTHORIZED,
    HttpRequest,
    HttpResponse,
    Router,
)


class TokenRegistry:
    """OAuth-style bearer tokens mapping to user accounts."""

    def __init__(self) -> None:
        self._tokens: Dict[str, int] = {}
        self._lock = threading.Lock()

    def issue(self, user_id: int) -> str:
        """Mint a fresh token for ``user_id``."""
        token = secrets.token_hex(16)
        with self._lock:
            self._tokens[token] = user_id
        return token

    def resolve(self, token: str) -> Optional[int]:
        """The user a token belongs to, or None."""
        with self._lock:
            return self._tokens.get(token)

    def revoke(self, token: str) -> bool:
        """Invalidate a token; returns whether it existed."""
        with self._lock:
            return self._tokens.pop(token, None) is not None


def _kv(payload: Dict[str, object]) -> str:
    """Serialize a flat dict as ``key=value`` lines."""
    return "\n".join(f"{key}={value}" for key, value in payload.items())


def parse_kv(body: str) -> Dict[str, str]:
    """Parse the ``key=value`` line format back into a dict."""
    result: Dict[str, str] = {}
    for line in body.splitlines():
        if "=" in line:
            key, _, value = line.partition("=")
            result[key] = value
    return result


class LbsnApiServer:
    """HTTP endpoints of the developer API."""

    def __init__(self, service: LbsnService, tokens: Optional[TokenRegistry] = None) -> None:
        self.service = service
        self.tokens = tokens or TokenRegistry()

    def install_routes(self, router: Router) -> None:
        """Attach API routes to a router."""
        router.add("POST", r"/api/checkin", self._checkin)
        router.add("GET", r"/api/venues/near", self._venues_near)

    def _authenticated_user(self, request: HttpRequest) -> Optional[int]:
        auth = request.header("Authorization")
        if auth.startswith("Bearer "):
            return self.tokens.resolve(auth[len("Bearer ") :])
        token = request.params.get("oauth_token", "")
        return self.tokens.resolve(token) if token else None

    def _checkin(self, request: HttpRequest, match) -> HttpResponse:
        user_id = self._authenticated_user(request)
        if user_id is None:
            return HttpResponse(status=HTTP_UNAUTHORIZED, body="status=unauthorized")
        try:
            venue_id = int(request.params["venue_id"])
            latitude = float(request.params["ll_lat"])
            longitude = float(request.params["ll_lng"])
        except (KeyError, ValueError):
            return HttpResponse(
                status=HTTP_NOT_FOUND, body="status=bad_request"
            )
        # Request entry is the trace root: when the service is
        # instrumented, mint here so the whole handler (and everything
        # the pipeline logs or publishes) shares one trace_id — which the
        # response echoes for client-side correlation.
        trace: Optional[TraceContext] = None
        if self.service.log is not None or self.service.tracer is not None:
            trace = TraceContext.mint()
        try:
            with use_trace(trace):
                result = self.service.check_in(
                    user_id=user_id,
                    venue_id=venue_id,
                    reported_location=GeoPoint(latitude, longitude),
                    trace=trace,
                )
        except ServiceError as exc:
            return HttpResponse(status=HTTP_NOT_FOUND, body=f"status=error\nmessage={exc}")
        payload = {
            "status": result.checkin.status.value,
            "points": result.points,
            "badges": ",".join(result.new_badges),
            "mayor": "1" if result.became_mayor else "0",
            "special": (
                result.special_unlocked.description
                if result.special_unlocked
                else ""
            ),
            "warnings": ";".join(result.warnings),
        }
        if trace is not None:
            payload["trace"] = trace.trace_id
        return HttpResponse(body=_kv(payload))

    def _venues_near(self, request: HttpRequest, match) -> HttpResponse:
        try:
            latitude = float(request.params["ll_lat"])
            longitude = float(request.params["ll_lng"])
        except (KeyError, ValueError):
            return HttpResponse(status=HTTP_NOT_FOUND, body="status=bad_request")
        venues = self.service.nearby_venues(GeoPoint(latitude, longitude))
        lines = [f"count={len(venues)}"]
        for venue in venues:
            lines.append(
                f"venue={venue.venue_id}|{venue.name}|"
                f"{venue.location.latitude:.6f}|{venue.location.longitude:.6f}"
            )
        return HttpResponse(body="\n".join(lines))
