"""Data model of the simulated location-based social network.

These records mirror the entities the thesis observes on Foursquare: users
with points/badges/mayorships, venues with specials and recent-visitor lists,
and check-ins that may be flagged by the cheater code.  A flagged check-in
*still counts toward the user's total* but yields no rewards — §4.3: "all
detected cheating check-ins still count in the total number of check-ins,
but do not receive any rewards".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.geo.coordinates import GeoPoint


class VenueCategory(Enum):
    """Coarse venue taxonomy used by the workload generator and analysis."""

    COFFEE = "coffee"
    RESTAURANT = "restaurant"
    BAR = "bar"
    SHOP = "shop"
    GROCERY = "grocery"
    HOTEL = "hotel"
    AIRPORT = "airport"
    LANDMARK = "landmark"
    OFFICE = "office"
    GYM = "gym"
    OTHER = "other"


@dataclass(frozen=True)
class Special:
    """A real-world reward a partner venue offers (§2.1).

    The thesis found "more than 90% of the rewards were only for mayors";
    the remainder unlock at a check-in count threshold.
    """

    description: str
    mayor_only: bool = True
    #: For non-mayor specials: total check-ins at this venue that unlock it.
    unlock_checkins: int = 1


@dataclass
class User:
    """A registered account.

    Only ~26.1% of crawled users had a username-based profile URL (§3.2),
    hence ``username`` is optional while ``user_id`` is always present.
    """

    user_id: int
    display_name: str
    username: Optional[str] = None
    home_city: str = ""
    created_at: float = 0.0
    #: Total check-ins INCLUDING flagged ones (Foursquare's observed policy).
    total_checkins: int = 0
    #: Check-ins that passed all verification and earned rewards.
    valid_checkins: int = 0
    points: int = 0
    badges: Set[str] = field(default_factory=set)
    friends: Set[int] = field(default_factory=set)
    #: Distinct venues this user has validly checked into.
    venues_visited: Set[int] = field(default_factory=set)
    #: Distinct calendar days with at least one valid check-in.
    active_days: Set[int] = field(default_factory=set)
    #: Venues this user is *currently* mayor of (maintained by the service).
    mayorship_count: int = 0

    @property
    def flagged_checkins(self) -> int:
        """Recorded check-ins the cheater code stripped of rewards."""
        return self.total_checkins - self.valid_checkins

    @property
    def badge_count(self) -> int:
        """Number of distinct badges earned."""
        return len(self.badges)

    def profile_url(self) -> str:
        """The ID-based public profile path the crawler enumerates."""
        return f"/user/{self.user_id}"


@dataclass(frozen=True)
class Tip:
    """A public comment left on a venue page.

    §2.2's abuse case: "A business owner may use location cheating to
    check into a competing business, and badmouth that business by leaving
    negative comments."
    """

    author_id: int
    text: str
    created_at: float


@dataclass
class Venue:
    """A check-in target: coffee shop, restaurant, landmark, ..."""

    venue_id: int
    name: str
    location: GeoPoint
    address: str = ""
    city: str = ""
    category: VenueCategory = VenueCategory.OTHER
    created_at: float = 0.0
    special: Optional[Special] = None
    mayor_id: Optional[int] = None
    #: Total number of valid check-ins here.
    checkin_count: int = 0
    #: Distinct users who have validly checked in here.
    unique_visitors: Set[int] = field(default_factory=set)
    #: The public "Who's been here" list: most recent distinct visitor
    #: user-ids, newest first, truncated to RECENT_VISITOR_LIMIT.
    recent_visitors: List[int] = field(default_factory=list)
    tips: List[Tip] = field(default_factory=list)
    #: Valid check-ins here per user, maintained incrementally by the
    #: service so special-unlock checks avoid rescanning venue history.
    visitor_valid_counts: Dict[int, int] = field(default_factory=dict)

    #: How many entries the venue page shows in "Who's been here".
    RECENT_VISITOR_LIMIT = 10

    @property
    def unique_visitor_count(self) -> int:
        """Distinct valid visitors ever."""
        return len(self.unique_visitors)

    @property
    def has_special(self) -> bool:
        """Whether the venue offers any real-world reward."""
        return self.special is not None

    def profile_url(self) -> str:
        """The ID-based public venue page path."""
        return f"/venue/{self.venue_id}"

    def record_recent_visitor(self, user_id: int) -> None:
        """Move ``user_id`` to the head of the recent-visitor list."""
        if user_id in self.recent_visitors:
            self.recent_visitors.remove(user_id)
        self.recent_visitors.insert(0, user_id)
        del self.recent_visitors[self.RECENT_VISITOR_LIMIT :]


class CheckInStatus(Enum):
    """Terminal state of a check-in attempt."""

    #: Passed GPS verification and the cheater code; rewards credited.
    VALID = "valid"
    #: Recorded, counts toward totals, but flagged by the cheater code —
    #: no points, no badge progress, no mayorship credit.
    FLAGGED = "flagged"
    #: Refused outright (e.g. same venue within one hour); not recorded
    #: as activity at all.
    REJECTED = "rejected"


@dataclass
class CheckIn:
    """One check-in attempt and its outcome."""

    checkin_id: int
    user_id: int
    venue_id: int
    timestamp: float
    #: Where the device claimed to be (the GPS reading the server saw).
    reported_location: GeoPoint
    status: CheckInStatus = CheckInStatus.VALID
    #: Name of the cheater-code rule that flagged/rejected this check-in.
    flagged_rule: Optional[str] = None
    points_awarded: int = 0

    @property
    def is_valid(self) -> bool:
        """Did this check-in earn rewards?"""
        return self.status is CheckInStatus.VALID


@dataclass
class CheckInResult:
    """What the server tells the client after a check-in attempt."""

    checkin: CheckIn
    points: int = 0
    new_badges: List[str] = field(default_factory=list)
    became_mayor: bool = False
    lost_mayor_user_id: Optional[int] = None
    special_unlocked: Optional[Special] = None
    warnings: List[str] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        """True when the check-in was recorded (valid or merely flagged)."""
        return self.checkin.status is not CheckInStatus.REJECTED

    @property
    def rewarded(self) -> bool:
        """True when the check-in earned points/badges/mayor credit."""
        return self.checkin.status is CheckInStatus.VALID
