"""Sharded datastore: N independent locks behind the ``DataStore`` API.

The paper measured Foursquare at 1.89 M users / 5.6 M venues; funnelling
every check-in at that scale through one global RLock is the wall the
ROADMAP calls out (and the one PR 4's *commit-contention* faults exist to
poke).  :class:`ShardedDataStore` splits the tables into N plain
:class:`~repro.lbsn.store.DataStore` shards:

* **Routing** is plain modulo — users (and their check-in rows plus the
  per-user index) live on shard ``user_id % N``; venues (their spatial
  grid cells plus the per-venue order index) live on shard
  ``venue_id % N``.  Deterministic, stateless, and stable: the same key
  maps to the same shard on every instance with the same N, which the
  hypothesis routing suite pins down.
* **Commit order** stays global: every shard shares one
  :class:`~repro.lbsn.store.EventSequencer`, so sequence numbers remain
  dense and commit-ordered across shards and the online/offline
  SuspicionLedger parity + WAL replay digests of ``repro.durable``
  survive sharding unchanged.
* **A commit spans at most two shards**: the user shard takes its lock
  for the row insert + seq allocation, releases, then the venue shard
  takes its lock for the order-index append.  Locks are never nested,
  so there is no ordering protocol to get wrong.
* **Group commit** (:meth:`ShardedDataStore.add_checkins_committed`)
  coalesces a batch into one lock acquisition + one contiguous seq block
  per shard *group*, then one index append per venue shard — the E25
  capacity bench's headline lever.

Observability: shards are constructed bare (``metrics=None``) and the
facade exports the per-shard families instead —
``repro_store_shard_users/venues/checkins{shard=...}`` gauges and the
``repro_store_shard_commit_seconds{shard=...}`` histogram (facade-side
commit section time, lock wait included, which is exactly the contention
signal a single shard's internal hold time would hide).  The label-less
aggregate gauges keep their single-store names so existing dashboards
and ``/debug/vars`` consumers read the same totals either way.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.faults.injector import FaultInjector
from repro.faults.points import POINT_STORE_COMMIT
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckIn, User, Venue
from repro.lbsn.store import BATCH_SIZE_BUCKETS, DataStore, EventSequencer
from repro.obs.log import DEBUG, LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.ids import SequentialIdAllocator

#: Default shard count: small enough that per-shard metric families stay
#: readable, large enough that modulo routing spreads hot users.
DEFAULT_SHARDS = 4


def shard_for_key(key: int, shards: int) -> int:
    """The shard index owning ``key`` under ``shards``-way modulo routing."""
    return key % shards


class ShardedDataStore:
    """N modulo-routed :class:`DataStore` shards behind the same API.

    Drop-in for :class:`DataStore` wherever the service layer (or a test)
    holds a ``store`` reference: every public method of the single-lock
    store exists here with the same signature and contracts (live-list
    reads, all-or-nothing commits, commit-ordered sequence numbers).
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        sequencer: Optional[EventSequencer] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shard_count = int(shards)
        self.sequencer = sequencer if sequencer is not None else EventSequencer()
        #: Fault injector checked by the facade (``store.commit`` fires
        #: before routing, so aborted commits touch no shard at all).
        self.faults = faults
        self._logger = log.logger("lbsn.store") if log is not None else None
        # Shards are bare: no metrics (the facade exports labeled
        # families), no log (the facade emits store.commit), no faults
        # (checked once up front, not once per touched shard).
        self.shards: Tuple[DataStore, ...] = tuple(
            DataStore(sequencer=self.sequencer)
            for _ in range(self.shard_count)
        )
        self.user_ids = SequentialIdAllocator()
        self.venue_ids = SequentialIdAllocator()
        self.checkin_ids = SequentialIdAllocator()
        if metrics is not None:
            labels = [str(index) for index in range(self.shard_count)]
            shard_users = metrics.gauge(
                "repro_store_shard_users",
                "Users resident, per store shard.",
                ("shard",),
            )
            shard_venues = metrics.gauge(
                "repro_store_shard_venues",
                "Venues resident, per store shard.",
                ("shard",),
            )
            shard_checkins = metrics.gauge(
                "repro_store_shard_checkins",
                "Check-in rows resident, per store shard (rows live on "
                "the user's shard).",
                ("shard",),
            )
            shard_commit = metrics.histogram(
                "repro_store_shard_commit_seconds",
                "Facade-side commit section time per user shard, lock "
                "wait included.",
                ("shard",),
            )
            self._g_users = [shard_users.labels(label) for label in labels]
            self._g_venues = [shard_venues.labels(label) for label in labels]
            self._g_checkins = [
                shard_checkins.labels(label) for label in labels
            ]
            self._h_commit = [shard_commit.labels(label) for label in labels]
            # Label-less aggregates under the single-store names, so the
            # totals read the same whether or not the store is sharded.
            self._gauge_users = metrics.gauge(
                "repro_store_users", "Users resident in the datastore."
            ).child()
            self._gauge_venues = metrics.gauge(
                "repro_store_venues", "Venues resident in the datastore."
            ).child()
            self._gauge_checkins = metrics.gauge(
                "repro_store_checkins",
                "Check-in rows resident in the datastore.",
            ).child()
            self._batch_commits = metrics.counter(
                "repro_store_batch_commits_total",
                "Group-commit batches applied.",
            ).child()
            self._batch_checkins = metrics.counter(
                "repro_store_batch_checkins_total",
                "Check-ins committed through the group-commit path.",
            ).child()
            self._batch_size = metrics.histogram(
                "repro_store_batch_size",
                "Check-ins coalesced per group-commit batch.",
                buckets=BATCH_SIZE_BUCKETS,
            ).child()
        else:
            self._g_users = None
            self._g_venues = None
            self._g_checkins = None
            self._h_commit = None
            self._gauge_users = None
            self._gauge_venues = None
            self._gauge_checkins = None
            self._batch_commits = None
            self._batch_checkins = None
            self._batch_size = None

    # Routing ------------------------------------------------------------

    def shard_index(self, key: int) -> int:
        """The shard owning ``key`` (user id or venue id)."""
        return key % self.shard_count

    def _user_shard(self, user_id: int) -> DataStore:
        return self.shards[user_id % self.shard_count]

    def _venue_shard(self, venue_id: int) -> DataStore:
        return self.shards[venue_id % self.shard_count]

    @contextmanager
    def locked(self) -> Iterator[None]:
        """Hold EVERY shard lock (in shard order) across a composite op.

        The coarse escape hatch for rare multi-entity invariant checks;
        acquisition is always in ascending shard order, so two concurrent
        :meth:`locked` calls cannot deadlock.
        """
        with ExitStack() as stack:
            for shard in self.shards:
                stack.enter_context(shard.locked())
            yield

    # Users --------------------------------------------------------------

    def add_user(self, user: User) -> User:
        """Insert a user on its home shard."""
        self._user_shard(user.user_id).add_user(user)
        if self._g_users is not None:
            self._g_users[user.user_id % self.shard_count].inc()
            self._gauge_users.inc()
        return user

    def get_user(self, user_id: int) -> Optional[User]:
        """User by numeric ID, or None."""
        return self._user_shard(user_id).get_user(user_id)

    def get_user_by_username(self, username: str) -> Optional[User]:
        """User by username, or None (usernames index on the home shard)."""
        for shard in self.shards:
            user = shard.get_user_by_username(username)
            if user is not None:
                return user
        return None

    def require_user(self, user_id: int) -> User:
        """User by ID, raising :class:`ServiceError` when missing."""
        user = self.get_user(user_id)
        if user is None:
            raise ServiceError(f"no such user: {user_id}")
        return user

    def user_count(self) -> int:
        """Total registered users across shards."""
        return sum(shard.user_count() for shard in self.shards)

    def iter_users(self) -> List[User]:
        """Snapshot list of all users, shard 0 first."""
        users: List[User] = []
        for shard in self.shards:
            users.extend(shard.iter_users())
        return users

    # Venues -------------------------------------------------------------

    def add_venue(self, venue: Venue) -> Venue:
        """Insert a venue on its home shard and index its location."""
        self._venue_shard(venue.venue_id).add_venue(venue)
        if self._g_venues is not None:
            self._g_venues[venue.venue_id % self.shard_count].inc()
            self._gauge_venues.inc()
        return venue

    def get_venue(self, venue_id: int) -> Optional[Venue]:
        """Venue by numeric ID, or None."""
        return self._venue_shard(venue_id).get_venue(venue_id)

    def require_venue(self, venue_id: int) -> Venue:
        """Venue by ID, raising :class:`ServiceError` when missing."""
        venue = self.get_venue(venue_id)
        if venue is None:
            raise ServiceError(f"no such venue: {venue_id}")
        return venue

    def venue_count(self) -> int:
        """Total registered venues across shards."""
        return sum(shard.venue_count() for shard in self.shards)

    def iter_venues(self) -> List[Venue]:
        """Snapshot list of all venues, shard 0 first."""
        venues: List[Venue] = []
        for shard in self.shards:
            venues.extend(shard.iter_venues())
        return venues

    def venues_near(
        self, point: GeoPoint, radius_m: float
    ) -> List[Venue]:
        """Venues within ``radius_m`` of ``point``, nearest first.

        Each shard's grid answers independently; the facade merges the
        per-shard hit lists on ``(distance, venue_id)`` so the combined
        order is deterministic regardless of shard count.
        """
        hits: List[Tuple[float, int, Venue]] = []
        for shard in self.shards:
            for venue, distance in shard.venues_near_with_distance(
                point, radius_m
            ):
                hits.append((distance, venue.venue_id, venue))
        hits.sort(key=lambda hit: (hit[0], hit[1]))
        return [venue for _, _, venue in hits]

    def nearest_venue(
        self, point: GeoPoint, max_radius_m: float = 50_000.0
    ) -> Optional[Venue]:
        """The closest venue to ``point`` within ``max_radius_m``."""
        best: Optional[Tuple[float, int, Venue]] = None
        for shard in self.shards:
            hit = shard.nearest_venue_with_distance(
                point, max_radius_m=max_radius_m
            )
            if hit is None:
                continue
            venue, distance = hit
            candidate = (distance, venue.venue_id, venue)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        return None if best is None else best[2]

    # Check-ins ----------------------------------------------------------

    def add_checkin(self, checkin: CheckIn) -> CheckIn:
        """Record a check-in attempt (any status), no seq allocation."""
        self._user_shard(checkin.user_id).insert_checkin_rows((checkin,))
        self._venue_shard(checkin.venue_id).index_checkins_at_venue(
            (checkin,)
        )
        if self._g_checkins is not None:
            self._g_checkins[checkin.user_id % self.shard_count].inc()
            self._gauge_checkins.inc()
        return checkin

    def allocate_event_seq(self) -> int:
        """Allocate one stream-event sequence number (global sequencer)."""
        return self.sequencer.allocate()

    def add_checkin_committed(
        self, checkin: CheckIn, trace_id: Optional[str] = None
    ) -> Tuple[CheckIn, int]:
        """Append a check-in AND allocate its event sequence atomically.

        Same contract as the single-lock store: the fault point fires
        before any shard mutates; the row insert and seq allocation share
        the user shard's lock hold, so per-user commit order equals seq
        order.  The venue-order index lands under the venue shard's lock
        immediately after — a reader between the two sees the row but not
        yet the venue entry, the same window :meth:`DataStore.add_checkin`
        callers already tolerate for the service-level indices.
        """
        if self.faults is not None:
            self.faults.check(POINT_STORE_COMMIT, trace_id=trace_id)
        shard_index = checkin.user_id % self.shard_count
        commit_hist = self._h_commit
        started = time.perf_counter() if commit_hist is not None else 0.0
        start = self.shards[shard_index].commit_checkin_rows((checkin,))
        self._venue_shard(checkin.venue_id).index_checkins_at_venue(
            (checkin,)
        )
        if commit_hist is not None:
            commit_hist[shard_index].observe(time.perf_counter() - started)
            self._g_checkins[shard_index].inc()
            self._gauge_checkins.inc()
        logger = self._logger
        if logger is not None and logger.enabled_for(DEBUG):
            logger.debug(
                "store.commit",
                trace_id=trace_id,
                checkin_id=checkin.checkin_id,
                user_id=checkin.user_id,
                venue_id=checkin.venue_id,
                seq=start,
                shard=shard_index,
            )
        return checkin, start

    def add_checkins_committed(
        self,
        checkins: Sequence[CheckIn],
        trace_id: Optional[str] = None,
    ) -> List[Tuple[CheckIn, int]]:
        """Group-commit a batch: one lock hold + seq block per shard group.

        Check-ins are grouped by user shard preserving input order, each
        group commits through one
        :meth:`DataStore.commit_checkin_rows` call (one lock acquisition,
        one contiguous block from the shared sequencer), then venue-order
        index appends are grouped per venue shard the same way.  Every
        fault check runs up front, before any shard mutates, so a fired
        fault aborts the whole batch atomically.

        ``result[i]`` pairs ``checkins[i]`` with its seq.  Within a shard
        group seqs are contiguous and in input order; across groups the
        blocks interleave, but the global order stays dense and each
        user's check-ins (one user → one shard) stay in input order — the
        invariant the conformance harness and hypothesis suite check.
        """
        checkins = list(checkins)
        if not checkins:
            return []
        if self.faults is not None:
            for checkin in checkins:
                self.faults.check(POINT_STORE_COMMIT, trace_id=trace_id)
        # One pass builds both routings; fixed per-shard slots indexed by
        # shard number beat dict-of-lists setdefault at batch sizes worth
        # group-committing (3 dict probes per check-in gone).
        shard_count = self.shard_count
        groups: List[List[CheckIn]] = [[] for _ in range(shard_count)]
        positions: List[List[int]] = [[] for _ in range(shard_count)]
        venue_groups: List[List[CheckIn]] = [
            [] for _ in range(shard_count)
        ]
        for position, checkin in enumerate(checkins):
            user_shard = checkin.user_id % shard_count
            groups[user_shard].append(checkin)
            positions[user_shard].append(position)
            venue_groups[checkin.venue_id % shard_count].append(checkin)
        results: List[Optional[Tuple[CheckIn, int]]] = [None] * len(checkins)
        commit_hist = self._h_commit
        shards = self.shards
        group_count = 0
        for shard_index in range(shard_count):
            group = groups[shard_index]
            if not group:
                continue
            group_count += 1
            started = (
                time.perf_counter() if commit_hist is not None else 0.0
            )
            start = shards[shard_index].commit_checkin_rows(group)
            if commit_hist is not None:
                commit_hist[shard_index].observe(
                    time.perf_counter() - started
                )
                self._g_checkins[shard_index].inc(len(group))
            # Pair rows with their seqs in C (zip + range), then scatter
            # back to input positions with a bare store per row.
            for position, pair in zip(
                positions[shard_index],
                zip(group, range(start, start + len(group))),
            ):
                results[position] = pair
        for shard_index in range(shard_count):
            venue_group = venue_groups[shard_index]
            if venue_group:
                shards[shard_index].index_checkins_at_venue(venue_group)
        if self._gauge_checkins is not None:
            self._gauge_checkins.inc(len(checkins))
        if self._batch_commits is not None:
            self._batch_commits.inc()
            self._batch_checkins.inc(len(checkins))
            self._batch_size.observe(len(checkins))
        logger = self._logger
        if logger is not None and logger.enabled_for(DEBUG):
            logger.debug(
                "store.commit",
                trace_id=trace_id,
                batch=len(checkins),
                shards=group_count,
            )
        return results  # type: ignore[return-value]

    def event_seq_watermark(self) -> int:
        """The next sequence number that will be allocated."""
        return self.sequencer.watermark()

    def get_checkin(self, checkin_id: int) -> Optional[CheckIn]:
        """Look up one check-in by ID (scans shards; rows key by user)."""
        for shard in self.shards:
            checkin = shard.get_checkin(checkin_id)
            if checkin is not None:
                return checkin
        return None

    def checkins_of_user(self, user_id: int) -> List[CheckIn]:
        """All recorded check-ins by a user, oldest first (live list)."""
        return self._user_shard(user_id).checkins_of_user(user_id)

    def checkins_at_venue(self, venue_id: int) -> List[CheckIn]:
        """All recorded check-ins at a venue, venue-commit order (live)."""
        return self._venue_shard(venue_id).checkins_at_venue(venue_id)

    def checkin_count(self) -> int:
        """Total recorded check-ins (rows count once, on the user shard)."""
        return sum(shard.checkin_count() for shard in self.shards)

    def last_checkin_of_user(self, user_id: int) -> Optional[CheckIn]:
        """Most recent recorded check-in by ``user_id``, or None."""
        return self._user_shard(user_id).last_checkin_of_user(user_id)

    def recent_checkins_of_user(
        self, user_id: int, limit: int
    ) -> List[CheckIn]:
        """Up to ``limit`` most recent check-ins by a user, newest first."""
        return self._user_shard(user_id).recent_checkins_of_user(
            user_id, limit
        )
