"""The "cheater code": server-side anti-cheating rules (§2.3).

The thesis reverse-engineered three rules from Foursquare's concealed
cheater code; this module implements them verbatim so the automated-cheating
scheduler faces the same evasion problem the authors did:

* **Frequent check-ins** — a user cannot check in to the same venue again
  within one hour; such attempts are refused outright.
* **Super-human speed** — consecutive check-ins far apart in space but close
  in time imply impossible travel; the check-in is recorded but flagged, so
  it earns no rewards.
* **Rapid-fire check-ins** — the fourth check-in inside a 180 m x 180 m
  square with one-minute spacing draws a warning and is flagged.

Each rule can be disabled individually for the E10/E4 ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from repro.geo.coordinates import GeoPoint, METERS_PER_MILE
from repro.geo.distance import haversine_m, speed_mps
from repro.lbsn.models import CheckIn, CheckInStatus

RULE_FREQUENT = "frequent-checkins"
RULE_SUPERHUMAN = "super-human-speed"
RULE_RAPID_FIRE = "rapid-fire-checkins"
RULE_SHADOW_BAN = "reputation-shadow-ban"


class RuleAction(Enum):
    """What a triggered rule does to the check-in."""

    ALLOW = "allow"
    #: Refuse entirely; the attempt is not recorded as activity.
    REJECT = "reject"
    #: Record, count toward totals, but strip all rewards.
    FLAG = "flag"


@dataclass(frozen=True)
class RuleVerdict:
    """Outcome of evaluating the rule set against one attempt."""

    action: RuleAction
    rule: Optional[str] = None
    message: str = ""
    warnings: tuple = ()

    @classmethod
    def allow(cls, warnings: Sequence[str] = ()) -> "RuleVerdict":
        """A passing verdict, optionally carrying warnings."""
        return cls(action=RuleAction.ALLOW, warnings=tuple(warnings))


@dataclass
class CheaterCodeConfig:
    """Tunable parameters; defaults reproduce the thesis's observations."""

    #: Frequent-check-in window: same venue refused within this many seconds.
    same_venue_interval_s: float = 3_600.0
    #: Super-human-speed threshold.  The thesis's safe envelope (1 mile per
    #: 5 minutes = 12 mph) must pass; commercial-flight speeds must not.
    max_speed_mps: float = 67.0  # ~150 mph
    #: Displacements below this never trigger the speed rule (GPS jitter and
    #: same-building hops are not "travel").
    min_speed_rule_distance_m: float = 2.0 * METERS_PER_MILE
    #: Rapid-fire square edge (the thesis's "180 meters by 180 meters").
    rapid_fire_square_m: float = 180.0
    #: Rapid-fire interval between consecutive check-ins.
    rapid_fire_interval_s: float = 60.0
    #: Rapid-fire fires on this attempt number within the window.
    rapid_fire_count: int = 4
    #: Reputation shadow-ban: once a user has accumulated this many flagged
    #: check-ins, every further check-in is flagged too.  The thesis's
    #: §4.2 cheater group shows exactly this outcome — thousands of counted
    #: but reward-less check-ins ("their check-ins were invalidated") — so
    #: the rule is inferred from observed behaviour rather than named in
    #: §2.3.  Set to 0 to disable.
    shadow_ban_threshold: int = 50
    #: Rule toggles for the ablation benches.
    enable_frequent: bool = True
    enable_superhuman: bool = True
    enable_rapid_fire: bool = True


class CheaterCode:
    """Evaluates the anti-cheating rule set for one check-in attempt.

    The evaluator is deliberately stateless: it receives the user's recorded
    history from the service, so it can run inside the store lock without
    keeping shadow state that could drift.
    """

    def __init__(self, config: Optional[CheaterCodeConfig] = None) -> None:
        self.config = config or CheaterCodeConfig()

    def evaluate(
        self,
        venue_id: int,
        venue_location: GeoPoint,
        timestamp: float,
        history: Sequence[CheckIn],
        location_of_venue,
        prior_flagged_count: int = 0,
    ) -> RuleVerdict:
        """Judge an attempt at ``venue_id`` given the user's ``history``.

        ``history`` is the user's recorded check-ins, oldest first
        (REJECTED attempts never enter history).  ``location_of_venue`` maps
        a venue id to its :class:`GeoPoint` for the rapid-fire area test.
        ``prior_flagged_count`` is the user's lifetime flagged total, for
        the reputation shadow-ban.

        Rule precedence follows severity: an outright rejection (frequent
        check-ins) preempts a mere flag; the shadow-ban runs first because
        a banned account's attempts never earn rewards regardless.
        """
        threshold = self.config.shadow_ban_threshold
        if threshold > 0 and prior_flagged_count >= threshold:
            return RuleVerdict(
                action=RuleAction.FLAG,
                rule=RULE_SHADOW_BAN,
                message="account flagged for repeated location cheating",
            )
        if self.config.enable_frequent:
            verdict = self._check_frequent(venue_id, timestamp, history)
            if verdict is not None:
                return verdict
        if self.config.enable_superhuman:
            verdict = self._check_superhuman(venue_location, timestamp, history)
            if verdict is not None:
                return verdict
        if self.config.enable_rapid_fire:
            verdict = self._check_rapid_fire(
                venue_location, timestamp, history, location_of_venue
            )
            if verdict is not None:
                return verdict
        return RuleVerdict.allow()

    # Individual rules ---------------------------------------------------

    def _check_frequent(
        self, venue_id: int, timestamp: float, history: Sequence[CheckIn]
    ) -> Optional[RuleVerdict]:
        """Same venue within one hour -> refuse the check-in outright."""
        window_start = timestamp - self.config.same_venue_interval_s
        for checkin in reversed(history):
            if checkin.timestamp < window_start:
                break
            if checkin.venue_id == venue_id:
                return RuleVerdict(
                    action=RuleAction.REJECT,
                    rule=RULE_FREQUENT,
                    message=(
                        "already checked in to this venue within the last hour"
                    ),
                )
        return None

    def _check_superhuman(
        self,
        venue_location: GeoPoint,
        timestamp: float,
        history: Sequence[CheckIn],
    ) -> Optional[RuleVerdict]:
        """Impossible implied travel speed since the previous check-in.

        Only *accepted* (valid) check-ins anchor the speed test: once a user
        is flagged, subsequent positions are untrusted anyway, and anchoring
        on flagged positions would let an attacker "reset" their location by
        deliberately tripping the rule.
        """
        # Half the Earth's circumference bounds any great-circle distance;
        # once the elapsed time makes even that distance sub-threshold, no
        # older anchor can trigger the rule, so the scan stops.  This keeps
        # the rule O(hours of history) even for accounts with tens of
        # thousands of flagged records.
        max_possible_distance_m = 20_037_508.0
        anchor = None
        for checkin in reversed(history):
            elapsed_to_candidate = timestamp - checkin.timestamp
            if (
                elapsed_to_candidate * self.config.max_speed_mps
                > max_possible_distance_m
            ):
                break
            if checkin.status is CheckInStatus.VALID:
                anchor = checkin
                break
        if anchor is None:
            return None
        distance = haversine_m(anchor.reported_location, venue_location)
        if distance < self.config.min_speed_rule_distance_m:
            return None
        elapsed = timestamp - anchor.timestamp
        speed = speed_mps(anchor.reported_location, venue_location, elapsed)
        if speed > self.config.max_speed_mps:
            return RuleVerdict(
                action=RuleAction.FLAG,
                rule=RULE_SUPERHUMAN,
                message=(
                    f"super human speed: {distance / 1000.0:.1f} km in "
                    f"{max(elapsed, 0.0):.0f}s"
                ),
            )
        return None

    def _check_rapid_fire(
        self,
        venue_location: GeoPoint,
        timestamp: float,
        history: Sequence[CheckIn],
        location_of_venue,
    ) -> Optional[RuleVerdict]:
        """Fourth check-in in a small square at one-minute spacing -> flag.

        We walk backwards through recent accepted check-ins collecting a
        chain whose consecutive gaps are all within the rapid-fire interval;
        if the chain (including the new attempt) reaches the configured
        count and every point fits in the 180 m square, the rule fires.
        """
        chain_points: List[GeoPoint] = [venue_location]
        last_time = timestamp
        for checkin in reversed(history):
            if checkin.status is CheckInStatus.REJECTED:
                continue
            gap = last_time - checkin.timestamp
            if gap > self.config.rapid_fire_interval_s * 1.5:
                break
            location = location_of_venue(checkin.venue_id)
            if location is None:
                break
            chain_points.append(location)
            last_time = checkin.timestamp
            if len(chain_points) >= self.config.rapid_fire_count:
                break
        if len(chain_points) < self.config.rapid_fire_count:
            return None
        if self._fits_square(chain_points, self.config.rapid_fire_square_m):
            return RuleVerdict(
                action=RuleAction.FLAG,
                rule=RULE_RAPID_FIRE,
                message="rapid-fire check-ins",
                warnings=("rapid-fire check-ins",),
            )
        return None

    @staticmethod
    def _fits_square(points: Sequence[GeoPoint], edge_m: float) -> bool:
        """Do all points fit in an axis-aligned square of side ``edge_m``?"""
        from repro.geo.distance import (
            meters_per_degree_latitude,
            meters_per_degree_longitude,
        )

        lats = [p.latitude for p in points]
        lons = [p.longitude for p in points]
        lat_extent_m = (max(lats) - min(lats)) * meters_per_degree_latitude()
        mid_lat = (max(lats) + min(lats)) / 2.0
        lon_extent_m = (max(lons) - min(lons)) * meters_per_degree_longitude(
            mid_lat
        )
        return lat_extent_m <= edge_m and lon_extent_m <= edge_m
