"""Mayorship computation (§2.1).

"Mayorship of a venue is granted to the user who checked in to that venue
the most days in the past 60 days. Only the number of days with check-ins to
this venue are counted, without consideration of how many check-ins occurred
per day or the total number of check-ins."

Properties the thesis relies on and which are reproduced here:

* A single check-in suffices at a venue nobody else visits (the
  865-mayorship user of §3.4).
* There is only one mayor per venue, and an incumbent who keeps checking in
  daily cannot be displaced by ties — a challenger must strictly exceed the
  incumbent's day count (§2.1's "if an attacker got the mayorship ... no
  other user can get the mayorship from the attacker").
* Only VALID check-ins count; flagged cheaters earn no mayorships (§4.2's
  second group of heavy users has zero mayorships).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.lbsn.models import CheckIn, CheckInStatus
from repro.simnet.clock import SECONDS_PER_DAY, day_index

#: The competition window, in days.
MAYORSHIP_WINDOW_DAYS = 60


def _window_start_index(checkins: Sequence[CheckIn], window_start: float) -> int:
    """Binary-search the first check-in at or after ``window_start``.

    Venue histories are append-ordered by timestamp, so the 60-day window
    is a suffix; scanning only that suffix keeps mayor recomputation cheap
    on venues with long lifetimes (a daily-check-in mayor accumulates
    hundreds of records, of which the window holds a fraction).
    """
    low, high = 0, len(checkins)
    while low < high:
        mid = (low + high) // 2
        if checkins[mid].timestamp < window_start:
            low = mid + 1
        else:
            high = mid
    return low


def checkin_days_by_user(
    checkins: Sequence[CheckIn], now: float
) -> Dict[int, int]:
    """Distinct check-in days per user at one venue over the last 60 days.

    ``checkins`` is the venue's full recorded history in time order; only
    valid check-ins inside the window are counted, and multiple check-ins
    on one calendar day collapse to a single day.
    """
    window_start = now - MAYORSHIP_WINDOW_DAYS * SECONDS_PER_DAY
    days: Dict[int, set] = {}
    for index in range(_window_start_index(checkins, window_start), len(checkins)):
        checkin = checkins[index]
        if checkin.status is not CheckInStatus.VALID:
            continue
        if checkin.timestamp > now:
            continue
        days.setdefault(checkin.user_id, set()).add(
            day_index(checkin.timestamp)
        )
    return {user_id: len(day_set) for user_id, day_set in days.items()}


@dataclass(frozen=True)
class MayorDecision:
    """Result of recomputing a venue's mayor."""

    mayor_id: Optional[int]
    previous_mayor_id: Optional[int]
    day_counts: Dict[int, int]

    @property
    def changed(self) -> bool:
        """Did the mayorship move to a different user (or appear/vanish)?"""
        return self.mayor_id != self.previous_mayor_id


def decide_mayor(
    checkins: Sequence[CheckIn],
    now: float,
    incumbent_id: Optional[int],
) -> MayorDecision:
    """Recompute a venue's mayor from its check-in history.

    The incumbent retains the title unless a challenger has *strictly more*
    distinct days in the window.  When the incumbent has dropped out of the
    window entirely, the best remaining challenger (ties broken by lower
    user id, i.e. earlier registrant) takes over.  A venue with no valid
    window check-ins has no mayor.
    """
    day_counts = checkin_days_by_user(checkins, now)
    if not day_counts:
        return MayorDecision(None, incumbent_id, day_counts)

    incumbent_days = day_counts.get(incumbent_id, 0) if incumbent_id else 0
    best_id, best_days = None, -1
    for user_id in sorted(day_counts):
        days = day_counts[user_id]
        if days > best_days:
            best_id, best_days = user_id, days

    if incumbent_days > 0 and best_days <= incumbent_days:
        # Incumbent still active and unbeaten (ties keep the crown).
        return MayorDecision(incumbent_id, incumbent_id, day_counts)
    return MayorDecision(best_id, incumbent_id, day_counts)
