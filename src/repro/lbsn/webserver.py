"""The public website: HTML profile pages for users and venues (§3.2).

The crawl is only possible because profile pages are public, addressed by
incrementing numeric IDs, and contain machine-extractable structure.  This
renderer reproduces all three properties: ``/user/<id>`` (plus the
``/user/<username>`` variant only ~26% of users have) and ``/venue/<id>``
pages whose markup the crawler's regular expressions pick apart, exactly as
the thesis's C# crawler did.

Two defense hooks are built in:

* ``show_whos_been_here`` — Foursquare removed the "Who's been here" section
  right after the thesis's crawl finished (§6.2.1); setting this False
  reproduces the post-patch site.
* ``visitor_obfuscator`` — §5.2 suggests hashing user IDs in the recent
  check-in list; when installed, the rendered visitor references are opaque
  tokens instead of crawlable ``/user/<id>`` links.

Operational routes ride along: when the service (or the constructor)
carries a :class:`~repro.obs.MetricsRegistry`, ``GET /metrics`` serves the
registry in Prometheus text exposition format (with the standard
``version=0.0.4`` content type and an explicit ``Content-Length``), so the
same simulated HTTP surface the crawler attacks also exposes the telemetry
an operator would scrape.  Three debug routes complete the picture:

* ``GET /debug/vars`` — the whole registry as JSON (the
  :func:`~repro.obs.timeseries.registry_to_dict` shape shared with
  ``repro metrics --format json``).
* ``GET /debug/traces`` — the service tracer's retained slow spans, each
  with its ``trace_id`` when the instrumented layer propagated one.
* ``GET /debug/logs?trace_id=&logger=&event=&limit=`` — the structured
  log ring as JSONL, filterable by the same keys
  :meth:`repro.obs.log.LogHub.records` takes; ``?trace_id=`` is the
  one-request flight-recorder query the obs layer exists for.

When a :class:`~repro.obs.profiler.SamplingProfiler` and/or
:class:`~repro.obs.slo.SloEngine` are attached, three more routes join:

* ``GET /debug/profile`` — the profiler snapshot as JSON, or the raw
  Brendan-Gregg collapsed-stack text with ``?format=collapsed`` (pipe it
  straight into a flamegraph renderer).
* ``GET /debug/slo`` — every objective's compliance, error budget, burn
  rates, and alert state (one fresh evaluation per request).
* ``GET /debug/health`` — the weighted health-score roll-up; the same
  number ``repro slo`` computes offline from the same registry state.
"""

from __future__ import annotations

import html
import json
from typing import Callable, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.points import POINT_WEB_REQUEST
from repro.lbsn.models import User, Venue
from repro.lbsn.service import LbsnService
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SamplingProfiler
from repro.obs.slo import SloEngine
from repro.obs.timeseries import registry_to_dict
from repro.simnet.http import (
    HTTP_GATEWAY_TIMEOUT,
    HTTP_NOT_FOUND,
    HttpRequest,
    HttpResponse,
    Router,
)

VisitorObfuscator = Callable[[int], str]

#: Path prefixes the fault middleware never degrades: observability must
#: stay readable precisely while the service is failing.
FAULT_EXEMPT_PREFIXES = ("/metrics", "/debug/")

#: Content type of the Prometheus text exposition format (the scrape
#: protocol requires the charset parameter).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of the JSON debug routes.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Content type of the JSONL ``/debug/logs`` route.
JSONL_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"

#: Content type of the collapsed-stack ``/debug/profile?format=collapsed``
#: export (plain folded lines, flamegraph-tool ready).
COLLAPSED_CONTENT_TYPE = "text/plain; charset=utf-8"


class LbsnWebServer:
    """Renders the service's state as public HTML pages."""

    def __init__(
        self,
        service: LbsnService,
        show_whos_been_here: bool = True,
        visitor_obfuscator: Optional[VisitorObfuscator] = None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        profiler: Optional[SamplingProfiler] = None,
        slo: Optional[SloEngine] = None,
    ) -> None:
        self.service = service
        self.show_whos_been_here = show_whos_been_here
        self.visitor_obfuscator = visitor_obfuscator
        #: Registry served at ``/metrics``; defaults to the service's own.
        self.metrics = metrics if metrics is not None else service.metrics
        #: Log hub served at ``/debug/logs``; defaults to the service's own.
        self.log = log if log is not None else service.log
        #: Optional fault injector behind :meth:`fault_middleware`;
        #: defaults to the service's own.
        self.faults = faults if faults is not None else getattr(
            service, "faults", None
        )
        #: Profiler behind ``/debug/profile`` (opt-in, no service default).
        self.profiler = profiler
        #: SLO engine behind ``/debug/slo`` and ``/debug/health``.
        self.slo = slo

    def install_routes(self, router: Router) -> None:
        """Attach the site's routes (and ``/metrics`` when instrumented)."""
        router.add("GET", r"/user/(?P<ident>[A-Za-z0-9_\-]+)", self._user_page)
        router.add("GET", r"/venue/(?P<venue_id>\d+)", self._venue_page)
        if self.metrics is not None:
            router.add("GET", r"/metrics", self._metrics_page)
            router.add("GET", r"/debug/vars", self._debug_vars)
        if self.service.tracer is not None:
            router.add("GET", r"/debug/traces", self._debug_traces)
        if self.log is not None:
            router.add("GET", r"/debug/logs", self._debug_logs)
        if self.profiler is not None:
            router.add("GET", r"/debug/profile", self._debug_profile)
        if self.slo is not None:
            router.add("GET", r"/debug/slo", self._debug_slo)
            router.add("GET", r"/debug/health", self._debug_health)

    # Fault middleware ------------------------------------------------------

    def fault_middleware(
        self,
    ) -> Callable[[HttpRequest], Optional[HttpResponse]]:
        """A transport middleware firing the ``web.request`` point.

        Install on the :class:`~repro.simnet.http.HttpTransport` in front
        of routing.  Per fired fault: HTTP specs short-circuit with their
        status, ERROR specs answer 500, LATENCY specs charge the
        service's simulated clock and answer 504 Gateway Timeout.
        ``/metrics`` and ``/debug/*`` are exempt — observability must not
        degrade with the service (the chaos suite pins this).
        """

        def middleware(request: HttpRequest) -> Optional[HttpResponse]:
            faults = self.faults
            if faults is None:
                return None
            path = request.path
            for prefix in FAULT_EXEMPT_PREFIXES:
                if path.startswith(prefix):
                    return None
            decision = faults.decide(POINT_WEB_REQUEST, label=path)
            if decision is None:
                return None
            if decision.latency_s > 0:
                self.service.clock.advance(decision.latency_s)
            if decision.kind is FaultKind.LATENCY:
                return HttpResponse(
                    status=HTTP_GATEWAY_TIMEOUT,
                    body="injected timeout",
                )
            status = decision.status if (
                decision.kind is FaultKind.HTTP
            ) else 500
            return HttpResponse(
                status=status, body=f"injected HTTP {status}"
            )

        return middleware

    # Page handlers --------------------------------------------------------

    def _metrics_page(self, request: HttpRequest, match) -> HttpResponse:
        body = self.metrics.render_text()
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": METRICS_CONTENT_TYPE,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    # Debug routes ---------------------------------------------------------

    def _debug_vars(self, request: HttpRequest, match) -> HttpResponse:
        body = json.dumps(registry_to_dict(self.metrics), sort_keys=True)
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": JSON_CONTENT_TYPE,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    def _debug_traces(self, request: HttpRequest, match) -> HttpResponse:
        tracer = self.service.tracer
        records = [] if tracer is None else tracer.recent_slow()
        body = json.dumps(
            {
                "slow_threshold_s": (
                    tracer.slow_threshold_s if tracer is not None else None
                ),
                "spans": [record.to_dict() for record in records],
            }
        )
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": JSON_CONTENT_TYPE,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    def _debug_logs(self, request: HttpRequest, match) -> HttpResponse:
        params = request.params
        limit: Optional[int] = None
        if params.get("limit"):
            try:
                limit = max(1, int(params["limit"]))
            except ValueError:
                limit = None
        records = self.log.records(
            trace_id=params.get("trace_id") or None,
            logger=params.get("logger") or None,
            event=params.get("event") or None,
            limit=limit,
        )
        body = self.log.export_jsonl(records)
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": JSONL_CONTENT_TYPE,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    def _debug_profile(self, request: HttpRequest, match) -> HttpResponse:
        snapshot = self.profiler.snapshot()
        if request.params.get("format") == "collapsed":
            body = snapshot.collapsed()
            content_type = COLLAPSED_CONTENT_TYPE
        else:
            body = json.dumps(snapshot.to_dict(), sort_keys=True)
            content_type = JSON_CONTENT_TYPE
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": content_type,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    def _debug_slo(self, request: HttpRequest, match) -> HttpResponse:
        body = json.dumps(self.slo.evaluate().to_dict(), sort_keys=True)
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": JSON_CONTENT_TYPE,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    def _debug_health(self, request: HttpRequest, match) -> HttpResponse:
        body = json.dumps(self.slo.evaluate().health_dict(), sort_keys=True)
        return HttpResponse(
            body=body,
            headers={
                "Content-Type": JSON_CONTENT_TYPE,
                "Content-Length": str(len(body.encode("utf-8"))),
            },
        )

    def _user_page(self, request: HttpRequest, match) -> HttpResponse:
        ident = match.group("ident")
        if ident.isdigit():
            user = self.service.store.get_user(int(ident))
        else:
            user = self.service.store.get_user_by_username(ident)
        if user is None:
            return HttpResponse(status=HTTP_NOT_FOUND, body="No such user")
        return HttpResponse(body=self.render_user(user))

    def _venue_page(self, request: HttpRequest, match) -> HttpResponse:
        venue = self.service.store.get_venue(int(match.group("venue_id")))
        if venue is None:
            return HttpResponse(status=HTTP_NOT_FOUND, body="No such venue")
        return HttpResponse(body=self.render_venue(venue))

    # Renderers --------------------------------------------------------------

    def render_user(self, user: User) -> str:
        """The public user profile page.

        Mayorships and full check-in history are deliberately absent — the
        thesis notes they "are hidden from the public, since these two types
        of information may expose his/her location privacy" — so the crawler
        must *infer* them from venue pages.
        """
        name = html.escape(user.display_name)
        username_row = (
            f'<div class="username">@{html.escape(user.username)}</div>'
            if user.username
            else ""
        )
        badges = "".join(
            f'<li class="badge">{html.escape(badge)}</li>'
            for badge in sorted(user.badges)
        )
        friends = "".join(
            f'<a class="friend" href="/user/{friend_id}">user {friend_id}</a>'
            for friend_id in sorted(user.friends)
        )
        return f"""<!DOCTYPE html>
<html><head><title>{name} on SimSquare</title></head>
<body>
<div class="profile" data-user-id="{user.user_id}">
  <h1 class="fn">{name}</h1>
  {username_row}
  <div class="homecity">{html.escape(user.home_city)}</div>
  <div class="stats">
    <span class="checkin-count">{user.total_checkins}</span> check-ins
    <span class="badge-count">{user.badge_count}</span> badges
    <span class="points">{user.points}</span> points
  </div>
  <ul class="badges">{badges}</ul>
  <div class="friends">{friends}</div>
</div>
</body></html>"""

    def render_venue(self, venue: Venue) -> str:
        """The public venue page, including mayor link and recent visitors."""
        name = html.escape(venue.name)
        mayor_html = (
            f'<a class="mayor" href="/user/{venue.mayor_id}">'
            f"user {venue.mayor_id}</a>"
            if venue.mayor_id is not None
            else '<span class="mayor none">No mayor yet</span>'
        )
        special_html = ""
        if venue.special is not None:
            kind = "mayor-only" if venue.special.mayor_only else "unlocked"
            special_html = (
                f'<div class="special {kind}">'
                f"{html.escape(venue.special.description)}</div>"
            )
        visitors_html = ""
        if self.show_whos_been_here:
            entries = []
            for user_id in venue.recent_visitors:
                if self.visitor_obfuscator is not None:
                    token = html.escape(self.visitor_obfuscator(user_id))
                    entries.append(f'<span class="visitor">{token}</span>')
                else:
                    entries.append(
                        f'<a class="visitor" href="/user/{user_id}">'
                        f"user {user_id}</a>"
                    )
            visitors_html = (
                '<div class="whos-been-here"><h2>Who\'s been here</h2>'
                + "".join(entries)
                + "</div>"
            )
        tips = "".join(
            f'<li class="tip" data-author="{tip.author_id}">'
            f"{html.escape(tip.text)}</li>"
            for tip in venue.tips
        )
        return f"""<!DOCTYPE html>
<html><head><title>{name} on SimSquare</title></head>
<body>
<div class="venue" data-venue-id="{venue.venue_id}">
  <h1 class="venue-name">{name}</h1>
  <div class="address">{html.escape(venue.address)}</div>
  <div class="city">{html.escape(venue.city)}</div>
  <div class="geo">
    <span class="latitude">{venue.location.latitude:.6f}</span>
    <span class="longitude">{venue.location.longitude:.6f}</span>
  </div>
  <div class="stats">
    <span class="checkins-here">{venue.checkin_count}</span> check-ins from
    <span class="unique-visitors">{venue.unique_visitor_count}</span> visitors
  </div>
  <div class="mayor-box">{mayor_html}</div>
  {special_html}
  {visitors_html}
  <ul class="tips">{tips}</ul>
</div>
</body></html>"""
