"""The LBSN service itself: registration, venues, and the check-in pipeline.

This is the simulated stand-in for Foursquare's servers.  A check-in attempt
flows through the same stages the thesis describes:

1. **GPS verification** — the claimed venue must lie near the location the
   device reported; "if a user claims that he/she is currently in a location
   far away from the location reported by the GPS of his/her phone, this
   check-in will be considered invalid" (§2.3).
2. **Cheater code** — the three server-side rules of
   :mod:`repro.lbsn.cheater_code`.
3. **Rewards** — points, badges, mayorship recomputation, and specials, for
   valid check-ins only.

The service never sees real GPS hardware; it trusts whatever coordinates the
client reports — which is precisely the root vulnerability the paper
identifies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import ServiceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m
from repro.lbsn.cheater_code import CheaterCode, RuleAction
from repro.lbsn.mayorship import decide_mayor
from repro.lbsn.models import (
    CheckIn,
    CheckInResult,
    CheckInStatus,
    Special,
    User,
    Venue,
    VenueCategory,
)
from repro.lbsn.rewards import BadgeEngine, PointsPolicy
from repro.lbsn.specials import special_unlocked_by
from repro.lbsn.store import DataStore
from repro.obs.context import TraceContext, current_trace
from repro.obs.log import LogHub, StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.simnet.clock import SimClock, day_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stream ← lbsn)
    from repro.stream.bus import EventBus

#: Reason string recorded when GPS verification rejects an attempt.
RULE_GPS_VERIFICATION = "gps-verification"

#: Hoisted off the hot path: ``Enum.value`` goes through a descriptor on
#: every access, which the per-check-in log record would otherwise pay.
_VALID_STATUS = CheckInStatus.VALID.value

_STREAM_EVENTS = None


def _stream_events():
    """Lazy import of :mod:`repro.stream.events` (layer above ``lbsn``).

    Publishing is optional; services without a bus never import the
    stream layer at all.
    """
    global _STREAM_EVENTS
    if _STREAM_EVENTS is None:
        from repro.stream import events

        _STREAM_EVENTS = events
    return _STREAM_EVENTS


@dataclass
class ServiceConfig:
    """Service-level tunables."""

    #: How close (meters) the reported GPS fix must be to the venue.  The
    #: client's "nearby venues" list uses the same radius, so a venue the
    #: client can see is always one the server will accept.
    gps_verification_radius_m: float = 1_000.0
    #: Radius of the client's nearby-venue suggestion list.
    nearby_radius_m: float = 1_000.0
    #: Maximum venues returned by a nearby query.
    nearby_limit: int = 30


@dataclass
class ServiceCounters:
    """Aggregate outcome counters, read by tests and benches."""

    valid: int = 0
    flagged: int = 0
    rejected: int = 0
    flagged_by_rule: Dict[str, int] = field(default_factory=dict)
    #: Exported metric families, attached by :meth:`bind_metrics`.
    _status_children: Optional[Dict[CheckInStatus, object]] = field(
        default=None, repr=False, compare=False
    )
    _denials_metric: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def bind_metrics(self, metrics: MetricsRegistry) -> "ServiceCounters":
        """Mirror every recorded outcome into exported counters.

        ``repro_lbsn_checkins_total{status}`` counts outcomes;
        ``repro_lbsn_checkin_denials_total{rule}`` counts the cheater-code
        rule (or GPS verification) behind every flag/reject.  The three
        status children are pre-bound here so the per-check-in hot path
        is a dict lookup plus one counter increment, not a ``labels()``
        resolution (the E20 overhead bench keeps this path honest).
        """
        checkins_metric = metrics.counter(
            "repro_lbsn_checkins_total",
            "Check-in attempts processed, by pipeline outcome.",
            ("status",),
        )
        self._status_children = {
            status: checkins_metric.labels(status.value)
            for status in CheckInStatus
        }
        self._denials_metric = metrics.counter(
            "repro_lbsn_checkin_denials_total",
            "Flagged or rejected check-ins, by denying rule.",
            ("rule",),
        )
        return self

    def record(self, status: CheckInStatus, rule: Optional[str]) -> None:
        """Tally one check-in outcome."""
        if status is CheckInStatus.VALID:
            self.valid += 1
        elif status is CheckInStatus.FLAGGED:
            self.flagged += 1
        else:
            self.rejected += 1
        if rule:
            self.flagged_by_rule[rule] = self.flagged_by_rule.get(rule, 0) + 1
        if self._status_children is not None:
            self._status_children[status].inc()
            if rule:
                self._denials_metric.labels(rule).inc()


class LbsnService:
    """The simulated location-based social network server."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        cheater_code: Optional[CheaterCode] = None,
        badge_engine: Optional[BadgeEngine] = None,
        points_policy: Optional[PointsPolicy] = None,
        config: Optional[ServiceConfig] = None,
        event_bus: Optional["EventBus"] = None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults=None,
        store_shards: int = 1,
    ) -> None:
        self.clock = clock or SimClock()
        #: Optional :class:`~repro.faults.FaultInjector`.  The service
        #: itself only forwards it to the store (``store.commit`` fires
        #: before any row mutates, so aborted commits are atomic).
        self.faults = faults
        #: ``store_shards > 1`` swaps the single-lock store for a
        #: :class:`~repro.lbsn.sharded.ShardedDataStore` — same API and
        #: seq-allocation contract, N locks (see docs/SHARDING.md).
        if store_shards > 1:
            from repro.lbsn.sharded import ShardedDataStore

            self.store = ShardedDataStore(
                shards=store_shards, metrics=metrics, log=log, faults=faults
            )
        else:
            self.store = DataStore(metrics=metrics, log=log, faults=faults)
        self.cheater_code = cheater_code or CheaterCode()
        self.badges = badge_engine or BadgeEngine()
        self.points = points_policy or PointsPolicy()
        self.config = config or ServiceConfig()
        self.counters = ServiceCounters()
        #: Optional live event stream (see :mod:`repro.stream`).  When
        #: set, the service publishes one event per state transition at
        #: the end of the pipeline, sequenced in commit order.
        self.event_bus = event_bus
        #: Optional observability registry (see :mod:`repro.obs`).  When
        #: set, the pipeline exports outcome/denial counters, the store
        #: exports entity gauges and lock timings, and :attr:`tracer`
        #: times every commit under the ``checkin.commit`` span.
        self.metrics = metrics
        #: Optional structured log (see :mod:`repro.obs.log`).  When set,
        #: every check-in emits one ``checkin`` record carrying the
        #: request's ``trace_id``, so the whole pipeline story — this
        #: record, the commit (``store.commit``), the bus events, any
        #: detector flag — links up under one grep key.
        self.log = log
        self._logger: Optional[StructuredLogger] = (
            log.logger("lbsn.service") if log is not None else None
        )
        self.tracer: Optional[Tracer] = None
        if metrics is not None:
            self.counters.bind_metrics(metrics)
            self.tracer = Tracer(metrics)
            self._users_registered = metrics.counter(
                "repro_lbsn_users_registered_total",
                "Accounts created through the service.",
            )
            self._venues_created = metrics.counter(
                "repro_lbsn_venues_created_total",
                "Venues created through the service.",
            )
        else:
            self._users_registered = None
            self._venues_created = None
        #: venue-ids currently mayored, per user.
        self._mayor_venues: Dict[int, Set[int]] = {}
        self._lock = threading.RLock()

    # Registration -------------------------------------------------------

    def register_user(
        self,
        display_name: str,
        username: Optional[str] = None,
        home_city: str = "",
    ) -> User:
        """Create an account with the next sequential user ID."""
        if not display_name:
            raise ServiceError("display_name must be non-empty")
        with self._lock:
            user = User(
                user_id=self.store.user_ids.allocate(),
                display_name=display_name,
                username=username,
                home_city=home_city,
                created_at=self.clock.now(),
            )
            self.store.add_user(user)
            if self._users_registered is not None:
                self._users_registered.inc()
            if self.event_bus is not None:
                ambient = current_trace()
                self.event_bus.publish(
                    _stream_events().UserRegistered(
                        seq=self.store.allocate_event_seq(),
                        timestamp=user.created_at,
                        user_id=user.user_id,
                        username=user.username,
                        trace_id=(
                            ambient.trace_id if ambient is not None else None
                        ),
                    )
                )
            return user

    def create_venue(
        self,
        name: str,
        location: GeoPoint,
        address: str = "",
        city: str = "",
        category: VenueCategory = VenueCategory.OTHER,
        special: Optional[Special] = None,
    ) -> Venue:
        """Register a venue with the next sequential venue ID."""
        if not name:
            raise ServiceError("venue name must be non-empty")
        with self._lock:
            venue = Venue(
                venue_id=self.store.venue_ids.allocate(),
                name=name,
                location=location,
                address=address,
                city=city,
                category=category,
                created_at=self.clock.now(),
                special=special,
            )
            self.store.add_venue(venue)
            if self._venues_created is not None:
                self._venues_created.inc()
            if self.event_bus is not None:
                ambient = current_trace()
                self.event_bus.publish(
                    _stream_events().VenueCreated(
                        seq=self.store.allocate_event_seq(),
                        timestamp=venue.created_at,
                        venue_id=venue.venue_id,
                        location=venue.location,
                        trace_id=(
                            ambient.trace_id if ambient is not None else None
                        ),
                    )
                )
            return venue

    # Queries --------------------------------------------------------------

    def nearby_venues(self, location: GeoPoint) -> List[Venue]:
        """The suggestion list the client app shows around ``location``."""
        venues = self.store.venues_near(location, self.config.nearby_radius_m)
        return venues[: self.config.nearby_limit]

    def mayorships_of(self, user_id: int) -> List[Venue]:
        """Venues the user is currently mayor of."""
        with self._lock:
            venue_ids = sorted(self._mayor_venues.get(user_id, set()))
        return [self.store.require_venue(venue_id) for venue_id in venue_ids]

    def mayorship_count(self, user_id: int) -> int:
        """How many venues the user is currently mayor of."""
        with self._lock:
            return len(self._mayor_venues.get(user_id, set()))

    def event_watermark(self) -> int:
        """The next event ``seq`` the store will allocate.

        This is the seq handoff the durability layer keys on: every
        event published so far has ``seq < event_watermark()``, so a
        WAL whose replay reaches ``watermark - 1`` has seen everything
        the service committed (the ``repro wal-replay`` manifest records
        it for exactly that check).
        """
        return self.store.event_seq_watermark()

    # The check-in pipeline ------------------------------------------------

    def check_in(
        self,
        user_id: int,
        venue_id: int,
        reported_location: GeoPoint,
        timestamp: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> CheckInResult:
        """Process one check-in attempt end to end.

        ``reported_location`` is whatever the client sent — the server has
        no way to tell a genuine GPS fix from a spoofed one.  With a
        metrics registry attached, the whole pipeline runs under the
        ``checkin.commit`` tracing span.

        ``trace`` is the request's :class:`~repro.obs.context.
        TraceContext`.  When omitted and the service is instrumented, the
        ambient context (web-server request entry, defense wrapper) is
        adopted, or a fresh one is minted — this is the root of the
        end-to-end ``trace_id`` chain.  Uninstrumented services never
        mint.
        """
        if trace is None and (
            self._logger is not None or self.tracer is not None
        ):
            trace = current_trace() or TraceContext.mint()
        tracer = self.tracer
        if tracer is None:
            return self._check_in(
                user_id, venue_id, reported_location, timestamp, trace
            )
        # Hand-timed rather than `with tracer.span(...)`: this is the
        # hottest traced region, and Tracer.record skips the per-call
        # context-manager allocation (see the E20 overhead bench).
        start = time.perf_counter()
        try:
            return self._check_in(
                user_id, venue_id, reported_location, timestamp, trace
            )
        finally:
            tracer.record(
                "checkin.commit",
                time.perf_counter() - start,
                trace.trace_id if trace is not None else None,
            )

    def _check_in(
        self,
        user_id: int,
        venue_id: int,
        reported_location: GeoPoint,
        timestamp: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> CheckInResult:
        now = self.clock.now() if timestamp is None else timestamp
        with self._lock:
            user = self.store.require_user(user_id)
            venue = self.store.require_venue(venue_id)

            # Stage 1: GPS verification.
            distance = haversine_m(reported_location, venue.location)
            if distance > self.config.gps_verification_radius_m:
                checkin = self._record(
                    user,
                    venue,
                    now,
                    reported_location,
                    CheckInStatus.REJECTED,
                    RULE_GPS_VERIFICATION,
                    trace,
                )
                return CheckInResult(
                    checkin=checkin,
                    warnings=[
                        f"you appear to be {distance / 1000.0:.1f} km from "
                        f"{venue.name}"
                    ],
                )

            # Stage 2: the cheater code.
            history = self.store.checkins_of_user(user_id)
            verdict = self.cheater_code.evaluate(
                venue_id=venue_id,
                venue_location=venue.location,
                timestamp=now,
                history=history,
                location_of_venue=self._venue_location,
                prior_flagged_count=user.flagged_checkins,
            )
            if verdict.action is RuleAction.REJECT:
                checkin = self._record(
                    user,
                    venue,
                    now,
                    reported_location,
                    CheckInStatus.REJECTED,
                    verdict.rule,
                    trace,
                )
                return CheckInResult(
                    checkin=checkin, warnings=[verdict.message]
                )
            if verdict.action is RuleAction.FLAG:
                checkin = self._record(
                    user,
                    venue,
                    now,
                    reported_location,
                    CheckInStatus.FLAGGED,
                    verdict.rule,
                    trace,
                )
                return CheckInResult(
                    checkin=checkin, warnings=list(verdict.warnings)
                )

            # Stage 3: a valid check-in earns rewards.
            return self._reward(
                user, venue, now, reported_location, verdict, trace
            )

    def _venue_location(self, venue_id: int) -> Optional[GeoPoint]:
        venue = self.store.get_venue(venue_id)
        return None if venue is None else venue.location

    def _first_valid_of_day(self, user_id: int, now: float) -> bool:
        """Is this the user's first valid check-in of the calendar day?

        Scans backwards and stops at the first record from an earlier day,
        so the cost is bounded by one day's activity, not lifetime history.
        """
        today = day_index(now)
        for checkin in reversed(self.store.checkins_of_user(user_id)):
            day = day_index(checkin.timestamp)
            if day < today:
                break
            if day == today and checkin.status is CheckInStatus.VALID:
                return False
        return True

    def _record(
        self,
        user: User,
        venue: Venue,
        now: float,
        reported_location: GeoPoint,
        status: CheckInStatus,
        rule: Optional[str],
        trace: Optional[TraceContext] = None,
    ) -> CheckIn:
        """Persist a non-valid attempt, applying Foursquare's count policy.

        Rejected attempts never become activity.  Flagged attempts are
        recorded and increment the user's raw total (but nothing else) —
        the policy §4.3 documents.
        """
        trace_id = trace.trace_id if trace is not None else None
        checkin = CheckIn(
            checkin_id=self.store.checkin_ids.allocate(),
            user_id=user.user_id,
            venue_id=venue.venue_id,
            timestamp=now,
            reported_location=reported_location,
            status=status,
            flagged_rule=rule,
        )
        seq = -1
        if status is not CheckInStatus.REJECTED:
            if self.event_bus is not None:
                _, seq = self.store.add_checkin_committed(
                    checkin, trace_id=trace_id
                )
            else:
                self.store.add_checkin(checkin)
            user.total_checkins += 1
        elif self.event_bus is not None:
            seq = self.store.allocate_event_seq()
        self.counters.record(status, rule)
        if self._logger is not None:
            self._logger.info(
                "checkin",
                trace_id=trace_id,
                user_id=user.user_id,
                venue_id=venue.venue_id,
                checkin_id=checkin.checkin_id,
                status=status.value,
                rule=rule,
                seq=seq,
            )
        if self.event_bus is not None:
            events = _stream_events()
            event_type = (
                events.CheckInFlagged
                if status is CheckInStatus.FLAGGED
                else events.CheckInRejected
            )
            self.event_bus.publish(
                event_type(
                    seq=seq,
                    timestamp=now,
                    user_id=user.user_id,
                    venue_id=venue.venue_id,
                    venue_location=venue.location,
                    reported_location=reported_location,
                    checkin_id=checkin.checkin_id,
                    rule=rule,
                    trace_id=trace_id,
                )
            )
        return checkin

    def _reward(
        self,
        user: User,
        venue: Venue,
        now: float,
        reported_location: GeoPoint,
        verdict,
        trace: Optional[TraceContext] = None,
    ) -> CheckInResult:
        """Apply the full reward pipeline for a valid check-in."""
        trace_id = trace.trace_id if trace is not None else None
        first_visit = venue.venue_id not in user.venues_visited
        first_of_day = self._first_valid_of_day(user.user_id, now)

        checkin = CheckIn(
            checkin_id=self.store.checkin_ids.allocate(),
            user_id=user.user_id,
            venue_id=venue.venue_id,
            timestamp=now,
            reported_location=reported_location,
            status=CheckInStatus.VALID,
        )
        if self.event_bus is not None:
            _, event_seq = self.store.add_checkin_committed(
                checkin, trace_id=trace_id
            )
        else:
            self.store.add_checkin(checkin)
            event_seq = -1

        # User/venue counters.
        user.total_checkins += 1
        user.valid_checkins += 1
        user.venues_visited.add(venue.venue_id)
        user.active_days.add(day_index(now))
        venue.checkin_count += 1
        venue.unique_visitors.add(user.user_id)
        venue.record_recent_visitor(user.user_id)

        # Mayorship recomputation over the 60-day window.
        decision = decide_mayor(
            self.store.checkins_at_venue(venue.venue_id),
            now,
            venue.mayor_id,
        )
        became_mayor = False
        lost_mayor: Optional[int] = None
        if decision.changed:
            lost_mayor = decision.previous_mayor_id
            self._transfer_mayorship(venue, decision.mayor_id)
            became_mayor = decision.mayor_id == user.user_id

        # Points.
        awarded = self.points.score(first_visit, first_of_day, became_mayor)
        user.points += awarded
        checkin.points_awarded = awarded

        # Badges, judged over history including this check-in.
        new_badges = self.badges.evaluate(
            user, self.store.checkins_of_user(user.user_id)
        )

        # Specials (per-user valid counts are maintained incrementally).
        valid_here = venue.visitor_valid_counts.get(user.user_id, 0) + 1
        venue.visitor_valid_counts[user.user_id] = valid_here
        is_mayor_after = venue.mayor_id == user.user_id
        special = special_unlocked_by(venue, user, valid_here, is_mayor_after)

        self.counters.record(CheckInStatus.VALID, None)
        if self._logger is not None:
            # The hottest log call in the codebase (one per valid
            # check-in): the status string is a hoisted constant and the
            # field set is trimmed to what the trace chain needs —
            # ``rule`` is omitted (it only means something on the flagged
            # path, where :meth:`_record` logs it).
            self._logger.info(
                "checkin",
                trace_id=trace_id,
                user_id=user.user_id,
                venue_id=venue.venue_id,
                checkin_id=checkin.checkin_id,
                status=_VALID_STATUS,
                seq=event_seq,
                points=awarded,
                became_mayor=became_mayor,
            )
        if self.event_bus is not None:
            events = _stream_events()
            self.event_bus.publish(
                events.CheckInAccepted(
                    seq=event_seq,
                    timestamp=now,
                    user_id=user.user_id,
                    venue_id=venue.venue_id,
                    venue_location=venue.location,
                    reported_location=reported_location,
                    checkin_id=checkin.checkin_id,
                    points=awarded,
                    new_badge_count=len(new_badges),
                    became_mayor=became_mayor,
                    first_visit=first_visit,
                    trace_id=trace_id,
                )
            )
            if decision.changed:
                self.event_bus.publish(
                    events.MayorChanged(
                        seq=self.store.allocate_event_seq(),
                        timestamp=now,
                        venue_id=venue.venue_id,
                        new_mayor_id=venue.mayor_id,
                        previous_mayor_id=lost_mayor,
                        trace_id=trace_id,
                    )
                )
        return CheckInResult(
            checkin=checkin,
            points=awarded,
            new_badges=new_badges,
            became_mayor=became_mayor,
            lost_mayor_user_id=lost_mayor,
            special_unlocked=special,
        )

    def _transfer_mayorship(
        self, venue: Venue, new_mayor_id: Optional[int]
    ) -> None:
        old = venue.mayor_id
        if old is not None:
            self._mayor_venues.get(old, set()).discard(venue.venue_id)
            old_user = self.store.get_user(old)
            if old_user is not None:
                old_user.mayorship_count = max(0, old_user.mayorship_count - 1)
        venue.mayor_id = new_mayor_id
        if new_mayor_id is not None:
            self._mayor_venues.setdefault(new_mayor_id, set()).add(
                venue.venue_id
            )
            new_user = self.store.get_user(new_mayor_id)
            if new_user is not None:
                new_user.mayorship_count += 1

    # Tips -------------------------------------------------------------------

    def post_tip(
        self,
        user_id: int,
        venue_id: int,
        text: str,
        timestamp: Optional[float] = None,
    ):
        """Leave a public comment on a venue page.

        Requires at least one *valid* check-in at the venue — which is no
        protection at all against a location cheater, who can manufacture
        that check-in from anywhere (the §2.2 badmouthing scenario).
        """
        if not text:
            raise ServiceError("tip text must be non-empty")
        with self._lock:
            self.store.require_user(user_id)
            venue = self.store.require_venue(venue_id)
            if venue.visitor_valid_counts.get(user_id, 0) < 1:
                raise ServiceError(
                    "check in to this venue before leaving a tip"
                )
            from repro.lbsn.models import Tip

            tip = Tip(
                author_id=user_id,
                text=text,
                created_at=self.clock.now() if timestamp is None else timestamp,
            )
            venue.tips.append(tip)
            return tip

    # Maintenance ------------------------------------------------------------

    def refresh_mayorship(self, venue_id: int) -> Optional[int]:
        """Recompute one venue's mayor at the current clock time.

        Check-ins age out of the 60-day window even with no new activity;
        analyses that read mayor state after long simulated gaps call this
        (or :meth:`refresh_all_mayorships`) first.
        """
        with self._lock:
            venue = self.store.require_venue(venue_id)
            decision = decide_mayor(
                self.store.checkins_at_venue(venue_id),
                self.clock.now(),
                venue.mayor_id,
            )
            if decision.changed:
                self._transfer_mayorship(venue, decision.mayor_id)
            return venue.mayor_id

    def refresh_all_mayorships(self) -> int:
        """Recompute every venue's mayor; returns how many changed."""
        changed = 0
        for venue in self.store.iter_venues():
            before = venue.mayor_id
            if self.refresh_mayorship(venue.venue_id) != before:
                changed += 1
        return changed
