"""Real-world rewards ("specials") offered by partner venues (§2.1).

"More than 90% of the rewards were only for mayors"; the remainder unlock at
a check-in-count threshold ("some special offers that do not require
mayorship which are much easier to obtain", §3.4).  This module decides when
a check-in unlocks a special, and provides the catalogue helpers the
targeting analysis queries.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lbsn.models import Special, User, Venue

#: Stock offer texts assigned by the workload generator.
MAYOR_SPECIAL_TEXTS = (
    "Free cup of coffee for the mayor!",
    "Mayor gets 20% off any entree.",
    "The mayor drinks free on Fridays.",
    "Free dessert for the mayor.",
    "Mayor special: free upgrade.",
)

UNLOCKED_SPECIAL_TEXTS = (
    "Free appetizer on your 3rd check-in.",
    "Every 5th check-in earns a free drink.",
    "Check in twice, get 10% off.",
)


def special_unlocked_by(
    venue: Venue,
    user: User,
    user_valid_checkins_here: int,
    is_mayor_after: bool,
) -> Optional[Special]:
    """The special this check-in unlocks for ``user``, if any.

    Mayor-only specials unlock exactly when the user holds (or just took)
    the mayorship; count-based specials unlock when the user's valid
    check-in count at this venue reaches the threshold.
    """
    special = venue.special
    if special is None:
        return None
    if special.mayor_only:
        return special if is_mayor_after else None
    if user_valid_checkins_here >= special.unlock_checkins:
        return special
    return None


def venues_with_specials(venues: List[Venue]) -> List[Venue]:
    """All venues offering any special."""
    return [venue for venue in venues if venue.has_special]


def mayor_only_fraction(venues: List[Venue]) -> float:
    """Fraction of specials that are mayor-only (thesis: > 0.9)."""
    offering = venues_with_specials(venues)
    if not offering:
        return 0.0
    mayor_only = sum(1 for venue in offering if venue.special.mayor_only)
    return mayor_only / len(offering)


def undefended_special_venues(venues: List[Venue]) -> List[Venue]:
    """Venues with a mayor-only special and **no current mayor** (§3.4).

    These are the attack's prime targets: "venues that provide special
    offers to their mayors and don't have a mayor yet ... It is relatively
    easy to become the mayor of these venues."
    """
    return [
        venue
        for venue in venues
        if venue.has_special
        and venue.special.mayor_only
        and venue.mayor_id is None
    ]


def no_mayorship_specials(venues: List[Venue]) -> List[Venue]:
    """Venues whose special does not require mayorship at all (§3.4)."""
    return [
        venue
        for venue in venues
        if venue.has_special and not venue.special.mayor_only
    ]
