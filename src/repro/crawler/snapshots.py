"""Repeated crawling and snapshot diffing (§3.2).

"The venue's recent visitor list does not have a time stamp to indicate
when a user visited this venue; but if we crawl the venues daily, then we
will be able to determine how frequently a user checks into a venue."

A :class:`SnapshotStore` runs the full crawler on a cadence; diffing two
snapshots turns unstamped recent-visitor lists into *time-bounded check-in
observations* — the raw material of the §6.2.1 privacy-leakage analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.crawler.crawler import crawl_full_site
from repro.crawler.database import CrawlDatabase
from repro.errors import CrawlError
from repro.simnet.http import HttpTransport
from repro.simnet.network import Egress


@dataclass
class CrawlSnapshot:
    """One full crawl plus the simulated time it represents."""

    taken_at: float
    database: CrawlDatabase

    def visitor_sets(self) -> Dict[int, Set[int]]:
        """venue_id -> set of user_ids on its recent-visitor list."""
        sets: Dict[int, Set[int]] = {}
        for row in self.database.recent_checkins():
            sets.setdefault(row.venue_id, set()).add(row.user_id)
        return sets

    def visitor_lists(self) -> Dict[int, List[int]]:
        """venue_id -> ordered recent-visitor list, newest first."""
        return self.database.recent_visitor_lists()

    def totals(self) -> Dict[int, int]:
        """user_id -> profile total check-ins at snapshot time."""
        return {
            user.user_id: user.total_checkins
            for user in self.database.users()
        }


@dataclass(frozen=True)
class ObservedCheckIn:
    """A check-in whose time is bounded by two crawl timestamps.

    ``user_id`` appeared on ``venue_id``'s recent-visitor list in the
    newer snapshot but not the older one, so the visit happened in
    ``(window_start, window_end]``.
    """

    user_id: int
    venue_id: int
    window_start: float
    window_end: float

    @property
    def window_s(self) -> float:
        """Width of the time bound — one crawl period."""
        return self.window_end - self.window_start


@dataclass
class SnapshotDiff:
    """Everything two consecutive crawls reveal."""

    window_start: float
    window_end: float
    observed_checkins: List[ObservedCheckIn] = field(default_factory=list)
    #: user_id -> increase in profile total over the window (includes
    #: activity at venues whose lists rotated the user out again).
    total_deltas: Dict[int, int] = field(default_factory=dict)

    @property
    def active_users(self) -> Set[int]:
        """Users with any observed activity in the window."""
        active = {obs.user_id for obs in self.observed_checkins}
        active.update(
            user_id for user_id, delta in self.total_deltas.items() if delta > 0
        )
        return active


def _observed_users(old_list: List[int], new_list: List[int]) -> Set[int]:
    """Users who demonstrably checked in between two orderings of a list.

    A user is observed when they (a) newly appear on the list, or (b) were
    on it before but have *overtaken* someone who used to be ahead of them
    — the lists are newest-first, so moving up past a previously-ahead
    visitor requires a fresh check-in.  Revisits by a user who stays at
    the head (nobody else checked in either) remain invisible — the same
    limitation the thesis notes for the live site.
    """
    old_rank = {user_id: rank for rank, user_id in enumerate(old_list)}
    observed: Set[int] = set(new_list) - set(old_list)
    for index, user_id in enumerate(new_list):
        if user_id not in old_rank:
            continue
        for behind in new_list[index + 1 :]:
            if behind in old_rank and old_rank[behind] < old_rank[user_id]:
                observed.add(user_id)
                break
    return observed


def diff_snapshots(older: CrawlSnapshot, newer: CrawlSnapshot) -> SnapshotDiff:
    """Extract time-bounded observations from two crawls."""
    if newer.taken_at < older.taken_at:
        raise CrawlError("snapshots supplied in the wrong order")
    diff = SnapshotDiff(
        window_start=older.taken_at, window_end=newer.taken_at
    )
    old_lists = older.visitor_lists()
    for venue_id, new_list in newer.visitor_lists().items():
        observed = _observed_users(old_lists.get(venue_id, []), new_list)
        for user_id in observed:
            diff.observed_checkins.append(
                ObservedCheckIn(
                    user_id=user_id,
                    venue_id=venue_id,
                    window_start=older.taken_at,
                    window_end=newer.taken_at,
                )
            )
    old_totals = older.totals()
    for user_id, new_total in newer.totals().items():
        delta = new_total - old_totals.get(user_id, 0)
        if delta != 0:
            diff.total_deltas[user_id] = delta
    return diff


class SnapshotStore:
    """Runs crawls on a cadence and accumulates snapshots + diffs."""

    def __init__(
        self,
        transport: HttpTransport,
        machine_egresses: Sequence[Egress],
        clock,
    ) -> None:
        if not machine_egresses:
            raise CrawlError("need at least one crawl machine")
        self.transport = transport
        self.machine_egresses = list(machine_egresses)
        self.clock = clock
        self.snapshots: List[CrawlSnapshot] = []

    def take_snapshot(self) -> CrawlSnapshot:
        """Run a full crawl now and store it."""
        database, _, _ = crawl_full_site(
            self.transport, self.machine_egresses
        )
        snapshot = CrawlSnapshot(
            taken_at=self.clock.now(), database=database
        )
        self.snapshots.append(snapshot)
        return snapshot

    def diffs(self) -> List[SnapshotDiff]:
        """Diffs between each consecutive snapshot pair."""
        return [
            diff_snapshots(older, newer)
            for older, newer in zip(self.snapshots, self.snapshots[1:])
        ]

    def latest(self) -> Optional[CrawlSnapshot]:
        """The most recent snapshot, if any."""
        return self.snapshots[-1] if self.snapshots else None
