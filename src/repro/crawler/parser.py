"""Regex extraction from profile HTML (§3.2).

"To extract data from the HTML source code, we let the crawler perform a
set of regular expression matches."  The patterns here target the site's
rendered markup; if the site changes (e.g. the visitor-obfuscation defense
replaces ``/user/<id>`` links with opaque tokens), extraction degrades
exactly the way a real crawler's would.
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CrawlError

_RE_USER_ID = re.compile(r'data-user-id="(\d+)"')
_RE_USER_NAME = re.compile(r'<h1 class="fn">(.*?)</h1>', re.S)
_RE_USERNAME = re.compile(r'<div class="username">@([A-Za-z0-9_\-]+)</div>')
_RE_HOMECITY = re.compile(r'<div class="homecity">(.*?)</div>', re.S)
_RE_CHECKIN_COUNT = re.compile(r'<span class="checkin-count">(\d+)</span>')
_RE_BADGE_COUNT = re.compile(r'<span class="badge-count">(\d+)</span>')
_RE_POINTS = re.compile(r'<span class="points">(\d+)</span>')
_RE_FRIEND = re.compile(r'<a class="friend" href="/user/(\d+)">')

_RE_VENUE_ID = re.compile(r'data-venue-id="(\d+)"')
_RE_VENUE_NAME = re.compile(r'<h1 class="venue-name">(.*?)</h1>', re.S)
_RE_ADDRESS = re.compile(r'<div class="address">(.*?)</div>', re.S)
_RE_CITY = re.compile(r'<div class="city">(.*?)</div>', re.S)
_RE_LATITUDE = re.compile(r'<span class="latitude">(-?[\d.]+)</span>')
_RE_LONGITUDE = re.compile(r'<span class="longitude">(-?[\d.]+)</span>')
_RE_CHECKINS_HERE = re.compile(r'<span class="checkins-here">(\d+)</span>')
_RE_UNIQUE_VISITORS = re.compile(r'<span class="unique-visitors">(\d+)</span>')
_RE_MAYOR = re.compile(r'<a class="mayor" href="/user/(\d+)">')
_RE_SPECIAL = re.compile(r'<div class="special ([\w\-]+)">(.*?)</div>', re.S)
_RE_VISITOR = re.compile(r'<a class="visitor" href="/user/(\d+)">')
_RE_TIP = re.compile(
    r'<li class="tip" data-author="(\d+)">(.*?)</li>', re.S
)
_RE_WHOS_BEEN_HERE = re.compile(r'<div class="whos-been-here">')


@dataclass
class ParsedUser:
    """Fields extracted from a user profile page."""

    user_id: int
    display_name: str
    username: Optional[str]
    home_city: str
    total_checkins: int
    total_badges: int
    points: int
    friend_ids: List[int] = field(default_factory=list)


@dataclass
class ParsedVenue:
    """Fields extracted from a venue page."""

    venue_id: int
    name: str
    address: str
    city: str
    latitude: float
    longitude: float
    checkins_here: int
    unique_visitors: int
    mayor_id: Optional[int]
    special: Optional[str]
    special_mayor_only: bool
    recent_visitor_ids: List[int] = field(default_factory=list)
    has_whos_been_here: bool = False
    #: (author_id, text) pairs from the venue's tip list.
    tips: List[tuple] = field(default_factory=list)


def _required(pattern: re.Pattern, page: str, what: str) -> str:
    match = pattern.search(page)
    if match is None:
        raise CrawlError(f"could not extract {what} from page")
    return match.group(1)


def _optional(pattern: re.Pattern, page: str) -> Optional[str]:
    match = pattern.search(page)
    return None if match is None else match.group(1)


def parse_user_page(page: str) -> ParsedUser:
    """Extract a :class:`ParsedUser` from profile HTML."""
    return ParsedUser(
        user_id=int(_required(_RE_USER_ID, page, "user id")),
        display_name=html.unescape(
            _required(_RE_USER_NAME, page, "display name").strip()
        ),
        username=_optional(_RE_USERNAME, page),
        home_city=html.unescape(
            (_optional(_RE_HOMECITY, page) or "").strip()
        ),
        total_checkins=int(_required(_RE_CHECKIN_COUNT, page, "check-in count")),
        total_badges=int(_required(_RE_BADGE_COUNT, page, "badge count")),
        points=int(_required(_RE_POINTS, page, "points")),
        friend_ids=[int(fid) for fid in _RE_FRIEND.findall(page)],
    )


def parse_venue_page(page: str) -> ParsedVenue:
    """Extract a :class:`ParsedVenue` from venue HTML."""
    special_match = _RE_SPECIAL.search(page)
    special_text: Optional[str] = None
    special_mayor_only = False
    if special_match is not None:
        special_mayor_only = special_match.group(1) == "mayor-only"
        special_text = html.unescape(special_match.group(2).strip())
    return ParsedVenue(
        venue_id=int(_required(_RE_VENUE_ID, page, "venue id")),
        name=html.unescape(_required(_RE_VENUE_NAME, page, "venue name").strip()),
        address=html.unescape((_optional(_RE_ADDRESS, page) or "").strip()),
        city=html.unescape((_optional(_RE_CITY, page) or "").strip()),
        latitude=float(_required(_RE_LATITUDE, page, "latitude")),
        longitude=float(_required(_RE_LONGITUDE, page, "longitude")),
        checkins_here=int(_required(_RE_CHECKINS_HERE, page, "check-ins here")),
        unique_visitors=int(
            _required(_RE_UNIQUE_VISITORS, page, "unique visitors")
        ),
        mayor_id=(
            int(_optional(_RE_MAYOR, page))
            if _RE_MAYOR.search(page)
            else None
        ),
        special=special_text,
        special_mayor_only=special_mayor_only,
        recent_visitor_ids=[int(uid) for uid in _RE_VISITOR.findall(page)],
        has_whos_been_here=bool(_RE_WHOS_BEEN_HERE.search(page)),
        tips=[
            (int(author), html.unescape(text.strip()))
            for author, text in _RE_TIP.findall(page)
        ],
    )
