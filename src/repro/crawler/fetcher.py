"""Page fetching with retries (§3.2's "sent HTTP Get to this URL").

A thin, thread-safe layer over the simulated transport: one egress per
fetcher (a crawl machine), bounded retries on 5xx, and a clean distinction
between "page doesn't exist" (a frontier signal) and "fetch failed"
(a :class:`~repro.errors.CrawlError`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CrawlError
from repro.simnet.http import (
    HTTP_NOT_FOUND,
    HTTP_TOO_MANY_REQUESTS,
    HttpResponse,
    HttpTransport,
)
from repro.simnet.network import Egress


class PageFetcher:
    """Fetches profile pages through one egress point."""

    def __init__(
        self,
        transport: HttpTransport,
        egress: Egress,
        max_retries: int = 2,
    ) -> None:
        if max_retries < 0:
            raise CrawlError(f"max_retries must be non-negative: {max_retries}")
        self.transport = transport
        self.egress = egress
        self.max_retries = max_retries

    def fetch(self, path: str) -> Optional[str]:
        """Fetch one page.

        Returns the HTML body, or None for a 404 (the page genuinely does
        not exist).  Raises :class:`CrawlError` when the server keeps
        failing or actively refuses the client (auth walls, rate limits,
        blocks) — the signals the crawl-control defense produces.
        """
        response = self._attempt(path)
        retries = 0
        while response.status >= 500 and retries < self.max_retries:
            retries += 1
            response = self._attempt(path)
        if response.status == HTTP_NOT_FOUND:
            return None
        if response.status == HTTP_TOO_MANY_REQUESTS:
            raise CrawlError(f"rate limited fetching {path}")
        if not response.ok:
            raise CrawlError(f"HTTP {response.status} fetching {path}")
        return response.body

    def _attempt(self, path: str) -> HttpResponse:
        return self.transport.get(path, self.egress)
