"""Page fetching with retries (§3.2's "sent HTTP Get to this URL").

A thin, thread-safe layer over the simulated transport: one egress per
fetcher (a crawl machine), bounded retries on transient failures, and a
clean distinction between "page doesn't exist" (a frontier signal),
"fetch failed but might recover" (:class:`~repro.errors.
CrawlTransientError` — 5xx storms, rate limits, injected faults,
network loss), and "fetch will never succeed" (:class:`~repro.errors.
CrawlPermanentError` — auth walls, IP blocks).  Both subclass
:class:`~repro.errors.CrawlError`, so existing callers keep working;
retry policy now keys off the class, not the message.

Resilience hooks (all optional, all injectable):

* ``faults`` — a :class:`~repro.faults.FaultInjector` checked at
  :data:`~repro.faults.points.POINT_CRAWLER_FETCH` before every HTTP
  attempt, labelled with the egress IP so plans can ban one machine.
* ``breaker`` — a :class:`~repro.faults.CircuitBreaker` consulted before
  each attempt; an open breaker fails fast as a transient error (the
  worker re-queues, §3.2's "stop hammering a banned IP" discipline).
  Raised attempt errors count as breaker failures; any HTTP response —
  even a 5xx — counts as a success, because the egress demonstrably
  reached the server.
* ``backoff`` + ``sleep`` — a :class:`~repro.faults.BackoffPolicy` paced
  through an injectable sleep callable (the chaos harness passes
  ``clock.advance``, so retries pace in simulated time).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.errors import (
    BreakerOpenError,
    CrawlError,
    CrawlPermanentError,
    CrawlTransientError,
    NetworkError,
    TransientError,
)
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.points import POINT_CRAWLER_FETCH
from repro.faults.retry import BackoffPolicy
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.http import (
    HTTP_NOT_FOUND,
    HTTP_TOO_MANY_REQUESTS,
    HttpResponse,
    HttpTransport,
)
from repro.simnet.network import Egress


class PageFetcher:
    """Fetches profile pages through one egress point.

    With a :class:`~repro.obs.MetricsRegistry` attached, every ``fetch``
    observes its wall time into ``repro_crawler_fetch_seconds`` and
    counts retries in ``repro_crawler_fetch_retries_total``.  With a
    :class:`~repro.obs.log.LogHub` attached, fetch *failures* (rate
    limits, persistent 5xx, refusals) emit WARNING ``crawler.fetch_failed``
    records on the ``crawler.fetcher`` logger — the crawl-control defense's
    signals, visible in the same structured log as everything else.
    """

    def __init__(
        self,
        transport: HttpTransport,
        egress: Egress,
        max_retries: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        breaker: Optional[CircuitBreaker] = None,
        backoff: Optional[BackoffPolicy] = None,
        sleep: Optional[Callable[[float], object]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_retries < 0:
            raise CrawlError(f"max_retries must be non-negative: {max_retries}")
        self.transport = transport
        self.egress = egress
        self.max_retries = max_retries
        self.faults = faults
        self.breaker = breaker
        self.backoff = backoff
        self._sleep = sleep
        self._rng = rng
        self._logger = (
            log.logger("crawler.fetcher") if log is not None else None
        )
        if metrics is not None:
            self._fetch_seconds = metrics.histogram(
                "repro_crawler_fetch_seconds",
                "Wall time of one page fetch, retries included.",
            ).child()
            self._retries_metric = metrics.counter(
                "repro_crawler_fetch_retries_total",
                "Fetch retries after 5xx responses.",
            ).child()
        else:
            self._fetch_seconds = None
            self._retries_metric = None

    def fetch(self, path: str) -> Optional[str]:
        """Fetch one page.

        Returns the HTML body, or None for a 404 (the page genuinely does
        not exist).  Raises :class:`~repro.errors.CrawlTransientError`
        when the failure might clear (5xx storms, rate limits, network
        loss, injected faults, an open breaker) and
        :class:`~repro.errors.CrawlPermanentError` when it never will
        (auth walls, IP blocks) — the signals the crawl-control defense
        produces.  Both are :class:`~repro.errors.CrawlError`.
        """
        if self._fetch_seconds is None:
            return self._fetch(path)
        started = time.perf_counter()
        try:
            return self._fetch(path)
        finally:
            self._fetch_seconds.observe(time.perf_counter() - started)

    def _fetch(self, path: str) -> Optional[str]:
        retries = 0
        while True:
            try:
                response = self._attempt_guarded(path)
            except TransientError as error:
                if retries < self.max_retries:
                    retries += 1
                    self._count_retry()
                    self._pace(retries)
                    continue
                self._log_failure(path, 0, retries, "transient")
                raise CrawlTransientError(
                    f"fetch failed for {path}: "
                    f"{type(error).__name__}: {error}"
                ) from error
            if response.status >= 500 and retries < self.max_retries:
                retries += 1
                self._count_retry()
                self._pace(retries)
                continue
            return self._interpret(path, response, retries)

    def _interpret(
        self, path: str, response: HttpResponse, retries: int
    ) -> Optional[str]:
        """Map a final HTTP response to a body, None, or a typed error."""
        if response.status == HTTP_NOT_FOUND:
            return None
        if response.status == HTTP_TOO_MANY_REQUESTS:
            self._log_failure(path, response.status, retries, "rate-limited")
            raise CrawlTransientError(f"rate limited fetching {path}")
        if response.status >= 500:
            self._log_failure(path, response.status, retries, "http-error")
            raise CrawlTransientError(
                f"HTTP {response.status} fetching {path}"
            )
        if not response.ok:
            self._log_failure(path, response.status, retries, "refused")
            raise CrawlPermanentError(
                f"HTTP {response.status} fetching {path}"
            )
        return response.body

    def _attempt_guarded(self, path: str) -> HttpResponse:
        """One HTTP attempt behind the breaker and the fault injector.

        Raised errors (injected faults, network loss) count as breaker
        failures; any response at all counts as a success — the egress
        reached the server, so the ban/outage the breaker models is over.
        """
        if self.breaker is not None:
            try:
                self.breaker.ensure()
            except BreakerOpenError as error:
                raise CrawlTransientError(
                    f"breaker {error.name!r} open; skipping fetch of {path}"
                ) from error
        try:
            if self.faults is not None:
                self.faults.check(
                    POINT_CRAWLER_FETCH, label=self.egress.ip.value
                )
            response = self._attempt(path)
        except (TransientError, NetworkError) as error:
            if self.breaker is not None:
                self.breaker.record_failure()
            if isinstance(error, TransientError):
                raise
            raise CrawlTransientError(
                f"network error fetching {path}: {error}"
            ) from error
        if self.breaker is not None:
            self.breaker.record_success()
        return response

    def _count_retry(self) -> None:
        if self._retries_metric is not None:
            self._retries_metric.inc()

    def _pace(self, retry_number: int) -> None:
        """Charge the backoff delay to the injected sleep, when wired."""
        if self.backoff is None or self._sleep is None:
            return
        delay = self.backoff.delay(retry_number, self._rng)
        if delay > 0:
            self._sleep(delay)

    def _log_failure(
        self, path: str, status: int, retries: int, reason: str
    ) -> None:
        if self._logger is not None:
            self._logger.warning(
                "crawler.fetch_failed",
                path=path,
                status=status,
                retries=retries,
                reason=reason,
                egress_ip=self.egress.ip.value,
            )

    def _attempt(self, path: str) -> HttpResponse:
        return self.transport.get(path, self.egress)
