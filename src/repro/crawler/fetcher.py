"""Page fetching with retries (§3.2's "sent HTTP Get to this URL").

A thin, thread-safe layer over the simulated transport: one egress per
fetcher (a crawl machine), bounded retries on 5xx, and a clean distinction
between "page doesn't exist" (a frontier signal) and "fetch failed"
(a :class:`~repro.errors.CrawlError`).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import CrawlError
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.http import (
    HTTP_NOT_FOUND,
    HTTP_TOO_MANY_REQUESTS,
    HttpResponse,
    HttpTransport,
)
from repro.simnet.network import Egress


class PageFetcher:
    """Fetches profile pages through one egress point.

    With a :class:`~repro.obs.MetricsRegistry` attached, every ``fetch``
    observes its wall time into ``repro_crawler_fetch_seconds`` and
    counts 5xx retries in ``repro_crawler_fetch_retries_total``.  With a
    :class:`~repro.obs.log.LogHub` attached, fetch *failures* (rate
    limits, persistent 5xx, refusals) emit WARNING ``crawler.fetch_failed``
    records on the ``crawler.fetcher`` logger — the crawl-control defense's
    signals, visible in the same structured log as everything else.
    """

    def __init__(
        self,
        transport: HttpTransport,
        egress: Egress,
        max_retries: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
    ) -> None:
        if max_retries < 0:
            raise CrawlError(f"max_retries must be non-negative: {max_retries}")
        self.transport = transport
        self.egress = egress
        self.max_retries = max_retries
        self._logger = (
            log.logger("crawler.fetcher") if log is not None else None
        )
        if metrics is not None:
            self._fetch_seconds = metrics.histogram(
                "repro_crawler_fetch_seconds",
                "Wall time of one page fetch, retries included.",
            ).child()
            self._retries_metric = metrics.counter(
                "repro_crawler_fetch_retries_total",
                "Fetch retries after 5xx responses.",
            ).child()
        else:
            self._fetch_seconds = None
            self._retries_metric = None

    def fetch(self, path: str) -> Optional[str]:
        """Fetch one page.

        Returns the HTML body, or None for a 404 (the page genuinely does
        not exist).  Raises :class:`CrawlError` when the server keeps
        failing or actively refuses the client (auth walls, rate limits,
        blocks) — the signals the crawl-control defense produces.
        """
        if self._fetch_seconds is None:
            return self._fetch(path)
        started = time.perf_counter()
        try:
            return self._fetch(path)
        finally:
            self._fetch_seconds.observe(time.perf_counter() - started)

    def _fetch(self, path: str) -> Optional[str]:
        response = self._attempt(path)
        retries = 0
        while response.status >= 500 and retries < self.max_retries:
            retries += 1
            if self._retries_metric is not None:
                self._retries_metric.inc()
            response = self._attempt(path)
        if response.status == HTTP_NOT_FOUND:
            return None
        if response.status == HTTP_TOO_MANY_REQUESTS:
            self._log_failure(path, response.status, retries, "rate-limited")
            raise CrawlError(f"rate limited fetching {path}")
        if not response.ok:
            self._log_failure(path, response.status, retries, "http-error")
            raise CrawlError(f"HTTP {response.status} fetching {path}")
        return response.body

    def _log_failure(
        self, path: str, status: int, retries: int, reason: str
    ) -> None:
        if self._logger is not None:
            self._logger.warning(
                "crawler.fetch_failed",
                path=path,
                status=status,
                retries=retries,
                reason=reason,
                egress_ip=self.egress.ip.value,
            )

    def _attempt(self, path: str) -> HttpResponse:
        return self.transport.get(path, self.egress)
