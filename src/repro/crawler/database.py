"""The crawl database of Fig 3.3: UserInfo, VenueInfo, RecentCheckin.

An in-memory, thread-safe stand-in for the thesis's MySQL server with the
same three tables and the same derived columns: ``RecentCheckins`` on
UserInfo is computed by counting a user's rows in RecentCheckin, and
``TotalMayors`` "by analyzing the MayorID of each venue".  A SQL-``LIKE``
helper reproduces the Fig 3.4 query
``SELECT Longitude, Latitude FROM VenueInfo WHERE Name LIKE "%Starbucks%"``.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.crawler.parser import ParsedUser, ParsedVenue


@dataclass
class UserInfoRow:
    """One row of the UserInfo table."""

    user_id: int
    user_name: Optional[str]
    display_name: str
    home_city: str
    total_checkins: int
    total_badges: int
    points: int
    #: Derived: number of venues whose recent-visitor list contains the user.
    recent_checkins: int = 0
    #: Derived: number of venues whose MayorID is this user.
    total_mayors: int = 0
    #: Friend links scraped off the profile page.
    friend_ids: List[int] = field(default_factory=list)


@dataclass
class VenueInfoRow:
    """One row of the VenueInfo table."""

    venue_id: int
    name: str
    address: str
    city: str
    latitude: float
    longitude: float
    mayor_id: Optional[int]
    checkins_here: int
    unique_visitors: int
    special: Optional[str]
    special_mayor_only: bool


@dataclass(frozen=True)
class RecentCheckinRow:
    """One (user, venue) pair from a venue's "Who's been here" list."""

    user_id: int
    venue_id: int


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE)


class CrawlDatabase:
    """The three-table crawl store with simple query helpers."""

    def __init__(self) -> None:
        self._users: Dict[int, UserInfoRow] = {}
        self._venues: Dict[int, VenueInfoRow] = {}
        self._recent: Set[RecentCheckinRow] = set()
        #: Ordered "Who's been here" lists, newest visitor first, exactly
        #: as rendered on the venue page at the last upsert.  The snapshot
        #: differ uses the ordering to detect revisits.
        self._recent_lists: Dict[int, List[int]] = {}
        self._lock = threading.RLock()

    # Inserts ------------------------------------------------------------

    def upsert_user(self, parsed: ParsedUser) -> UserInfoRow:
        """Insert or refresh a UserInfo row from a parsed page."""
        with self._lock:
            existing = self._users.get(parsed.user_id)
            row = UserInfoRow(
                user_id=parsed.user_id,
                user_name=parsed.username,
                display_name=parsed.display_name,
                home_city=parsed.home_city,
                total_checkins=parsed.total_checkins,
                total_badges=parsed.total_badges,
                points=parsed.points,
                recent_checkins=existing.recent_checkins if existing else 0,
                total_mayors=existing.total_mayors if existing else 0,
                friend_ids=list(parsed.friend_ids),
            )
            self._users[parsed.user_id] = row
            return row

    def upsert_venue(self, parsed: ParsedVenue) -> VenueInfoRow:
        """Insert or refresh a VenueInfo row and its RecentCheckin rows."""
        with self._lock:
            row = VenueInfoRow(
                venue_id=parsed.venue_id,
                name=parsed.name,
                address=parsed.address,
                city=parsed.city,
                latitude=parsed.latitude,
                longitude=parsed.longitude,
                mayor_id=parsed.mayor_id,
                checkins_here=parsed.checkins_here,
                unique_visitors=parsed.unique_visitors,
                special=parsed.special,
                special_mayor_only=parsed.special_mayor_only,
            )
            self._venues[parsed.venue_id] = row
            for user_id in parsed.recent_visitor_ids:
                self._recent.add(
                    RecentCheckinRow(user_id=user_id, venue_id=parsed.venue_id)
                )
            self._recent_lists[parsed.venue_id] = list(
                parsed.recent_visitor_ids
            )
            return row

    # Derived columns -------------------------------------------------------

    def recompute_derived(self) -> None:
        """Fill ``RecentCheckins`` and ``TotalMayors`` on UserInfo.

        Mirrors the thesis: "by counting the number of records for a user,
        we recorded the number of recent check-ins ... by analyzing the
        MayorID of each venue, we calculated how many mayorships each user
        had."
        """
        with self._lock:
            recent_counts: Dict[int, int] = {}
            for row in self._recent:
                recent_counts[row.user_id] = recent_counts.get(row.user_id, 0) + 1
            mayor_counts: Dict[int, int] = {}
            for venue in self._venues.values():
                if venue.mayor_id is not None:
                    mayor_counts[venue.mayor_id] = (
                        mayor_counts.get(venue.mayor_id, 0) + 1
                    )
            for user in self._users.values():
                user.recent_checkins = recent_counts.get(user.user_id, 0)
                user.total_mayors = mayor_counts.get(user.user_id, 0)

    # Queries --------------------------------------------------------------

    def user(self, user_id: int) -> Optional[UserInfoRow]:
        """UserInfo row by ID."""
        with self._lock:
            return self._users.get(user_id)

    def venue(self, venue_id: int) -> Optional[VenueInfoRow]:
        """VenueInfo row by ID."""
        with self._lock:
            return self._venues.get(venue_id)

    def users(self) -> List[UserInfoRow]:
        """Snapshot of all UserInfo rows."""
        with self._lock:
            return list(self._users.values())

    def venues(self) -> List[VenueInfoRow]:
        """Snapshot of all VenueInfo rows."""
        with self._lock:
            return list(self._venues.values())

    def recent_checkins(self) -> List[RecentCheckinRow]:
        """Snapshot of all RecentCheckin rows."""
        with self._lock:
            return list(self._recent)

    def recent_visitor_list(self, venue_id: int) -> List[int]:
        """The venue's ordered recent-visitor list, newest first."""
        with self._lock:
            return list(self._recent_lists.get(venue_id, []))

    def recent_visitor_lists(self) -> Dict[int, List[int]]:
        """Snapshot of all ordered recent-visitor lists."""
        with self._lock:
            return {
                venue_id: list(visitors)
                for venue_id, visitors in self._recent_lists.items()
            }

    def recent_venues_of_user(self, user_id: int) -> List[int]:
        """Venue IDs whose recent-visitor list contains ``user_id``."""
        with self._lock:
            return sorted(
                row.venue_id for row in self._recent if row.user_id == user_id
            )

    def user_count(self) -> int:
        """Rows in UserInfo."""
        with self._lock:
            return len(self._users)

    def venue_count(self) -> int:
        """Rows in VenueInfo."""
        with self._lock:
            return len(self._venues)

    def venues_like(self, pattern: str) -> List[VenueInfoRow]:
        """``SELECT * FROM VenueInfo WHERE Name LIKE <pattern>``."""
        regex = like_to_regex(pattern)
        with self._lock:
            return [
                venue
                for venue in self._venues.values()
                if regex.match(venue.name)
            ]

    def venue_coordinates_like(
        self, pattern: str
    ) -> List[Tuple[float, float]]:
        """The Fig 3.4 query: (longitude, latitude) of name-matched venues."""
        return [
            (venue.longitude, venue.latitude)
            for venue in self.venues_like(pattern)
        ]

    def select_users(
        self, predicate: Callable[[UserInfoRow], bool]
    ) -> List[UserInfoRow]:
        """Filter UserInfo with an arbitrary predicate."""
        with self._lock:
            return [row for row in self._users.values() if predicate(row)]

    def select_venues(
        self, predicate: Callable[[VenueInfoRow], bool]
    ) -> List[VenueInfoRow]:
        """Filter VenueInfo with an arbitrary predicate."""
        with self._lock:
            return [row for row in self._venues.values() if predicate(row)]
