"""The §3.2 profile crawler: frontier, fetchers, parser, crawl database."""

from repro.crawler.crawler import CrawlStats, MultiThreadedCrawler, crawl_full_site
from repro.crawler.database import (
    CrawlDatabase,
    RecentCheckinRow,
    UserInfoRow,
    VenueInfoRow,
    like_to_regex,
)
from repro.crawler.fetcher import PageFetcher
from repro.crawler.frontier import CrawlMode, IdFrontier
from repro.crawler.parser import (
    ParsedUser,
    ParsedVenue,
    parse_user_page,
    parse_venue_page,
)
from repro.crawler.worker import AppendixAController, WorkerPool, WorkerStats

__all__ = [
    "CrawlStats",
    "MultiThreadedCrawler",
    "crawl_full_site",
    "CrawlDatabase",
    "RecentCheckinRow",
    "UserInfoRow",
    "VenueInfoRow",
    "like_to_regex",
    "PageFetcher",
    "CrawlMode",
    "IdFrontier",
    "ParsedUser",
    "ParsedVenue",
    "parse_user_page",
    "parse_venue_page",
    "AppendixAController",
    "WorkerPool",
    "WorkerStats",
]

from repro.crawler.snapshots import (
    CrawlSnapshot,
    ObservedCheckIn,
    SnapshotDiff,
    SnapshotStore,
    diff_snapshots,
)

__all__ += [
    "CrawlSnapshot",
    "ObservedCheckIn",
    "SnapshotDiff",
    "SnapshotStore",
    "diff_snapshots",
]
