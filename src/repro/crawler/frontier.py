"""URL frontier: enumerating the incrementing-ID space (§3.2).

"We discovered that Foursquare uses incrementing numerical IDs to identify
their users and venues. By changing the ID in the URL, we can crawl almost
all of the user and venue profiles."  The frontier hands out IDs to crawl
threads and decides when the dense ID space has been exhausted (a run of
consecutive not-found pages past the highest known ID).
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Optional


class CrawlMode(Enum):
    """What kind of profile a crawl targets (the thesis ran one of each)."""

    USER = "user"
    VENUE = "venue"

    @property
    def path_prefix(self) -> str:
        """URL prefix for this profile kind."""
        return f"/{self.value}"


class IdFrontier:
    """Thread-safe dispenser of profile IDs with end-of-space detection.

    IDs are handed out sequentially from ``start``.  Workers report each
    outcome; once ``miss_threshold`` consecutive IDs past the last hit have
    404'd, the frontier declares the space exhausted and stops dispensing.
    An explicit ``stop_at`` cap supports range-partitioned crawls (the
    thesis split the space across three machines).
    """

    def __init__(
        self,
        mode: CrawlMode,
        start: int = 1,
        stop_at: Optional[int] = None,
        miss_threshold: int = 200,
    ) -> None:
        self.mode = mode
        self._next = start
        self._stop_at = stop_at
        self._miss_threshold = miss_threshold
        self._highest_hit = start - 1
        self._consecutive_misses_past_hit = 0
        self._exhausted = False
        self._lock = threading.Lock()

    def next_id(self) -> Optional[int]:
        """The next ID to crawl, or None when the frontier is done."""
        with self._lock:
            if self._exhausted:
                return None
            if self._stop_at is not None and self._next > self._stop_at:
                self._exhausted = True
                return None
            value = self._next
            self._next += 1
            return value

    def url_for(self, profile_id: int) -> str:
        """The profile URL for an ID."""
        return f"{self.mode.path_prefix}/{profile_id}"

    def report_hit(self, profile_id: int) -> None:
        """Record that ``profile_id`` resolved to a real profile."""
        with self._lock:
            if profile_id > self._highest_hit:
                self._highest_hit = profile_id
                self._consecutive_misses_past_hit = 0

    def report_miss(self, profile_id: int) -> None:
        """Record a 404; a long run past the last hit ends the crawl."""
        with self._lock:
            if profile_id > self._highest_hit:
                self._consecutive_misses_past_hit += 1
                if self._consecutive_misses_past_hit >= self._miss_threshold:
                    self._exhausted = True

    @property
    def exhausted(self) -> bool:
        """Whether the frontier has stopped dispensing."""
        with self._lock:
            return self._exhausted

    @property
    def highest_hit(self) -> int:
        """Largest ID that resolved to a profile so far."""
        with self._lock:
            return self._highest_hit
