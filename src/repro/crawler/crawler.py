"""The multi-threaded profile crawler (§3.2, Fig 3.3).

Wires frontier → fetcher threads → regex parser → crawl database.  The
thesis ran user crawls at 14-16 threads per machine across 3 machines
(~100k users/hour) and venue crawls at 5-6 threads per machine (~50k
venues/hour); :class:`MultiThreadedCrawler` reproduces the architecture
with one egress per simulated machine and a configurable thread count, and
reports throughput so the E2 bench can reproduce the thread-scaling shape.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.crawler.database import CrawlDatabase
from repro.crawler.fetcher import PageFetcher
from repro.crawler.frontier import CrawlMode, IdFrontier
from repro.crawler.parser import parse_user_page, parse_venue_page
from repro.errors import CrawlError, PermanentError
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.retry import BackoffPolicy
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.http import HttpTransport
from repro.simnet.network import Egress


@dataclass
class CrawlStats:
    """Outcome and throughput of one crawl run."""

    mode: CrawlMode
    pages_fetched: int = 0
    hits: int = 0
    misses: int = 0
    failures: int = 0
    #: Failures whose error was transient (retryable) — a subset of
    #: ``failures``; the remainder were permanent refusals or parse bugs.
    transient_failures: int = 0
    wall_seconds: float = 0.0
    threads: int = 0
    machines: int = 0

    @property
    def pages_per_second(self) -> float:
        """Fetch throughput over the run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.pages_fetched / self.wall_seconds

    @property
    def profiles_per_hour(self) -> float:
        """The thesis's headline unit (users/hour or venues/hour)."""
        return self.pages_per_second * 3_600.0


class MultiThreadedCrawler:
    """Crawls one profile kind (users or venues) to exhaustion."""

    def __init__(
        self,
        transport: HttpTransport,
        database: CrawlDatabase,
        mode: CrawlMode,
        machine_egresses: List[Egress],
        threads_per_machine: int = 14,
        stop_at: Optional[int] = None,
        abort_after_failures: int = 500,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        faults: Optional[FaultInjector] = None,
        breaker_factory: Optional[Callable[[str], CircuitBreaker]] = None,
        backoff: Optional[BackoffPolicy] = None,
        sleep: Optional[Callable[[float], object]] = None,
        fetch_max_retries: int = 2,
    ) -> None:
        if not machine_egresses:
            raise CrawlError("need at least one crawl machine egress")
        if threads_per_machine < 1:
            raise CrawlError(
                f"threads_per_machine must be >= 1: {threads_per_machine}"
            )
        self.transport = transport
        self.database = database
        self.mode = mode
        self.frontier = IdFrontier(mode, stop_at=stop_at)
        self.machine_egresses = list(machine_egresses)
        self.threads_per_machine = threads_per_machine
        self.abort_after_failures = abort_after_failures
        self._lock = threading.Lock()
        self._stats = CrawlStats(
            mode=mode,
            threads=threads_per_machine * len(machine_egresses),
            machines=len(machine_egresses),
        )
        self._consecutive_failures = 0
        self._aborted = False
        self._metrics = metrics
        self._log = log
        #: Optional resilience wiring, forwarded to every fetcher: the
        #: fault injector (``crawler.fetch`` point), a per-machine
        #: circuit breaker (``breaker_factory(name)`` is called once per
        #: egress; breakers land in :attr:`breakers`), and a backoff
        #: policy paced through ``sleep`` (pass ``clock.advance`` for
        #: simulated time).
        self.faults = faults
        self.breaker_factory = breaker_factory
        self.backoff = backoff
        self._sleep = sleep
        self.fetch_max_retries = fetch_max_retries
        self.breakers: List[CircuitBreaker] = []
        if metrics is not None:
            self._pages_metric = metrics.counter(
                "repro_crawler_pages_fetched_total",
                "Pages the crawler attempted, by crawl mode and outcome.",
                ("mode", "outcome"),
            )
            self._parse_failures_metric = metrics.counter(
                "repro_crawler_parse_failures_total",
                "Pages fetched but unparseable, by crawl mode.",
                ("mode",),
            ).labels(mode.value)
            self._thread_pages_metric = metrics.counter(
                "repro_crawler_thread_pages_total",
                "Pages attempted per crawl thread (machine.thread label).",
                ("mode", "thread"),
            )
            self._throughput_metric = metrics.gauge(
                "repro_crawler_pages_per_second",
                "Fetch throughput of the last completed crawl, by mode.",
                ("mode",),
            ).labels(mode.value)
        else:
            self._pages_metric = None
            self._parse_failures_metric = None
            self._thread_pages_metric = None
            self._throughput_metric = None

    @property
    def aborted(self) -> bool:
        """True when the crawl gave up (blocked / persistent failures)."""
        return self._aborted

    def run(self) -> CrawlStats:
        """Crawl until the ID space is exhausted; returns throughput stats."""
        started = time.perf_counter()
        threads: List[threading.Thread] = []
        for machine_index, egress in enumerate(self.machine_egresses):
            breaker: Optional[CircuitBreaker] = None
            if self.breaker_factory is not None:
                breaker = self.breaker_factory(f"egress-m{machine_index}")
                self.breakers.append(breaker)
            fetcher = PageFetcher(
                self.transport,
                egress,
                max_retries=self.fetch_max_retries,
                metrics=self._metrics,
                log=self._log,
                faults=self.faults,
                breaker=breaker,
                backoff=self.backoff,
                sleep=self._sleep,
            )
            for thread_index in range(self.threads_per_machine):
                thread = threading.Thread(
                    target=self._worker,
                    args=(fetcher, f"m{machine_index}.t{thread_index}"),
                    daemon=True,
                )
                threads.append(thread)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self._stats.wall_seconds = time.perf_counter() - started
        if self._throughput_metric is not None:
            self._throughput_metric.set(self._stats.pages_per_second)
        return self._stats

    def _worker(self, fetcher: PageFetcher, thread_label: str = "m0.t0") -> None:
        mode = self.mode.value
        thread_pages = (
            self._thread_pages_metric.labels(mode, thread_label)
            if self._thread_pages_metric is not None
            else None
        )
        while True:
            if self._aborted:
                return
            profile_id = self.frontier.next_id()
            if profile_id is None:
                return
            path = self.frontier.url_for(profile_id)
            if thread_pages is not None:
                thread_pages.inc()
            try:
                body = fetcher.fetch(path)
            except CrawlError as error:
                self._record_failure(
                    transient=not isinstance(error, PermanentError)
                )
                continue
            if body is None:
                self.frontier.report_miss(profile_id)
                with self._lock:
                    self._stats.pages_fetched += 1
                    self._stats.misses += 1
                if self._pages_metric is not None:
                    self._pages_metric.labels(mode, "miss").inc()
                continue
            try:
                self._store(body)
            except CrawlError:
                if self._parse_failures_metric is not None:
                    self._parse_failures_metric.inc()
                self._record_failure()
                continue
            self.frontier.report_hit(profile_id)
            with self._lock:
                self._stats.pages_fetched += 1
                self._stats.hits += 1
                self._consecutive_failures = 0
            if self._pages_metric is not None:
                self._pages_metric.labels(mode, "hit").inc()

    def _store(self, body: str) -> None:
        if self.mode is CrawlMode.USER:
            self.database.upsert_user(parse_user_page(body))
        else:
            self.database.upsert_venue(parse_venue_page(body))

    def _record_failure(self, transient: bool = False) -> None:
        with self._lock:
            self._stats.pages_fetched += 1
            self._stats.failures += 1
            if transient:
                self._stats.transient_failures += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.abort_after_failures:
                # The site is refusing us (login wall, IP block, sustained
                # rate limiting): a real crawler would give up too.
                self._aborted = True
        if self._pages_metric is not None:
            self._pages_metric.labels(self.mode.value, "failure").inc()


def crawl_full_site(
    transport: HttpTransport,
    machine_egresses: List[Egress],
    user_threads_per_machine: int = 14,
    venue_threads_per_machine: int = 5,
    database: Optional[CrawlDatabase] = None,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
    faults: Optional[FaultInjector] = None,
    breaker_factory: Optional[Callable[[str], CircuitBreaker]] = None,
    backoff: Optional[BackoffPolicy] = None,
    sleep: Optional[Callable[[float], object]] = None,
) -> tuple:
    """Run the thesis's full two-pass crawl: all users, then all venues.

    Returns ``(database, user_stats, venue_stats)`` with the derived
    UserInfo columns (RecentCheckins, TotalMayors) already recomputed.
    ``metrics`` (optional) instruments both passes and their fetchers;
    ``faults``/``breaker_factory``/``backoff``/``sleep`` (optional) give
    both passes the resilience wiring :class:`MultiThreadedCrawler`
    documents.
    """
    database = database or CrawlDatabase()
    user_crawl = MultiThreadedCrawler(
        transport,
        database,
        CrawlMode.USER,
        machine_egresses,
        threads_per_machine=user_threads_per_machine,
        metrics=metrics,
        log=log,
        faults=faults,
        breaker_factory=breaker_factory,
        backoff=backoff,
        sleep=sleep,
    )
    user_stats = user_crawl.run()
    venue_crawl = MultiThreadedCrawler(
        transport,
        database,
        CrawlMode.VENUE,
        machine_egresses,
        threads_per_machine=venue_threads_per_machine,
        metrics=metrics,
        log=log,
        faults=faults,
        breaker_factory=breaker_factory,
        backoff=backoff,
        sleep=sleep,
    )
    venue_stats = venue_crawl.run()
    database.recompute_derived()
    return database, user_stats, venue_stats
