"""Multi-threading control, ported from the thesis's Appendix A.

The thesis prints its C# thread-management code: a mutex-guarded thread
counter, a user-adjustable desired thread count, ``StartThread`` launching
one crawling thread per URL until the desired count is reached, and a
``ThreadTerminated`` callback that decrements the counter, records
processed/failed totals, and tops the pool back up.
:class:`AppendixAController` is a faithful Python port of that design —
one short-lived thread per page.

:class:`WorkerPool` is the practical equivalent used by the throughput
experiments: the same concurrency semantics with long-lived workers, which
avoids per-page thread-spawn overhead.  Both are exercised by tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import CrawlError
from repro.obs.metrics import MetricsRegistry

#: A unit of work: returns True on success, False on failure, and None
#: when there is no work left (the frontier is exhausted).
WorkItem = Callable[[], Optional[bool]]


@dataclass
class WorkerStats:
    """Counters shared by both controller styles."""

    processed: int = 0
    failed: int = 0


def _worker_items_counter(metrics: Optional[MetricsRegistry]):
    """The ``repro_crawler_worker_items_total{outcome}`` family, or None."""
    if metrics is None:
        return None
    return metrics.counter(
        "repro_crawler_worker_items_total",
        "Work items completed by pool/controller threads, by outcome.",
        ("outcome",),
    )


class AppendixAController:
    """The thesis's thread-per-page launcher, faithfully ported.

    Mirrors the printed C# member for member: ``m_mutex`` is
    :attr:`_mutex`, ``m_threadCount`` is :attr:`_thread_count`,
    ``m_bRunning`` is :attr:`_running`, and ``numericUpDown1.Value`` (the
    GUI thread-count spinner) is :attr:`desired_threads`.
    """

    def __init__(
        self,
        work: WorkItem,
        desired_threads: int = 14,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if desired_threads < 1:
            raise CrawlError(f"need at least one thread: {desired_threads}")
        self._work = work
        self.desired_threads = desired_threads
        self._mutex = threading.Lock()
        self._thread_count = 0
        self._running = False
        self.stats = WorkerStats()
        self._items_metric = _worker_items_counter(metrics)
        self._all_done = threading.Event()

    def start(self) -> None:
        """Begin crawling (returns immediately; see :meth:`join`)."""
        with self._mutex:
            if self._running:
                raise CrawlError("controller already running")
            self._running = True
        self._all_done.clear()
        self._start_threads()

    def stop(self) -> None:
        """Ask the pool to stop launching new threads."""
        with self._mutex:
            self._running = False

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every thread to finish; True if fully drained."""
        return self._all_done.wait(timeout)

    @property
    def active_threads(self) -> int:
        """Currently live crawl threads."""
        with self._mutex:
            return self._thread_count

    # The Appendix-A pair -----------------------------------------------

    def _start_threads(self) -> None:
        """``StartThread``: launch until the desired count is reached."""
        while True:
            with self._mutex:
                if not self._running or self._thread_count >= self.desired_threads:
                    break
                self._thread_count += 1
            thread = threading.Thread(target=self._run_one, daemon=True)
            thread.start()

    def _run_one(self) -> None:
        """One thread's lifetime: crawl a single URL, then terminate."""
        try:
            outcome = self._work()
        except Exception:
            outcome = False
        self._thread_terminated(outcome)

    def _thread_terminated(self, outcome: Optional[bool]) -> None:
        """``ThreadTerminated``: bookkeeping, then top the pool back up."""
        relaunch = False
        with self._mutex:
            self._thread_count -= 1
            if outcome is None:
                # Frontier exhausted: stop launching new threads.
                self._running = False
            else:
                self.stats.processed += 1
                if not outcome:
                    self.stats.failed += 1
                if self._items_metric is not None:
                    self._items_metric.labels(
                        "ok" if outcome else "failed"
                    ).inc()
            relaunch = self._running
            if not self._running and self._thread_count == 0:
                self._all_done.set()
        if relaunch:
            self._start_threads()


class WorkerPool:
    """Long-lived worker threads draining the same :data:`WorkItem`."""

    def __init__(
        self,
        work: WorkItem,
        threads: int = 14,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if threads < 1:
            raise CrawlError(f"need at least one thread: {threads}")
        self._work = work
        self.threads = threads
        self.stats = WorkerStats()
        self._items_metric = _worker_items_counter(metrics)
        self._mutex = threading.Lock()
        self._pool: list = []

    def run(self) -> WorkerStats:
        """Run until the work source is exhausted; blocks until done."""
        self._pool = [
            threading.Thread(target=self._worker, daemon=True)
            for _ in range(self.threads)
        ]
        for thread in self._pool:
            thread.start()
        for thread in self._pool:
            thread.join()
        return self.stats

    def _worker(self) -> None:
        while True:
            try:
                outcome = self._work()
            except Exception:
                outcome = False
            if outcome is None:
                return
            with self._mutex:
                self.stats.processed += 1
                if not outcome:
                    self.stats.failed += 1
            if self._items_metric is not None:
                self._items_metric.labels("ok" if outcome else "failed").inc()
