"""E25 (extension) — store capacity: sharded group-commit vs one big lock.

The paper crawled 1.89 M users and 5.6 M venues through Foursquare's
production write path; repro's single-lock :class:`DataStore` serialises
every committed check-in behind one RLock, one sequencer hit, and one
histogram observation.  E25 measures what the PR's two levers buy at
8 concurrent writers:

* **N shard locks** (``ShardedDataStore``) — commits for different
  users stop queueing on one lock;
* **group commit** (``add_checkins_committed``) — one lock acquisition
  and one contiguous seq block per shard flush instead of per check-in.

Acceptance bars (asserted):

1. **Throughput**: sustained check-ins/s in ``sharded-batch`` mode is
   ``>= REPRO_E25_MIN_SPEEDUP`` (default 3.0) times the single-lock
   per-check-in baseline, same corpus, same 8-writer schedule.
2. **Seq contract**: every mode ends with ``watermark == total
   check-ins`` — dense allocation, no burned slots, regardless of
   store layout or batching.

Reported (not asserted): p50/p99 per-commit-call latency for every
mode, the per-check-in p99 quotient for batched modes, and a
full-corpus phase — the store populated to the paper's 1.89 M users /
5.6 M venues — reporting populate time and p99 commit latency at scale.

Each mode runs ``REPRO_E25_ROUNDS`` times (default 3) and reports the
best round: on a shared single-core CI machine scheduler noise is
±20 %, and best-of-N is the standard way to ask "what does this code
do when the machine lets it".

Environment knobs (CI smoke mode shrinks all of these):

* ``REPRO_E25_USERS`` / ``REPRO_E25_VENUES`` — comparison corpus
  (default 18,900 / 56,000 — 1 % of the paper's).
* ``REPRO_E25_WRITERS`` — writer threads (default 8).
* ``REPRO_E25_CHECKINS_PER_WRITER`` — schedule length (default 6,000).
* ``REPRO_E25_BATCH`` — group-commit batch size (default 256, the
  measured sweet spot).
* ``REPRO_E25_SHARDS`` — shard count (default 4).
* ``REPRO_E25_ROUNDS`` — rounds per mode (default 3).
* ``REPRO_E25_MIN_SPEEDUP`` — bar 1's ratio (default 3.0).
* ``REPRO_E25_FULL_USERS`` / ``REPRO_E25_FULL_VENUES`` /
  ``REPRO_E25_FULL_CHECKINS_PER_WRITER`` — the full-scale phase
  (defaults 1,890,000 / 5,600,000 / 4,000); set the first to 0 to skip
  the phase entirely.
"""

import dataclasses
import os

from repro.workload.capacity import (
    FULL_SCALE_USERS,
    FULL_SCALE_VENUES,
    MODES,
    CapacityConfig,
    build_corpus,
    build_store,
    run_capacity,
    speedup,
)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


USERS = _env_int("REPRO_E25_USERS", 18_900)
VENUES = _env_int("REPRO_E25_VENUES", 56_000)
WRITERS = _env_int("REPRO_E25_WRITERS", 8)
CHECKINS = _env_int("REPRO_E25_CHECKINS_PER_WRITER", 6_000)
BATCH = _env_int("REPRO_E25_BATCH", 256)
SHARDS = _env_int("REPRO_E25_SHARDS", 4)
ROUNDS = _env_int("REPRO_E25_ROUNDS", 3)
MIN_SPEEDUP = float(os.environ.get("REPRO_E25_MIN_SPEEDUP", "3.0"))
FULL_USERS = _env_int("REPRO_E25_FULL_USERS", FULL_SCALE_USERS)
FULL_VENUES = _env_int("REPRO_E25_FULL_VENUES", FULL_SCALE_VENUES)
FULL_CHECKINS = _env_int("REPRO_E25_FULL_CHECKINS_PER_WRITER", 4_000)


def _fmt(result) -> str:
    return (
        f"{result.mode:<13s} {result.store_kind:<16s} "
        f"{result.checkins_per_s:>9,.0f} ci/s  "
        f"p50 {result.p50_call_s * 1e6:>7.1f} us  "
        f"p99 {result.p99_call_s * 1e6:>8.1f} us  "
        f"p99/ci {result.per_checkin_p99_s * 1e6:>7.1f} us"
    )


def test_e25_capacity(report_out, benchmark):
    config = CapacityConfig(
        users=USERS,
        venues=VENUES,
        writers=WRITERS,
        checkins_per_writer=CHECKINS,
        batch_size=BATCH,
        store_shards=SHARDS,
    )
    corpus = build_corpus(config)
    rows = [
        "E25 — store capacity: sharded group-commit vs single-lock store",
        (
            f"corpus {config.users:,} users / {config.venues:,} venues; "
            f"{config.writers} writers x {config.checkins_per_writer:,} "
            f"check-ins; batch={config.batch_size}; "
            f"shards={config.store_shards}; best of {ROUNDS} rounds"
        ),
        "",
    ]

    # Phase 1: the four-mode comparison, best-of-ROUNDS each ----------
    best = {}
    for mode in MODES:
        for round_index in range(ROUNDS):
            if mode == "sharded-batch" and round_index == 0:
                # One round under pytest-benchmark for its timing table.
                result = benchmark.pedantic(
                    lambda: run_capacity(config, mode, corpus=corpus),
                    rounds=1,
                    iterations=1,
                )
            else:
                result = run_capacity(config, mode, corpus=corpus)
            # Bar 2: dense seq allocation survives every layout.
            assert result.watermark == result.total_checkins, (
                f"{mode}: watermark {result.watermark} != "
                f"{result.total_checkins} committed check-ins"
            )
            kept = best.get(mode)
            if kept is None or result.checkins_per_s > kept.checkins_per_s:
                best[mode] = result
    for mode in MODES:
        rows.append(_fmt(best[mode]))

    # Bar 1: the headline ratio.
    ratio = speedup(best)
    rows.append("")
    rows.append(
        f"speedup (sharded-batch / single): {ratio:.2f}x "
        f"(bar: >= {MIN_SPEEDUP:.1f}x)"
    )
    assert ratio >= MIN_SPEEDUP, (
        f"sharded-batch is {ratio:.2f}x the single-lock baseline "
        f"({best['sharded-batch'].checkins_per_s:,.0f} vs "
        f"{best['single'].checkins_per_s:,.0f} ci/s); bar is "
        f"{MIN_SPEEDUP:.1f}x"
    )

    # Phase 2: p99 commit latency at the paper's corpus scale ---------
    summary = {
        "users": config.users,
        "venues": config.venues,
        "writers": config.writers,
        "batch_size": config.batch_size,
        "shards": config.store_shards,
        "rounds": ROUNDS,
        "speedup": round(ratio, 2),
        "min_speedup_bar": MIN_SPEEDUP,
        "single_checkins_per_s": round(best["single"].checkins_per_s),
        "single_batch_checkins_per_s": round(
            best["single-batch"].checkins_per_s
        ),
        "sharded_checkins_per_s": round(best["sharded"].checkins_per_s),
        "sharded_batch_checkins_per_s": round(
            best["sharded-batch"].checkins_per_s
        ),
        "sharded_batch_p99_call_us": round(
            best["sharded-batch"].p99_call_s * 1e6, 1
        ),
    }
    if FULL_USERS > 0:
        full_config = dataclasses.replace(
            config,
            users=FULL_USERS,
            venues=FULL_VENUES,
            checkins_per_writer=FULL_CHECKINS,
        )
        users, venues = build_corpus(full_config)
        store, populate_seconds = build_store(
            full_config, "sharded-batch", users, venues
        )
        del users, venues
        full = run_capacity(
            full_config,
            "sharded-batch",
            store=store,
            populate_seconds=populate_seconds,
        )
        assert full.watermark == full.total_checkins
        rows.append("")
        rows.append(
            f"full-scale phase: {full_config.users:,} users / "
            f"{full_config.venues:,} venues "
            f"(populate {full.populate_seconds:.1f}s)"
        )
        rows.append(_fmt(full))
        rows.append(
            f"p99 commit latency at paper scale: "
            f"{full.p99_call_s * 1e3:.2f} ms per {full.batch_size}-batch "
            f"call ({full.per_checkin_p99_s * 1e6:.1f} us per check-in), "
            f"{full.checkins_per_s:,.0f} ci/s sustained"
        )
        summary.update(
            {
                "full_users": full_config.users,
                "full_venues": full_config.venues,
                "full_populate_seconds": round(full.populate_seconds, 1),
                "full_sharded_batch_checkins_per_s": round(
                    full.checkins_per_s
                ),
                "full_p99_call_ms": round(full.p99_call_s * 1e3, 3),
                "full_p99_per_checkin_us": round(
                    full.per_checkin_p99_s * 1e6, 1
                ),
            }
        )

    report_out("E25_capacity", rows, summary=summary)
