"""E13 (extension) — §6.2.1: privacy leakage from repeated crawling.

"If we crawl the venues daily, then we will be able to determine how
frequently a user checks into a venue ... we built a personal location
history for each user."  Measures the exposure on a living world crawled
daily for a week, and how completely the §5.2 hashing defense shuts it
down.
"""

import pytest

from repro.analysis.privacy import (
    build_timelines,
    friendship_signal,
    infer_home,
    privacy_exposure_report,
)
from repro.crawler.snapshots import SnapshotStore
from repro.defense.hashing import hashed_visitor_obfuscator
from repro.geo.distance import haversine_m
from repro.simnet.clock import SECONDS_PER_DAY
from repro.workload import (
    BehaviorGenerator,
    EventReplayer,
    build_web_stack,
    build_world,
)

CRAWL_DAYS = 7


def run_surveillance(world, stack):
    """Crawl daily for a week while organic users keep living."""
    service = world.service
    store = SnapshotStore(
        stack.transport,
        [stack.network.create_egress() for _ in range(2)],
        service.clock,
    )
    behavior = BehaviorGenerator(
        world.venues, horizon_days=1.0, seed=991
    )
    replayer = EventReplayer(service)
    active = [
        spec
        for spec in world.population.specs
        if spec.target_checkins >= 20
    ][:120]
    store.take_snapshot()
    for day in range(CRAWL_DAYS):
        day_start = service.clock.now()
        events = []
        for spec in active:
            # A few check-ins per user per surveilled day.
            for event in behavior.events_for(spec)[:3]:
                events.append(
                    type(event)(
                        timestamp=day_start + (event.timestamp % SECONDS_PER_DAY),
                        user_id=event.user_id,
                        venue_id=event.venue_id,
                    )
                )
        replayer.replay(events)
        if service.clock.now() < day_start + SECONDS_PER_DAY:
            service.clock.advance_to(day_start + SECONDS_PER_DAY)
        store.take_snapshot()
    return store


def test_e13_privacy_exposure(report_out, benchmark):
    def surveil():
        world = build_world(scale=0.001, seed=88)
        stack = build_web_stack(world, seed=89)
        store = run_surveillance(world, stack)
        diffs = store.diffs()
        database = store.latest().database
        report = privacy_exposure_report(diffs, database)
        timelines = build_timelines(diffs, database)
        signal = friendship_signal(diffs, database, min_occurrences=2)
        return world, report, timelines, signal

    world, exposure, timelines, signal = benchmark.pedantic(
        surveil, rounds=1, iterations=1
    )
    rows = [
        f"daily crawls over {CRAWL_DAYS} days:",
        f"  users with reconstructed timelines: {exposure.users_with_timelines}",
        f"  total time-bounded sightings: {exposure.total_sightings}",
        f"  median sighting time bound: "
        f"{exposure.median_time_bound_s / 3_600.0:.0f} h (one crawl period)",
        f"  home locations inferred: {exposure.homes_inferred} "
        f"({exposure.high_confidence_homes} high-confidence)",
        f"  repeatedly co-located user pairs: {exposure.co_located_pairs}",
    ]

    # Validate home inference against ground-truth home cities.
    spec_by_id = {spec.user_id: spec for spec in world.population.specs}
    correct = total = 0
    for user_id, timeline in timelines.items():
        spec = spec_by_id.get(user_id)
        if spec is None or timeline.sightings < 3:
            continue
        inference = infer_home(timeline)
        if inference.home_center is None:
            continue
        total += 1
        if haversine_m(inference.home_center, spec.home_city.center) < 60_000.0:
            correct += 1
    if total:
        rows.append(
            f"  home inference accuracy vs ground truth: {correct}/{total} "
            f"({correct / total:.0%})"
        )
    rows.append(
        f"  co-located pairs that are (publicly listed) friends: "
        f"{signal.co_located_friend_pairs}/{signal.co_located_pairs} "
        f"({signal.co_located_friend_rate:.0%}; baseline friendship rate "
        f"{signal.baseline_friend_rate:.4%}, lift {signal.lift:.0f}x)"
    )
    report_out("E13_privacy", rows)
    assert exposure.users_with_timelines >= 50
    assert exposure.median_time_bound_s == pytest.approx(SECONDS_PER_DAY)
    assert total > 10 and correct / total > 0.8


def test_e13_hashing_kills_the_leak(report_out, benchmark):
    def surveil_hashed():
        world = build_world(scale=0.001, seed=88)
        stack = build_web_stack(
            world,
            seed=90,
            visitor_obfuscator=hashed_visitor_obfuscator(b"rotate-me"),
        )
        store = run_surveillance(world, stack)
        return privacy_exposure_report(
            store.diffs(), store.latest().database
        )

    exposure = benchmark.pedantic(surveil_hashed, rounds=1, iterations=1)
    rows = [
        "same week, with §5.2 keyed visitor-ID hashing deployed:",
        f"  users with reconstructed timelines: {exposure.users_with_timelines}",
        f"  total sightings: {exposure.total_sightings}",
        f"  homes inferred: {exposure.homes_inferred}",
        f"  co-located pairs: {exposure.co_located_pairs}",
        "(the recent-visitor join is the entire leak; hashing the IDs "
        "reduces the reconstruction to nothing while the page still "
        "shows that visitors exist)",
    ]
    report_out("E13_privacy_hashed", rows)
    assert exposure.users_with_timelines == 0
    assert exposure.total_sightings == 0
