"""E3 — §3.3 / Fig 3.4: the Starbucks map from crawled data.

``SELECT Longitude, Latitude FROM VenueInfo WHERE Name LIKE "%Starbucks%"``
over the crawl database; the scatter "forms the shape of the United States
territory".
"""

from conftest import ascii_scatter

from repro.geo.coordinates import GeoPoint
from repro.geo.regions import contiguous_us_bbox, in_contiguous_us


def test_e3_starbucks_scatter(bench_crawl, report_out, benchmark):
    database, _, _ = bench_crawl

    def query():
        return database.venue_coordinates_like("%Starbucks%")

    coordinates = benchmark(query)
    assert len(coordinates) > 30

    us_points = [
        (lon, lat)
        for lon, lat in coordinates
        if in_contiguous_us(GeoPoint(lat, lon))
    ]
    box = contiguous_us_bbox()
    rows = [f"Fig 3.4 — {len(coordinates)} Starbucks branches crawled:"]
    rows += ascii_scatter(
        us_points, bbox=(box.south, box.west, box.north, box.east)
    )
    # Shape checks: branches span the continent, coast to coast.
    lons = [lon for lon, _ in us_points]
    lats = [lat for _, lat in us_points]
    rows.append(
        f"coverage: lon span {max(lons) - min(lons):.1f} deg, "
        f"lat span {max(lats) - min(lats):.1f} deg, "
        f"{len(us_points)}/{len(coordinates)} in the contiguous US"
    )
    report_out("E3_starbucks_map", rows)
    assert max(lons) - min(lons) > 40.0  # coast to coast
    assert max(lats) - min(lats) > 15.0
    assert len(us_points) / len(coordinates) > 0.85
