"""E16 (extension) — reproducing the thesis's reverse-engineering itself.

§2.3's rules were learned "through experiments"; the RuleProber automates
that methodology.  The bench probes services configured with different
(hidden) thresholds and reports discovered vs. actual, plus the number of
disposable probe accounts each discovery costs.
"""

import pytest

from repro.attack.probing import RuleProber
from repro.lbsn.cheater_code import CheaterCode, CheaterCodeConfig
from repro.lbsn.service import LbsnService


def probe_configuration(hold_s, speed_mps):
    service = LbsnService()
    service.cheater_code = CheaterCode(
        CheaterCodeConfig(
            same_venue_interval_s=hold_s, max_speed_mps=speed_mps
        )
    )
    prober = RuleProber(service)
    envelope = prober.probe_all()
    probes_used = service.store.user_count()
    return envelope, probes_used


def test_e16_probe_accuracy(report_out, benchmark):
    configurations = [
        ("Foursquare-like", 3_600.0, 67.0),
        ("strict", 7_200.0, 20.0),
        ("lenient", 900.0, 300.0),
    ]

    def sweep():
        return [
            (label, hold, speed, *probe_configuration(hold, speed))
            for label, hold, speed in configurations
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        "service          actual hold  probed hold  actual speed  "
        "probed speed  probe accounts",
    ]
    for label, hold, speed, envelope, probes in results:
        rows.append(
            f"{label:<16} {hold:>11.0f}  {envelope.same_venue_hold_s:>11.0f}"
            f"  {speed:>12.0f}  {envelope.safe_speed_mps:>12.1f}"
            f"  {probes:>14}"
        )
    rows.append(
        "(each hidden threshold recovered within the probe resolution "
        "using a few dozen disposable accounts — the §2.3 experiments, "
        "automated)"
    )
    report_out("E16_rule_probing", rows)

    for label, hold, speed, envelope, probes in results:
        assert hold <= envelope.same_venue_hold_s <= hold * 1.1, label
        assert speed * 0.85 <= envelope.safe_speed_mps <= speed, label
        assert probes < 200, label
