"""E20 (extension) — the observability tax on the check-in hot path.

The :mod:`repro.obs` layer instruments every stage of the check-in
pipeline: the ``checkin.commit`` tracing span, outcome/denial counters,
store entity gauges, and lock-hold histograms.  All of it is wired through
optional constructor injection, so a service built *without* a registry
pays nothing but a few ``is None`` checks.

This experiment quantifies the cost when the registry *is* attached: the
same deterministic check-in workload runs against a bare
:class:`LbsnService` and an instrumented one, interleaved round for round
so thermal/background drift hits both sides equally.  The acceptance bar
is **< 5% throughput overhead** (best-of-rounds on both sides).

Environment knobs (CI smoke mode uses the first and last):

* ``REPRO_E20_CHECKINS`` — check-ins per round (default 4000).
* ``REPRO_E20_ROUNDS`` — interleaved rounds per side (default 5).
* ``REPRO_E20_MAX_OVERHEAD`` — acceptance bar (default 0.05).  Shared CI
  runners are noisy; the smoke job loosens this rather than asserting a
  tight bound on unreliable hardware.
"""

import gc
import os
import statistics
import time

from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.obs import MetricsRegistry

CHECKINS = int(os.environ.get("REPRO_E20_CHECKINS", "4000"))
ROUNDS = int(os.environ.get("REPRO_E20_ROUNDS", "5"))
MAX_OVERHEAD = float(os.environ.get("REPRO_E20_MAX_OVERHEAD", "0.05"))

USERS = 10
VENUES_PER_USER = 3  # rotated so the same-venue gap beats the 1-hour rule
BASE_TS = 1_280_000_000.0  # 2010-07, the thesis's crawl summer
CHECKIN_SPACING_S = 1_800.0  # one check-in per user per half hour


def _build_service(metrics):
    """A tiny city: three venues per user, all within a few hundred meters.

    The per-user venues sit ~330 m apart — inside GPS-verification range,
    below the speed rule's 2-mile floor, and rotated on a 90-minute cycle
    so every attempt lands on the *valid* (reward) path: the expensive one,
    which is exactly where observability overhead must stay invisible.
    """
    service = LbsnService(metrics=metrics)
    venues = []
    for i in range(USERS):
        service.register_user(f"bench-user-{i}")
        cluster = []
        for j in range(VENUES_PER_USER):
            cluster.append(
                service.create_venue(
                    f"bench-venue-{i}-{j}",
                    GeoPoint(40.0 + i * 0.05 + j * 0.003, -96.0),
                )
            )
        venues.append(cluster)
    return service, venues


def _run_checkins(service, venues) -> float:
    """Drive the deterministic workload; returns the check-in wall time.

    The collector is paused for the timed region (after a full collect) so
    GC pauses landing on one side or the other don't masquerade as
    observability overhead; both sides are measured identically.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for i in range(CHECKINS):
            user_index = i % USERS
            round_index = i // USERS
            venue = venues[user_index][round_index % VENUES_PER_USER]
            service.check_in(
                user_id=user_index + 1,
                venue_id=venue.venue_id,
                reported_location=venue.location,
                timestamp=BASE_TS
                + round_index * CHECKIN_SPACING_S
                + user_index,
            )
        return time.perf_counter() - start
    finally:
        gc.enable()


def test_e20_obs_overhead(report_out, benchmark):
    """Instrumented check-in throughput within 5% of the bare service.

    Methodology: ``ROUNDS`` back-to-back (bare, instrumented) pairs; the
    overhead is the **median of the per-pair time ratios**.  Pairing
    adjacent runs cancels slow machine drift, and the median discards the
    rounds where a scheduler hiccup landed on one side — ``min(bare) vs
    min(instr)`` would compare two different noise draws instead.
    """

    def compare():
        pair_ratios, bare_times, instr_times = [], [], []
        registry = None
        tracer = None
        for _ in range(ROUNDS):
            service, venues = _build_service(metrics=None)
            bare_s = _run_checkins(service, venues)
            registry = MetricsRegistry()
            service, venues = _build_service(metrics=registry)
            instr_s = _run_checkins(service, venues)
            tracer = service.tracer
            bare_times.append(bare_s)
            instr_times.append(instr_s)
            pair_ratios.append(instr_s / bare_s)
        return pair_ratios, bare_times, instr_times, registry, tracer

    pair_ratios, bare_times, instr_times, registry, tracer = (
        benchmark.pedantic(compare, rounds=1, iterations=1)
    )
    bare_rate = CHECKINS / min(bare_times)
    instr_rate = CHECKINS / min(instr_times)
    overhead = statistics.median(pair_ratios) - 1.0

    snapshot = registry.snapshot()
    statuses = {
        labels[0]: int(count)
        for labels, count in snapshot["repro_lbsn_checkins_total"].items()
    }
    span_count = tracer.span_count
    rows = [
        f"workload: {CHECKINS} check-ins across {USERS} users "
        f"x {VENUES_PER_USER} venues, {ROUNDS} paired rounds",
        f"bare service:         {bare_rate:,.0f} check-ins/s "
        f"(best {min(bare_times):.3f} s)",
        f"instrumented service: {instr_rate:,.0f} check-ins/s "
        f"(best {min(instr_times):.3f} s)",
        f"per-pair ratios: "
        + ", ".join(f"{ratio:.3f}" for ratio in pair_ratios),
        f"observability overhead (median of pair ratios): {overhead:+.1%} "
        f"(bar: < {MAX_OVERHEAD:.0%})",
        f"instrumented side exported {len(registry.names())} metric "
        f"families; outcomes {statuses}",
        f"checkin.commit spans recorded: {span_count}",
    ]
    report_out(
        "E20_obs_overhead",
        rows,
        summary={
            "checkins": CHECKINS,
            "rounds": ROUNDS,
            "bare_checkins_per_s": round(bare_rate),
            "instrumented_checkins_per_s": round(instr_rate),
            "overhead_median_pair_ratio": round(overhead, 4),
            "max_overhead_bar": MAX_OVERHEAD,
            "metric_families": len(registry.names()),
            "spans": span_count,
        },
    )

    # The registry saw every check-in of the last instrumented round.
    assert sum(statuses.values()) == CHECKINS
    assert span_count == CHECKINS
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} bar"
    )
