"""E10 — §2.3: cheater-code boundary behaviour and evaluation cost.

Verifies each measured rule exactly at its published boundary and
benchmarks the per-check-in cost of the rule engine (it runs on every
check-in the service processes).
"""

from repro.geo.coordinates import METERS_PER_MILE, GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.cheater_code import CheaterCode, RuleAction
from repro.lbsn.models import CheckIn, CheckInStatus

ORIGIN = GeoPoint(35.0844, -106.6504)


def make_history(entries):
    return [
        CheckIn(
            checkin_id=index + 1,
            user_id=1,
            venue_id=venue_id,
            timestamp=timestamp,
            reported_location=location,
            status=CheckInStatus.VALID,
        )
        for index, (venue_id, timestamp, location) in enumerate(entries)
    ]


def boundary_table():
    code = CheaterCode()
    rows = ["rule boundary checks (paper's measured thresholds):"]

    # Frequent check-ins: same venue at 59 vs 61 minutes.
    history = make_history([(7, 0.0, ORIGIN)])
    for minutes, expect in ((59, "reject"), (61, "allow")):
        verdict = code.evaluate(
            7, ORIGIN, minutes * 60.0, history, lambda v: ORIGIN
        )
        outcome = verdict.action.value
        rows.append(
            f"  same venue after {minutes} min: {outcome} (expect {expect})"
        )
        assert outcome == expect

    # The safe envelope: 1 mile apart after 5 minutes.
    near = destination_point(ORIGIN, 0.0, 0.99 * METERS_PER_MILE)
    verdict = code.evaluate(
        8, near, 300.0, history, {7: ORIGIN, 8: near}.get
    )
    rows.append(
        f"  1 mile hop after 5 min: {verdict.action.value} (expect allow)"
    )
    assert verdict.action is RuleAction.ALLOW

    # Super-human speed: 1430 km in 10 minutes.
    far = GeoPoint(37.7749, -122.4194)
    verdict = code.evaluate(9, far, 600.0, history, {7: ORIGIN, 9: far}.get)
    rows.append(
        f"  1430 km hop after 10 min: {verdict.action.value} (expect flag)"
    )
    assert verdict.action is RuleAction.FLAG

    # Rapid-fire: 4th check-in in a 150 m square at 1-min spacing.
    square = {
        1: ORIGIN,
        2: destination_point(ORIGIN, 90.0, 70.0),
        3: destination_point(ORIGIN, 0.0, 70.0),
        4: destination_point(ORIGIN, 45.0, 90.0),
    }
    history = make_history(
        [(1, 0.0, square[1]), (2, 55.0, square[2]), (3, 110.0, square[3])]
    )
    verdict = code.evaluate(4, square[4], 165.0, history, square.get)
    rows.append(
        f"  4th rapid check-in in 150 m square: {verdict.action.value} "
        "(expect flag, 'rapid-fire check-ins' warning)"
    )
    assert verdict.action is RuleAction.FLAG
    assert "rapid-fire" in verdict.warnings[0]

    # 3rd check-in in the same square: still fine.
    history3 = make_history([(1, 0.0, square[1]), (2, 55.0, square[2])])
    verdict = code.evaluate(3, square[3], 110.0, history3, square.get)
    rows.append(
        f"  3rd rapid check-in in square: {verdict.action.value} "
        "(expect allow — warning comes 'on the fourth check-in')"
    )
    assert verdict.action is RuleAction.ALLOW
    return rows


def test_e10_rule_boundaries(report_out, benchmark):
    rows = benchmark.pedantic(boundary_table, rounds=1, iterations=1)
    report_out("E10_cheater_code", rows)


def test_e10_evaluation_throughput(benchmark):
    """Rule-engine cost per check-in with a realistic history length."""
    code = CheaterCode()
    history = make_history(
        [
            (index % 40, index * 1_900.0, destination_point(ORIGIN, index * 7.0, 400.0))
            for index in range(500)
        ]
    )
    locations = {
        checkin.venue_id: checkin.reported_location for checkin in history
    }
    next_venue = destination_point(ORIGIN, 10.0, 600.0)
    locations[999] = next_venue
    timestamp = history[-1].timestamp + 310.0

    verdict = benchmark(
        lambda: code.evaluate(999, next_venue, timestamp, history, locations.get)
    )
    assert verdict.action is RuleAction.ALLOW
