"""E17 (extension) — §6.2.2: how good is the combined cheater detector?

The simulator knows which accounts cheat, so the three-factor detector's
precision/recall tradeoff is measurable — the evaluation the thesis's
future-work section calls for.
"""

import pytest

from repro.analysis.detection import CheaterDetector, DetectorConfig
from repro.analysis.evaluation import (
    best_f1,
    format_sweep_table,
    score_population,
    threshold_sweep,
)


def test_e17_detector_tradeoff_curve(
    bench_world, bench_crawl, report_out, benchmark
):
    database, _, _ = bench_crawl

    def evaluate():
        detector = CheaterDetector(
            database, DetectorConfig(min_total_checkins=150)
        )
        reports = score_population(detector)
        cheaters = {
            spec.user_id for spec in bench_world.roster.caught_cheaters
        }
        cheaters.add(bench_world.roster.mega_cheater.user_id)
        sweep = threshold_sweep(
            reports,
            cheaters,
            thresholds=[t / 20.0 for t in range(2, 17)],
        )
        return reports, cheaters, sweep

    reports, cheaters, sweep = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    rows = [
        f"scored users: {len(reports)}   planted cheaters among them: "
        f"{len(cheaters)}",
        "",
    ]
    rows += format_sweep_table(sweep)
    best = best_f1(sweep)
    rows.append(
        f"\nbest F1 = {best.f1:.2f} at threshold {best.threshold:.2f} "
        f"(precision {best.precision:.2f}, recall {best.recall:.2f}, "
        f"FPR {best.false_positive_rate:.3f})"
    )
    rows.append(
        "(the three public-data factors separate the planted cheaters "
        "from thousands of organic heavy users — the §6.2.2 'find the "
        "ones the cheater code missed' program, quantified)"
    )
    report_out("E17_detector_quality", rows)
    assert best.f1 >= 0.6
    assert best.false_positive_rate < 0.05
