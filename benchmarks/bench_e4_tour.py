"""E4 — §3.3 / Fig 3.5: the automated cheating tour.

25 consecutive spoofed check-ins along a right-turning spiral (0.005
degrees per step, 5-minute base intervals), snapped to crawled venues, with
ZERO cheater-code detections — plus the ablations DESIGN.md calls out:
which rule binds, and how step size trades against drift.
"""

import pytest
from conftest import ascii_scatter

from repro.attack.scheduler import CheckInScheduler
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.tour import TourPlanner, VenueCatalog
from repro.geo.regions import city_by_name
from repro.lbsn.cheater_code import CheaterCode, CheaterCodeConfig
from repro.lbsn.service import LbsnService
from repro.workload import build_world

TOUR_CITY = "New York, NY"  # densest venue pool in the bench world


@pytest.fixture(scope="module")
def tour_world():
    # A fresh, mutable world for the attacker to roam.
    return build_world(scale=0.001, seed=35)


def run_tour(world, steps=40, step_deg=0.005, cheater_config=None):
    service = world.service
    if cheater_config is not None:
        service.cheater_code = CheaterCode(cheater_config)
    catalog = VenueCatalog.from_service(service)
    planner = TourPlanner(catalog)
    start = city_by_name(TOUR_CITY).center
    tour = planner.plan_city_spiral(start, steps=steps, step_deg=step_deg)
    _, _, channel = build_emulator_attacker(service)
    scheduler = CheckInScheduler(service.clock)
    report = scheduler.execute(scheduler.build(tour), channel)
    return tour, report


def test_e4_spiral_tour_undetected(tour_world, report_out, benchmark):
    tour, report = benchmark.pedantic(
        lambda: run_tour(tour_world), rounds=1, iterations=1
    )
    rows = [
        f"Fig 3.5 — spiral tour through {TOUR_CITY}:",
        f"stops planned: {len(tour.stops)}",
        f"check-ins attempted: {report.attempts}",
        f"rewarded: {report.rewarded}   detected: {report.detected}",
        f"points earned: {report.points}   badges: {len(report.badges)}",
        f"mean intended-vs-actual drift: {tour.mean_drift_m():.0f} m",
        "(paper: 25 check-ins, zero detections, rewards collected; venues "
        "'not very far from the desired location' in a dense city)",
        "",
        "intended (+) vs actual (*) path:",
    ]
    intended = [(s.intended.longitude, s.intended.latitude) for s in tour.stops]
    actual = [
        (s.venue_location.longitude, s.venue_location.latitude)
        for s in tour.stops
    ]
    rows += ascii_scatter(actual + intended, width=60, height=20)
    report_out("E4_tour", rows)
    assert report.attempts >= 25
    assert report.detected == 0
    assert report.rewarded == report.attempts


def test_e4_ablation_which_rule_binds(report_out, benchmark):
    """Each cheater-code rule against the attack style it exists to stop:
    a mall blitz (many venues in one 150 m square, 40 s apart), teleport
    hopping (cross-country venues, 10 min apart), and same-venue hammering
    (one venue every 10 min)."""
    from repro.geo.coordinates import GeoPoint
    from repro.geo.distance import destination_point

    def run_style(config, style):
        service = LbsnService()
        service.cheater_code = CheaterCode(config)
        _, _, channel = build_emulator_attacker(service)
        outcomes = {"valid": 0, "flagged": 0, "rejected": 0}
        if style == "mall blitz":
            anchor = GeoPoint(40.75, -73.98)
            venues = [
                service.create_venue(
                    f"Mall Shop {index}",
                    destination_point(anchor, index * 33.0, 60.0),
                )
                for index in range(10)
            ]
            gap = 40.0
        elif style == "teleport":
            from repro.geo.regions import US_CITIES

            venues = [
                service.create_venue(f"City Venue {index}", city.center)
                for index, city in enumerate(US_CITIES[:10])
            ]
            gap = 600.0
        else:  # same-venue hammering
            venue = service.create_venue("Hot Spot", GeoPoint(40.75, -73.98))
            venues = [venue] * 10
            gap = 600.0
        for venue in venues:
            service.clock.advance(gap)
            channel.set_location(venue.location)
            outcome = channel.check_in(venue.venue_id)
            outcomes[outcome.status.value] += 1
        return outcomes

    configs = {
        "all rules on": CheaterCodeConfig(),
        "no rapid-fire": CheaterCodeConfig(enable_rapid_fire=False),
        "no speed rule": CheaterCodeConfig(enable_superhuman=False),
        "no frequent rule": CheaterCodeConfig(enable_frequent=False),
        "no rules at all": CheaterCodeConfig(
            enable_frequent=False,
            enable_superhuman=False,
            enable_rapid_fire=False,
            shadow_ban_threshold=0,
        ),
    }

    def sweep():
        return {
            (style, label): run_style(config, style)
            for style in ("mall blitz", "teleport", "same venue")
            for label, config in configs.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["attack style  x  rule config  ->  outcomes of 10 attempts:"]
    for (style, label), outcomes in results.items():
        rows.append(
            f"{style:<12} | {label:<17} valid={outcomes['valid']:>2} "
            f"flagged={outcomes['flagged']:>2} "
            f"rejected={outcomes['rejected']:>2}"
        )
    rows.append(
        "(each rule binds exactly its attack style: rapid-fire stops the "
        "mall blitz, the speed rule stops teleporting, the one-hour rule "
        "stops same-venue hammering; with everything off, all 30 land)"
    )
    report_out("E4_ablation_rules", rows)

    assert results[("mall blitz", "all rules on")]["flagged"] > 0
    assert results[("mall blitz", "no rapid-fire")]["flagged"] == 0
    assert results[("teleport", "all rules on")]["flagged"] >= 8
    assert results[("teleport", "no speed rule")]["flagged"] == 0
    # Same-venue hammering at 10-min spacing: one check-in per hour gets
    # through (the rule's exact intent); the rest are refused.
    assert results[("same venue", "all rules on")]["rejected"] >= 7
    assert results[("same venue", "no frequent rule")]["rejected"] == 0
    for style in ("mall blitz", "teleport", "same venue"):
        outcome = results[(style, "no rules at all")]
        assert outcome["valid"] == 10, style


def test_e4_ablation_step_size_vs_drift(report_out, benchmark):
    """§3.3: 'To move across large distances, we should increase the
    moving distance of each step, which will reduce the probability that
    we drift too far from the desired direction.'"""

    def sweep():
        world = build_world(scale=0.001, seed=37)
        results = []
        for step_deg in (0.002, 0.005, 0.01, 0.02):
            catalog = VenueCatalog.from_service(world.service)
            planner = TourPlanner(catalog)
            tour = planner.plan_city_spiral(
                city_by_name(TOUR_CITY).center, steps=30, step_deg=step_deg
            )
            step_m = step_deg * 111_000.0
            results.append(
                (step_deg, tour.mean_drift_m(), tour.mean_drift_m() / step_m)
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["step_deg   mean_drift_m   drift/step ratio"]
    for step_deg, drift, ratio in results:
        rows.append(f"{step_deg:8.3f}   {drift:12.0f}   {ratio:16.2f}")
    rows.append("(relative drift falls as the step grows, as §3.3 argues)")
    report_out("E4_ablation_step_size", rows)
    assert results[-1][2] < results[0][2]
