"""E2 — §3.2 / Fig 3.3: multi-threaded crawler throughput.

The thesis ran 14-16 threads per machine on 3 machines for ~100k user
profiles/hour (5-6 threads for ~50k venues/hour).  Absolute 2010 numbers
are out of scope; the reproduced *shape* is throughput scaling with thread
count until transport saturation, against a transport that really blocks on
sampled round-trip latency.
"""

import pytest

from repro.crawler.crawler import MultiThreadedCrawler
from repro.crawler.database import CrawlDatabase
from repro.crawler.frontier import CrawlMode
from repro.simnet.http import HttpTransport
from repro.workload import build_web_stack

#: Pages per sweep point; small enough to keep the bench under a minute.
PAGES = 400


@pytest.fixture(scope="module")
def blocking_stack(bench_world):
    stack = build_web_stack(bench_world, seed=12, blocking=True)
    return stack


def crawl_with_threads(stack, threads, machines=1, pages=PAGES):
    egresses = []
    for _ in range(machines):
        egress = stack.network.create_egress()
        egress.base_latency_s = 0.003  # 6 ms RTT: a fast 2010 link
        egresses.append(egress)
    crawler = MultiThreadedCrawler(
        stack.transport,
        CrawlDatabase(),
        CrawlMode.USER,
        egresses,
        threads_per_machine=threads,
        stop_at=pages,
    )
    return crawler.run()


def test_e2_thread_scaling(blocking_stack, report_out, benchmark):
    rows = [
        "threads_per_machine  machines  pages/s  profiles/hour  speedup",
    ]
    baseline = None

    def sweep():
        nonlocal baseline
        results = []
        for threads in (1, 2, 4, 8, 16):
            stats = crawl_with_threads(blocking_stack, threads)
            if baseline is None:
                baseline = stats.pages_per_second
            results.append((threads, 1, stats))
        # The thesis's 3-machine configuration at its user-crawl setting.
        stats = crawl_with_threads(blocking_stack, 14, machines=3)
        results.append((14, 3, stats))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for threads, machines, stats in results:
        rows.append(
            f"{threads:>19}  {machines:>8}  {stats.pages_per_second:7.1f}  "
            f"{stats.profiles_per_hour:13.0f}  "
            f"{stats.pages_per_second / baseline:7.2f}x"
        )
    rows.append(
        "(paper: 3 machines x 14-16 threads ~ 100,000 users/hour; "
        "throughput grows with threads until the link saturates)"
    )
    report_out("E2_crawler_threads", rows)
    # The scaling shape: 8 threads beat 1 thread by a wide margin.
    one = next(s for t, m, s in results if t == 1 and m == 1)
    eight = next(s for t, m, s in results if t == 8 and m == 1)
    assert eight.pages_per_second > 3.0 * one.pages_per_second


def test_e2_user_vs_venue_thread_settings(blocking_stack, report_out, benchmark):
    """The thesis crawled users at 14-16 threads but venues at only 5-6."""

    def run():
        user_stats = crawl_with_threads(blocking_stack, 15)
        egress = blocking_stack.network.create_egress()
        egress.base_latency_s = 0.003
        venue_crawler = MultiThreadedCrawler(
            blocking_stack.transport,
            CrawlDatabase(),
            CrawlMode.VENUE,
            [egress],
            threads_per_machine=5,
            stop_at=PAGES,
        )
        return user_stats, venue_crawler.run()

    user_stats, venue_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"user crawl  (15 threads): {user_stats.profiles_per_hour:12.0f}/hour",
        f"venue crawl ( 5 threads): {venue_stats.profiles_per_hour:12.0f}/hour",
        "(paper: ~100k users/hour at 14-16 threads vs ~50k venues/hour at "
        "5-6 threads per machine — the ratio tracks thread count)",
    ]
    report_out("E2_user_vs_venue", rows)
    assert user_stats.profiles_per_hour > venue_stats.profiles_per_hour
