"""E11 — Chapter 5: quantitative defense comparison.

Location verification: detection / false-positive rates of distance
bounding, IP address mapping, and venue-side Wi-Fi against naive and
proxy-equipped spoofers, plus the Wi-Fi coverage sweep.  Crawl control:
throughput collapse of the E2 crawler under login gating and rate limiting,
and the Tor/proxy latency penalty the thesis cites.
"""

import pytest

from repro.crawler.crawler import MultiThreadedCrawler
from repro.crawler.database import CrawlDatabase
from repro.crawler.frontier import CrawlMode
from repro.defense.address_mapping import AddressMappingVerifier
from repro.defense.crawl_control import (
    IpRateLimiter,
    LoginGate,
    RateLimiterConfig,
    SessionRegistry,
)
from repro.defense.distance_bounding import DistanceBoundingVerifier
from repro.defense.evaluator import (
    ClaimWorkload,
    evaluate_verifiers,
    format_evaluation_table,
)
from repro.defense.wifi_verification import deploy_routers
from repro.geo.regions import city_by_name
from repro.simnet.http import HttpTransport
from repro.simnet.network import EgressKind
from repro.workload import build_web_stack

ATTACKER_AT = city_by_name("Albuquerque, NM").center


def test_e11_location_verifiers(bench_world, bench_stack, report_out, benchmark):
    def evaluate():
        workload = ClaimWorkload(
            bench_world.service, network=bench_stack.network, seed=13
        )
        honest = workload.honest_claims(400)
        naive = workload.spoofed_claims(400, attacker_at=ATTACKER_AT)
        proxied = workload.spoofed_claims(
            400, attacker_at=ATTACKER_AT, proxy_near_target=True
        )
        verifiers = [
            DistanceBoundingVerifier(seed=4),
            AddressMappingVerifier(bench_stack.network.geoip),
            deploy_routers(bench_world.service, fraction=1.0),
        ]
        return (
            evaluate_verifiers(verifiers, honest, naive),
            evaluate_verifiers(verifiers, honest, proxied),
        )

    naive_eval, proxy_eval = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    rows = ["— naive spoofing attacker (home IP) —"]
    rows += format_evaluation_table(naive_eval)
    rows.append("")
    rows.append("— attacker proxying traffic near each claimed venue —")
    rows += format_evaluation_table(proxy_eval)
    rows.append(
        "(paper's ranking reproduced: distance bounding most robust but "
        "costliest; address mapping cheapest and weakest; venue-side "
        "Wi-Fi accurate to radio range with no new hardware)"
    )
    report_out("E11_verifiers", rows)

    by_name = {e.name: e for e in proxy_eval}
    assert by_name["address-mapping"].detection_rate < 0.05
    assert by_name["distance-bounding"].detection_rate > 0.95
    assert by_name["wifi-venue-verification"].detection_rate > 0.95
    for evaluation in naive_eval:
        assert evaluation.false_positive_rate < 0.05


def test_e11_wifi_coverage_sweep(bench_world, bench_stack, report_out, benchmark):
    def sweep():
        workload = ClaimWorkload(
            bench_world.service, network=bench_stack.network, seed=14
        )
        attacks = workload.spoofed_claims(300, attacker_at=ATTACKER_AT)
        results = []
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            wifi = deploy_routers(bench_world.service, fraction=fraction)
            (evaluation,) = evaluate_verifiers([wifi], [], attacks)
            results.append((fraction, evaluation.detection_rate))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["router coverage  attack detection rate"]
    for fraction, rate in results:
        rows.append(f"{fraction:15.0%}  {rate:12.1%}  {'#' * int(rate * 40)}")
    rows.append(
        "(incremental rollout: detection scales with the fraction of "
        "venues whose routers registered as verifiers)"
    )
    report_out("E11_wifi_coverage", rows)
    rates = [rate for _, rate in results]
    assert rates == sorted(rates)
    assert rates[-1] > 0.95


def crawl_pages(transport, network, pages, kind=EgressKind.DIRECT, headers=None):
    egress = network.create_egress(kind=kind)
    egress.base_latency_s = 0.003
    crawler = MultiThreadedCrawler(
        transport,
        CrawlDatabase(),
        CrawlMode.USER,
        [egress],
        threads_per_machine=8,
        stop_at=pages,
        abort_after_failures=100,
    )
    stats = crawler.run()
    return stats


def test_e11_crawl_control(bench_world, report_out, benchmark):
    def run_all():
        results = {}
        # Baseline: undefended site, blocking transport.
        stack = build_web_stack(bench_world, seed=21, blocking=True)
        results["undefended"] = crawl_pages(
            stack.transport, stack.network, 300
        )
        # Login gate.
        gated = build_web_stack(bench_world, seed=22, blocking=True)
        gated.transport.add_middleware(LoginGate(SessionRegistry()))
        results["login gate"] = crawl_pages(
            gated.transport, gated.network, 300
        )
        # Rate limiter with enumeration detection.
        limited = build_web_stack(bench_world, seed=23, blocking=True)
        # 100 profile views/second is far beyond human browsing but well
        # under a multi-threaded crawler's rate.
        limited.transport.add_middleware(
            IpRateLimiter(
                RateLimiterConfig(
                    window_s=1.0,
                    max_requests_per_window=100,
                    enumeration_run_length=60,
                )
            )
        )
        results["rate limiter"] = crawl_pages(
            limited.transport, limited.network, 300
        )
        # Tor evasion: unblockable, but the thesis notes the throughput
        # price; same undefended site, Tor egress.
        tor_stack = build_web_stack(bench_world, seed=24, blocking=True)
        results["via Tor (undefended)"] = crawl_pages(
            tor_stack.transport, tor_stack.network, 60, kind=EgressKind.TOR
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def hits_per_hour(stats):
        if stats.wall_seconds <= 0:
            return 0.0
        return stats.hits / stats.wall_seconds * 3_600.0

    rows = ["configuration          profiles ok  profiles/hour"]
    baseline = hits_per_hour(results["undefended"])
    for label, stats in results.items():
        rate = hits_per_hour(stats)
        rows.append(
            f"{label:<22} {stats.hits:>11}  {rate:13.0f}"
            f"  ({rate / baseline:6.1%} of baseline)"
        )
    rows.append(
        "(paper: login gating makes crawlers detectable/blockable; "
        "'crawling behind a public proxy cannot achieve enough "
        "performance', and Tor 'suffers from limited performance')"
    )
    report_out("E11_crawl_control", rows)
    assert results["login gate"].hits == 0
    assert results["rate limiter"].hits < 150
    assert (
        results["via Tor (undefended)"].profiles_per_hour < 0.25 * baseline
    )
