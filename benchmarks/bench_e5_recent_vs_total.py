"""E5 — §4.1 / Fig 4.1: average recent check-ins vs. total check-ins."""

from repro.analysis.activity import (
    high_ratio_users,
    recent_vs_total_curve,
    trackable_users,
)


def test_e5_recent_vs_total_curve(bench_crawl, bench_world, report_out, benchmark):
    database, _, _ = bench_crawl

    def compute():
        return recent_vs_total_curve(database, bucket_width=50)

    curve = benchmark(compute)
    rows = ["Fig 4.1 — total check-ins (bucket)  avg recent check-ins  users"]
    for point in curve:
        bar = "#" * min(60, int(point.average_recent))
        rows.append(
            f"{point.total_checkins:>10}  {point.average_recent:>8.1f}  "
            f"{point.users:>6}  {bar}"
        )
    count, average = trackable_users(database, min_total=500, max_total=2_000)
    rows.append(
        f"users with 500-2000 totals: {count}, avg recent check-ins "
        f"{average:.0f} (paper: 25,074 users, ~100 recent check-ins)"
    )
    suspects = high_ratio_users(database, min_total=300, min_ratio=0.4)
    rows.append(
        f"high recent/total ratio suspects (>=0.4 at >=300 total): "
        f"{len(suspects)}"
    )
    mega = bench_world.roster.mega_cheater.user_id
    rows.append(
        f"mega cheater among them: {mega in {u.user_id for u in suspects}}"
    )
    report_out("E5_recent_vs_total", rows)

    # Shape: the curve rises with totals (heavier users, more list slots).
    assert len(curve) >= 4
    first_third = curve[: len(curve) // 3]
    last_third = curve[-len(curve) // 3 :]
    assert (
        sum(p.average_recent for p in last_third) / len(last_third)
        > sum(p.average_recent for p in first_third) / len(first_third)
    )
    assert mega in {u.user_id for u in suspects}
