"""E8 — the inline population statistics (§2.1, §3.2, §4.2).

Every number the thesis quotes about its crawled corpus, recomputed from
our crawl at the bench scale, with the paper's value alongside.
"""

from repro.analysis.stats import compute_population_stats, format_stats_table


def test_e8_population_statistics(bench_crawl, bench_world, report_out, benchmark):
    database, _, _ = bench_crawl

    stats = benchmark(lambda: compute_population_stats(database))
    rows = [f"world scale: {bench_world.scale} of the 2010 corpus", ""]
    rows += format_stats_table(stats)
    farmer = bench_world.roster.mayor_farmer
    farmer_row = database.user(farmer.user_id)
    rows.append(
        f"mayor farmer: {farmer_row.total_mayors} mayorships from "
        f"{farmer_row.total_checkins} check-ins "
        "(paper: 865 mayorships from 1,265 check-ins)"
    )
    report_out("E8_population", rows)

    # The anchors the generator is calibrated to.
    assert abs(stats.zero_checkin_fraction - 0.363) < 0.04
    assert abs(stats.light_checkin_fraction - 0.204) < 0.04
    assert stats.under_six_fraction > 0.5
    assert abs(stats.username_fraction - 0.261) < 0.05
    assert stats.mayor_only_special_fraction > 0.9
    assert stats.venues_with_one_visitor > stats.venues_with_one_checkin
    assert 0.0 < stats.heavy_user_fraction < 0.01
    assert farmer_row.total_mayors / max(1, farmer_row.total_checkins) > 0.5
