"""E14 (extension) — the Chapter-5 endgame: defenses deployed inline.

E11 scores verifiers on claim workloads; E14 wires them into the live
check-in pipeline (:class:`DefendedLbsnService`) and reruns the actual E1
spoofing attack and honest traffic against the defended service — the
deployment decision a provider would actually face.
"""

import pytest

from repro.attack.spoofing import build_emulator_attacker
from repro.defense.distance_bounding import DistanceBoundingVerifier
from repro.defense.integration import (
    DefendedLbsnService,
    DeviceRegistry,
    registry_locator,
)
from repro.defense.wifi_verification import (
    VenueRouter,
    WifiVerificationService,
    deploy_routers,
)
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.geo.regions import city_by_name
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

ATTACKER_AT = city_by_name("Albuquerque, NM").center
REMOTE = city_by_name("San Francisco, CA").center


def build_scene(verifier_factory, fraction=1.0):
    service = LbsnService()
    venues = [
        service.create_venue(
            f"SF Venue {index}",
            destination_point(REMOTE, index * 24.0, 1_500.0 + 90.0 * index),
        )
        for index in range(15)
    ]
    local = [
        service.create_venue(
            f"ABQ Venue {index}",
            destination_point(ATTACKER_AT, index * 24.0, 1_200.0 + 80.0 * index),
        )
        for index in range(15)
    ]
    registry = DeviceRegistry()
    verifier = verifier_factory(service, fraction)
    defended = DefendedLbsnService(
        service, verifier, registry_locator(registry)
    )
    return service, defended, registry, venues, local


def attack_and_honest(defended_tuple):
    service, defended, registry, remote_venues, local_venues = defended_tuple
    # The spoofing attacker, physically in Albuquerque.
    attacker, _, channel = build_emulator_attacker(service)
    registry.place(attacker.user_id, ATTACKER_AT)
    channel.app.service = defended
    attack_ok = 0
    for venue in remote_venues:
        service.clock.advance(1_800.0)
        channel.set_location(venue.location)
        if channel.check_in(venue.venue_id).rewarded:
            attack_ok += 1
    # An honest local, physically where they claim.
    honest = service.register_user("Honest Local")
    honest_ok = 0
    for venue in local_venues:
        service.clock.advance(1_800.0)
        registry.place(honest.user_id, venue.location)
        result = defended.check_in(
            honest.user_id, venue.venue_id, venue.location
        )
        if result.checkin.status is CheckInStatus.VALID:
            honest_ok += 1
    return attack_ok, honest_ok


def test_e14_inline_deployment(report_out, benchmark):
    def run_matrix():
        def alternating_wifi(service, fraction):
            # Register a router at every other venue, so half the ATTACKED
            # venues are covered (deploy_routers covers by ID order, which
            # would cover either all or none of the remote venue block).
            wifi = WifiVerificationService(fallback_accept=True)
            for venue in service.store.iter_venues():
                if venue.venue_id % 2 == 0:
                    wifi.register_router(
                        VenueRouter(
                            venue_id=venue.venue_id, location=venue.location
                        )
                    )
            return wifi

        scenarios = {
            "undefended": None,
            "distance bounding": lambda s, f: DistanceBoundingVerifier(seed=6),
            "wifi 100% coverage": lambda s, f: deploy_routers(s, fraction=1.0),
            "wifi 50% coverage": alternating_wifi,
        }
        results = {}
        for label, factory in scenarios.items():
            if factory is None:
                # Plain service: wrap with a pass-everything locator-less
                # path by calling the raw service directly.
                service = LbsnService()
                remote_venues = [
                    service.create_venue(
                        f"SF Venue {index}",
                        destination_point(
                            REMOTE, index * 24.0, 1_500.0 + 90.0 * index
                        ),
                    )
                    for index in range(15)
                ]
                attacker, _, channel = build_emulator_attacker(service)
                attack_ok = 0
                for venue in remote_venues:
                    service.clock.advance(1_800.0)
                    channel.set_location(venue.location)
                    if channel.check_in(venue.venue_id).rewarded:
                        attack_ok += 1
                results[label] = (attack_ok, 15, 15, 15)
                continue
            scene = build_scene(factory)
            attack_ok, honest_ok = attack_and_honest(scene)
            results[label] = (attack_ok, 15, honest_ok, 15)
        return results

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = ["deployment             attack success   honest success"]
    for label, (attack_ok, attack_n, honest_ok, honest_n) in results.items():
        rows.append(
            f"{label:<22} {attack_ok:>7}/{attack_n:<7} {honest_ok:>7}/{honest_n}"
        )
    rows.append(
        "(inline physics-based verification zeroes the E1 attack without "
        "touching honest users; partial Wi-Fi coverage stops exactly the "
        "covered venues)"
    )
    report_out("E14_inline_defense", rows)

    assert results["undefended"][0] == 15
    assert results["distance bounding"][0] == 0
    assert results["wifi 100% coverage"][0] == 0
    partial = results["wifi 50% coverage"][0]
    assert 0 < partial < 15
    for label in ("distance bounding", "wifi 100% coverage"):
        assert results[label][2] == 15, label
