"""E26 (extension) — coordinated rings vs. the honeypot-venue defense.

The thesis's cheater is one account on one emulator; the follow-on
literature's is a *ring* — 3–5 accounts on one device, firing in quick
succession so every account "witnesses" the others.  The per-user
cheater code is structurally blind to a convoy (constant offsets keep
each account inside the §2.3 envelope), and naive proximity
corroboration is *defeated* by it (1.0 by construction).  The honeypot
tier exploits the one thing a ring cannot hide: its target list comes
from exhaustive venue enumeration, so venues no honest itinerary can
contain still get visited.

This experiment sweeps honeypot density and ring size at the paper's
1:100 scale (``scale=0.01``: ~19 k users, ~56 k venues, the §3.4 easy-
target pool lands at the thesis's "~1000 venues") and commits the
catch-rate / false-positive scoreboard.

Acceptance bars (all asserted):

1. **Catch rate** ≥ 90% at every density ≥ 1%, for every swept ring
   size (the seeded default cells all reach 100%).
2. **False positives** = 0 honest accounts flagged in *every* cell —
   the visibility law, measured rather than assumed.
3. **Blindness of the old defenses** — per-user cheater code detects 0
   ring check-ins and naive corroboration reads 1.0 in every cell.
4. **Inline enforcement** — every caught account's next check-in
   through :class:`DefendedLbsnService` is refused.
5. **Determinism** — rerunning the headline cell reproduces identical
   catch and false-positive digests.

Everything runs on the simulated clock — zero wall-clock sleeps.

Environment knobs (CI smoke mode shrinks the world):

* ``REPRO_E26_SCALE`` — world scale (default 0.01, the paper's 1:100).
* ``REPRO_E26_RINGS`` — rings per cell (default 3).
* ``REPRO_E26_HONEST`` — honest control accounts per cell (default 50).
"""

import os

from repro.adversary import AdversaryConfig, run_adversary

SCALE = float(os.environ.get("REPRO_E26_SCALE", "0.01"))
RINGS = int(os.environ.get("REPRO_E26_RINGS", "3"))
HONEST = int(os.environ.get("REPRO_E26_HONEST", "50"))

SEED = 42
#: Densities swept at the default ring size (0.0 is the no-defense
#: control: the ring sweeps unopposed).
DENSITIES = (0.0, 0.005, 0.01, 0.02)
#: Ring sizes swept at the headline density (the literature's 3–5).
RING_SIZES = (3, 4, 5)
HEADLINE_DENSITY = 0.01
HEADLINE_RING_SIZE = 4


def _config(**overrides) -> AdversaryConfig:
    base = dict(
        scale=SCALE,
        seed=SEED,
        rings=RINGS,
        ring_size=HEADLINE_RING_SIZE,
        honeypot_density=HEADLINE_DENSITY,
        honest_accounts=HONEST,
    )
    base.update(overrides)
    return AdversaryConfig(**base)


def _cell_row(label: str, report) -> str:
    return (
        f"{label}: catch {report.catch_rate:.3f} "
        f"({len(report.flagged_ring_accounts)}/{len(report.ring_accounts)}), "
        f"fp {report.false_positive_rate:.3f} "
        f"({len(report.flagged_honest_accounts)}/"
        f"{len(report.honest_accounts)}), "
        f"{report.honeypots_seeded} traps "
        f"({report.honeypot_targets} in pool of {report.target_pool}), "
        f"corroboration {report.ring_corroboration:.2f}, "
        f"refused {report.post_flag_refusals}/{report.post_flag_attempts}, "
        f"{report.wall_seconds:.1f}s"
    )


def _assert_cell(report, density: float) -> None:
    # Bar 2: the visibility law holds in every cell.
    assert report.false_positive_rate == 0.0
    assert report.flagged_honest_accounts == []
    # Bar 3: the defenses the ring is built to beat stay beaten.
    assert report.ring_corroboration == 1.0
    for ring_report in report.ring_reports:
        assert ring_report.detected == 0
    if density >= 0.01:
        # Bar 1: the honeypot tier catches at the committed bar.
        assert report.catch_rate >= 0.9
        # Bar 4: caught accounts are refused inline.
        assert report.post_flag_refusals == len(
            report.flagged_ring_accounts
        )


def test_e26_adversary(report_out, benchmark):
    """Density × ring-size sweep, determinism-checked; all bars asserted."""
    headline = benchmark.pedantic(
        lambda: run_adversary(_config()),
        rounds=1,
        iterations=1,
    )
    _assert_cell(headline, HEADLINE_DENSITY)

    density_cells = []
    for density in DENSITIES:
        if density == HEADLINE_DENSITY:
            report = headline
        else:
            report = run_adversary(_config(honeypot_density=density))
        _assert_cell(report, density)
        density_cells.append((density, report))

    size_cells = []
    for ring_size in RING_SIZES:
        if ring_size == HEADLINE_RING_SIZE:
            report = headline
        else:
            report = run_adversary(_config(ring_size=ring_size))
        _assert_cell(report, HEADLINE_DENSITY)
        size_cells.append((ring_size, report))

    # Bar 5: the headline cell replays to identical digests.
    replay = run_adversary(_config())
    catch_identical = replay.catch_digest == headline.catch_digest
    fp_identical = replay.fp_digest == headline.fp_digest
    assert catch_identical and fp_identical

    no_defense = density_cells[0][1]
    rows = [
        f"world: scale {SCALE} (target pool {headline.target_pool} "
        f"easy mayor-specials — the thesis's '~1000 venues'), seed {SEED}",
        f"adversary: {RINGS} rings, {HONEST} honest control accounts, "
        f"witness window {headline.config.witness_window_s:.0f}s; "
        f"per-user cheater code detections in every cell: 0; "
        f"naive corroboration in every cell: 1.00",
        f"no-defense control (density 0): ring sweeps unopposed, "
        f"catch {no_defense.catch_rate:.3f}, "
        f"{no_defense.honeypots_seeded} traps",
        "-- density sweep (ring size "
        f"{HEADLINE_RING_SIZE}) --",
    ]
    rows.extend(
        _cell_row(f"density {density:.3f}", report)
        for density, report in density_cells
    )
    rows.append(
        f"-- ring-size sweep (density {HEADLINE_DENSITY:.3f}) --"
    )
    rows.extend(
        _cell_row(f"ring size {ring_size}", report)
        for ring_size, report in size_cells
    )
    rows.extend(
        [
            f"determinism: replay catch digest identical="
            f"{catch_identical}, fp digest identical={fp_identical}",
            f"catch digest: {headline.catch_digest[:16]}…",
            f"fp digest: {headline.fp_digest[:16]}…",
            f"headline wall time (simulated clocks only): "
            f"{headline.wall_seconds:.1f} s",
        ]
    )
    report_out(
        "E26_adversary",
        rows,
        summary={
            "scale": SCALE,
            "rings": RINGS,
            "honest_accounts": HONEST,
            "target_pool": headline.target_pool,
            "density_sweep": {
                str(density): {
                    "catch_rate": round(report.catch_rate, 4),
                    "false_positive_rate": round(
                        report.false_positive_rate, 4
                    ),
                    "honeypots_seeded": report.honeypots_seeded,
                    "honeypot_targets": report.honeypot_targets,
                    "inline_refusals": report.post_flag_refusals,
                }
                for density, report in density_cells
            },
            "ring_size_sweep": {
                str(ring_size): {
                    "catch_rate": round(report.catch_rate, 4),
                    "false_positive_rate": round(
                        report.false_positive_rate, 4
                    ),
                }
                for ring_size, report in size_cells
            },
            "corroboration_defeated": True,
            "per_user_rule_detections": 0,
            "replay_digest_identical": catch_identical and fp_identical,
            "catch_digest": headline.catch_digest,
            "fp_digest": headline.fp_digest,
            "headline_wall_seconds": round(headline.wall_seconds, 3),
        },
    )
