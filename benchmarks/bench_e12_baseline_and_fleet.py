"""E12 (extension) — baseline comparison and attack scale-up.

Two questions the thesis raises but does not quantify:

* §2.2: the Autosquare-style naive bot "obviously does not work now" — how
  badly does it fail vs the §3.3 scheduler on identical targets?
* §3.3: "attackers need to be able to control a large number of users" —
  how does a fleet of per-user-compliant accounts scale the attack?
"""

import pytest

from repro.attack.campaign import CheatingCampaign
from repro.attack.fleet import AttackFleet
from repro.attack.naive import NaiveAutoCheckinBot, NaiveBotConfig
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import TargetVenue, VenueProfileAnalyzer
from repro.crawler import crawl_full_site
from repro.workload import build_web_stack, build_world


def world_and_targets(seed, count=24):
    world = build_world(scale=0.001, seed=seed)
    stack = build_web_stack(world, seed=seed + 1)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress()]
    )
    analyzer = VenueProfileAnalyzer(database)
    targets = analyzer.uncontested_mayor_specials(max_visitors=2)[:count]
    return world, targets


def test_e12_naive_vs_scheduler(report_out, benchmark):
    def head_to_head():
        world, targets = world_and_targets(seed=71)
        service = world.service
        _, _, naive_channel = build_emulator_attacker(service)
        naive = NaiveAutoCheckinBot(
            service.clock, naive_channel, NaiveBotConfig(interval_s=120.0)
        ).run(targets)
        _, _, smart_channel = build_emulator_attacker(service)
        smart = CheatingCampaign(service.clock, smart_channel).harvest(targets)
        return naive, smart

    naive, smart = benchmark.pedantic(head_to_head, rounds=1, iterations=1)
    rows = [
        f"{'':<22} attempts  rewarded  detected  mayorships",
        f"{'naive bot (2-min)':<22} {naive.attempts:>8}  {naive.rewarded:>8}"
        f"  {naive.detected:>8}  {naive.mayorships_won:>10}",
        f"{'§3.3 scheduler':<22} {smart.attempts:>8}  {smart.rewarded:>8}"
        f"  {smart.detected:>8}  {smart.mayorships_won:>10}",
        "(paper: the basic method 'obviously does not work now'; the "
        "scheduled attack passes cleanly)",
    ]
    report_out("E12_naive_vs_scheduler", rows)
    assert naive.detected > smart.detected
    assert smart.detected == 0
    assert smart.rewarded > naive.rewarded


def test_e12_fleet_scaling(report_out, benchmark):
    def sweep():
        results = []
        for accounts in (1, 2, 4, 8):
            world, targets = world_and_targets(seed=72)
            fleet = AttackFleet(world.service, accounts=accounts)
            report = fleet.sweep(targets)
            results.append((accounts, report))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["accounts  rewarded  detected  mayorships  makespan(h)"]
    for accounts, report in results:
        rows.append(
            f"{accounts:>8}  {report.rewarded:>8}  {report.detected:>8}  "
            f"{report.mayorships_won:>10}  {report.makespan_s / 3_600.0:>10.1f}"
        )
    rows.append(
        "(the per-user cheater code cannot see across accounts: the same "
        "target list clears in a fraction of the time, still undetected)"
    )
    report_out("E12_fleet_scaling", rows)
    single = results[0][1]
    eight = results[-1][1]
    assert eight.detected == 0
    assert eight.makespan_s < single.makespan_s
    assert eight.rewarded >= single.rewarded
