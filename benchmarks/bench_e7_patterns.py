"""E7 — §4.3 / Figs 4.3-4.4: suspicious vs normal check-in patterns."""

from conftest import ascii_scatter

from repro.analysis.detection import CheaterDetector, DetectorConfig
from repro.analysis.patterns import analyze_pattern, scan_patterns


def test_e7_cheater_vs_normal_maps(bench_crawl, bench_world, report_out, benchmark):
    database, _, _ = bench_crawl
    mega_id = bench_world.roster.mega_cheater.user_id

    def analyze_both():
        mega = analyze_pattern(database, mega_id)
        # A "normal" heavy user: the most recent-visible organic account.
        persona_ids = {s.user_id for s in bench_world.roster.all_specs()}
        organic = max(
            (
                u
                for u in database.users()
                if u.user_id not in persona_ids and u.recent_checkins >= 20
            ),
            key=lambda u: u.recent_checkins,
        )
        normal = analyze_pattern(database, organic.user_id)
        return mega, normal

    mega, normal = benchmark.pedantic(analyze_both, rounds=1, iterations=1)

    rows = [
        "Fig 4.3 — suspected cheater's recent check-in locations:",
    ]
    rows += ascii_scatter(
        [(p.longitude, p.latitude) for p in mega.points], width=64, height=18
    )
    rows += [
        f"verdict={mega.verdict.value}  cities={mega.city_count}  "
        f"diameter={mega.diameter_m / 1000.0:.0f} km",
        "(paper: venues scattered over 30+ cities incl. Alaska and Europe)",
        "",
        "Fig 4.4 — 'normal' user's recent check-in locations:",
    ]
    rows += ascii_scatter(
        [(p.longitude, p.latitude) for p in normal.points], width=64, height=18
    )
    rows += [
        f"verdict={normal.verdict.value}  cities={normal.city_count}  "
        f"concentration={normal.concentration:.2f}",
        "(paper: concentrated in ~3 cities plus the odd vacation)",
    ]
    report_out("E7_patterns", rows)
    assert mega.verdict.value == "suspicious"
    assert normal.verdict.value == "normal"
    assert mega.city_count > 3 * max(1, normal.city_count)


def test_e7_population_scan(bench_crawl, bench_world, report_out, benchmark):
    database, _, _ = bench_crawl

    def scan():
        return scan_patterns(database, min_recent_checkins=40)

    reports = benchmark(scan)
    suspicious = [r for r in reports if r.verdict.value == "suspicious"]
    rows = [
        f"users scanned (>=40 recent check-ins): {len(reports)}",
        f"suspicious patterns: {len(suspicious)}",
    ]
    for report in suspicious[:5]:
        rows.append(
            f"  user {report.user_id}: {report.city_count} cities, "
            f"{report.point_count} mapped check-ins"
        )
    detector = CheaterDetector(
        database, DetectorConfig(min_total_checkins=150)
    )
    new_discoveries = detector.undetected_mayor_holders(min_mayorships=10)
    rows.append(
        f"suspicious users still holding >=10 mayorships (the §4.3 'new "
        f"discoveries'): {len(new_discoveries)}"
    )
    farmer = bench_world.roster.mayor_farmer.user_id
    rows.append(
        f"mayor farmer among them: "
        f"{farmer in {r.user_id for r in new_discoveries}}"
    )
    report_out("E7_scan", rows)
    assert bench_world.roster.mega_cheater.user_id in {
        r.user_id for r in suspicious
    }
