"""E6 — §4.2 / Fig 4.2: average badges vs. total check-ins.

The honest curve rises steadily; heavy accounts whose check-ins were
invalidated sit far below it, and the ">= 5000" extreme club splits into
mayored power users and mayorless caught cheaters.
"""

from repro.analysis.reward_rate import (
    badges_vs_total_curve,
    extreme_club,
    low_reward_users,
)


def test_e6_badges_vs_total(bench_crawl, bench_world, report_out, benchmark):
    database, _, _ = bench_crawl

    def compute():
        return badges_vs_total_curve(database, bucket_width=100)

    curve = benchmark(compute)
    rows = ["Fig 4.2 — total check-ins (bucket)  avg badges  users"]
    for point in curve:
        bar = "#" * min(60, int(point.average_badges))
        rows.append(
            f"{point.total_checkins:>10}  {point.average_badges:>8.1f}  "
            f"{point.users:>6}  {bar}"
        )

    low = low_reward_users(database, min_total=500, max_badges=15)
    rows.append(
        f"heavy accounts (>=500) with <=15 badges: {len(low)} "
        "(paper: 'many users with more than 1000 check-ins only have "
        "less than 10 badges')"
    )
    caught_ids = {s.user_id for s in bench_world.roster.caught_cheaters}
    rows.append(
        f"caught-cheater personas among them: "
        f"{len(caught_ids & {u.user_id for u in low})}/{len(caught_ids)}"
    )

    # The extreme club at persona volume for this world scale.
    threshold = min(
        database.user(uid).total_checkins for uid in caught_ids
    )
    club = extreme_club(database, min_total=threshold)
    rows.append(
        f"extreme club (>= {threshold} check-ins): {club.size} users, "
        f"{len(club.with_mayorships)} with mayorships / "
        f"{len(club.without_mayorships)} without"
    )
    rows.append(
        "(paper: 11 users >= 5000 check-ins, split 6 with concentrated "
        "mayorships / 5 caught cheaters with none)"
    )
    report_out("E6_badges", rows)

    # Shape checks: rising early curve; caught cheaters flagged low.
    assert curve[0].average_badges < max(p.average_badges for p in curve)
    assert caught_ids <= {u.user_id for u in low}
