"""E1 — §3.1 / Fig 3.2: every spoofing channel defeats GPS verification.

Reproduces the thesis's headline experiment: from Albuquerque, check into
Fisherman's Wharf Sign in San Francisco through each of the four spoofing
channels; earn points, the Adventurer badge after ten venues, and the
mayorship after four daily check-ins.
"""

import pytest

from repro.attack.spoofing import (
    ApiHookSpoofer,
    BluetoothSpoofer,
    GpsModuleSpoofer,
    ServerApiSpoofer,
    build_emulator_attacker,
)
from repro.device.client_app import LbsnClientApp
from repro.device.emulator import Device
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.api import LbsnApiServer
from repro.lbsn.service import LbsnService
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

ABQ = GeoPoint(35.0844, -106.6504)
WHARF = GeoPoint(37.8080, -122.4177)


def fresh_service():
    service = LbsnService()
    wharf = service.create_venue(
        "Fisherman's Wharf Sign", WHARF, city="San Francisco, CA"
    )
    return service, wharf


def device_channel(service, channel_class):
    user = service.register_user("Attacker")
    device = Device(service.clock, ABQ, gps_seed=4)
    app = LbsnClientApp(service, device.location_api, user.user_id)
    return user, channel_class(device, app)


def api_channel(service):
    user = service.register_user("API Attacker")
    server = LbsnApiServer(service)
    router = Router()
    server.install_routes(router)
    network = Network(seed=2)
    transport = HttpTransport(router, network)
    token = server.tokens.issue(user.user_id)
    return user, ServerApiSpoofer(transport, network.create_egress(), token)


def run_all_channels():
    rows = []
    for label, build in (
        ("1 via GPS APIs (OS hook)", lambda s: device_channel(s, ApiHookSpoofer)),
        ("2a via GPS module (hardware)", lambda s: device_channel(s, GpsModuleSpoofer)),
        ("2b via GPS module (bluetooth sim)", lambda s: device_channel(s, BluetoothSpoofer)),
        ("3 via server APIs", api_channel),
        ("4 via device emulator", lambda s: build_emulator_attacker(s)[::2]),
    ):
        service, wharf = fresh_service()
        _, channel = build(service)
        channel.set_location(WHARF)
        outcome = channel.check_in(wharf.venue_id)
        rows.append(
            f"channel {label:<36} status={outcome.status.value:<8} "
            f"points={outcome.points} mayor={outcome.became_mayor}"
        )
        assert outcome.rewarded, label
    return rows


def run_badge_and_mayor_story():
    service, wharf = fresh_service()
    venues = [wharf] + [
        service.create_venue(
            f"SF Venue {index}",
            destination_point(WHARF, index * 36.0, 2_500.0 + 100.0 * index),
        )
        for index in range(9)
    ]
    user, emulator, channel = build_emulator_attacker(service)
    badges = []
    for venue in venues:
        service.clock.advance(1_800.0)
        channel.set_location(venue.location)
        outcome = channel.check_in(venue.venue_id)
        badges.extend(outcome.new_badges)
    mayor_days = 0
    for _ in range(4):
        service.clock.advance(86_400.0)
        channel.set_location(WHARF)
        if channel.check_in(wharf.venue_id).rewarded:
            mayor_days += 1
    return [
        f"distinct venues checked into: {len(venues)}",
        f"'Adventurer' badge earned: {'Adventurer' in badges}",
        f"daily wharf check-ins accepted: {mayor_days}/4",
        f"mayor of Fisherman's Wharf Sign: {wharf.mayor_id == user.user_id}",
        "(paper: all remote check-ins accepted; badge at 10 venues; "
        "mayor after 4 daily check-ins)",
    ]


def test_e1_all_channels_pass(benchmark, report_out):
    rows = benchmark.pedantic(run_all_channels, rounds=1, iterations=1)
    rows += run_badge_and_mayor_story()
    report_out("E1_spoofing", rows)


def test_e1_emulator_checkin_latency(benchmark):
    """Per-check-in cost through the full emulator + service pipeline."""
    service, _ = fresh_service()
    venues = [
        service.create_venue(
            f"V{index}", destination_point(WHARF, index * 3.6, 500.0 + index)
        )
        for index in range(100)
    ]
    _, _, channel = build_emulator_attacker(service)
    state = {"index": 0}

    def one_checkin():
        venue = venues[state["index"] % len(venues)]
        state["index"] += 1
        service.clock.advance(7_200.0)
        channel.set_location(venue.location)
        return channel.check_in(venue.venue_id)

    result = benchmark(one_checkin)
    assert result is not None
