"""E23 (extension) — durable detection: crash/replay parity and its cost.

The thesis's detector ran over a month-long crawl; losing its
accumulated per-user state to a crash would have meant re-crawling.
repro.durable gives the streaming detector the same insurance a real
deployment would carry: a write-ahead event log, periodic ledger
snapshots, and partitioned workers that can be killed and replayed.
This experiment measures what that insurance costs and proves it pays
out.

Acceptance bars (all asserted):

1. **Three-way crash/replay parity at N=1 and N=4** — a control
   pipeline, a victim whose worker is killed mid-storm by a *seeded*
   fault (`durable.worker`, one fire) and then recovered, and a cold
   replay of the victim's on-disk tree agree digest for digest.
2. **The kill really happened** — exactly one fault fired, the victim
   partition crashed, and recovery replayed a non-trivial WAL suffix.
3. **Snapshots bound recovery** — replayed-suffix length falls
   monotonically as snapshot cadence tightens, at unchanged digests.

Measured (reported, not asserted): cold-replay throughput in events/s,
recovery time as a function of WAL length, and the snapshot cadence
sweep (checkpoints written vs. events replayed at recovery).

Everything runs on the simulated clock; WAL fsyncs are real disk I/O
(batched, `fsync_every=64`).

Environment knobs (CI smoke mode shrinks the first two):

* ``REPRO_E23_SCALE`` — world scale (default 0.0005, ~950 users).
* ``REPRO_E23_CHECKINS`` — check-in storm size (default 300).
* ``REPRO_E23_CURVE`` — comma-separated world-scale multipliers for
  the recovery-time-vs-WAL-length curve (default ``0.5,1.0,2.0``;
  the WAL is dominated by world-build events, so scaling the world is
  what actually stretches the log).
"""

import os
import time

from repro.analysis.detection import DetectorConfig
from repro.durable.worker import DetectorWorker
from repro.obs import LogHub, MetricsRegistry
from repro.workload.durable import (
    DurableConfig,
    run_durable_storm,
    write_durable_tree,
)

SCALE = float(os.environ.get("REPRO_E23_SCALE", "0.0005"))
CHECKINS = int(os.environ.get("REPRO_E23_CHECKINS", "300"))
CURVE = [
    float(mult)
    for mult in os.environ.get("REPRO_E23_CURVE", "0.5,1.0,2.0").split(",")
]

SEED = 42
FAULT_SEED = 1337
DETECTOR_BAR = 100


def _config(**overrides) -> DurableConfig:
    base = dict(
        scale=SCALE,
        seed=SEED,
        fault_seed=FAULT_SEED,
        checkins=CHECKINS,
        detector_min_total_checkins=DETECTOR_BAR,
    )
    base.update(overrides)
    return DurableConfig(**base)


def _timed_recovery(tree, partitions):
    """Recover every shard of a tree; returns (seconds, events, digests)."""
    config = DetectorConfig(min_total_checkins=DETECTOR_BAR)
    started = time.perf_counter()
    replayed = 0
    digests = []
    for partition in range(partitions):
        worker = DetectorWorker(partition, tree, config=config)
        replayed += worker.recover()
        digests.append(worker.digest())
        worker.close()
    return time.perf_counter() - started, replayed, digests


def test_e23_durable(report_out, benchmark, tmp_path):
    metrics = MetricsRegistry()
    log = LogHub(ring_size=65_536, metrics=metrics)
    rows = []

    # Bar 1+2: the storm, at both acceptance partition counts ---------
    storms = {}
    for partitions in (1, 4):
        run_dir = tmp_path / f"storm-n{partitions}"
        run = (
            benchmark.pedantic(
                lambda: run_durable_storm(
                    _config(partitions=4, kill_partition=0),
                    run_dir,
                    metrics=metrics,
                    log=log,
                ),
                rounds=1,
                iterations=1,
            )
            if partitions == 4
            else run_durable_storm(
                _config(partitions=1, kill_partition=0),
                run_dir,
                metrics=metrics,
                log=log,
            )
        )
        storms[partitions] = run
        assert run.parity_ok, (
            f"N={partitions}: control={run.control_combined} "
            f"victim={run.victim_combined} cold={run.cold_combined}"
        )
        assert run.crashed_partitions == [0]
        assert run.recovered_partitions == [0]
        assert run.faults_fired == {"durable.worker": 1}
        assert run.replayed_events > 0
        rows.append(
            f"parity N={partitions}: control==victim==cold over "
            f"{run.events_published} events "
            f"(kill fired once on partition-00, "
            f"{run.replayed_events} events replayed to recover; "
            f"{run.wall_seconds:.2f}s wall)"
        )
    rows.append(
        f"victim WAL (N=4): {storms[4].wal_appended} records, "
        f"{storms[4].wal_bytes} bytes over {storms[4].wal_segments} "
        f"segments, {storms[4].wal_fsyncs} fsyncs (fsync_every=64)"
    )

    # Recovery time vs. WAL length ------------------------------------
    rows.append("recovery-time curve (snapshots off, 1 partition):")
    curve_throughputs = []
    for mult in CURVE:
        tree = tmp_path / f"curve-{mult}"
        report = write_durable_tree(
            _config(partitions=1, scale=SCALE * mult, snapshot_every=0),
            tree,
        )
        # Strip the final checkpoint so recovery replays the whole WAL.
        for snap in (tree / "partition-00" / "snapshots").glob("*.json"):
            snap.unlink()
        seconds, replayed, digests = _timed_recovery(tree, 1)
        assert digests == report.victim_digests  # full-WAL replay parity
        rate = replayed / seconds if seconds > 0 else float("inf")
        curve_throughputs.append(rate)
        rows.append(
            f"  wal={replayed:>6d} events ({report.wal_bytes:>8d} B) "
            f"-> recovery {seconds * 1e3:7.1f} ms ({rate:>9.0f} events/s)"
        )
    rows.append(
        f"cold-replay throughput: {max(curve_throughputs):.0f} events/s peak"
    )

    # Snapshot cadence sweep ------------------------------------------
    rows.append(
        f"snapshot cadence sweep ({CHECKINS} check-ins, 1 partition):"
    )
    suffixes = {}
    for cadence in (0, 200, 100, 50):
        tree = tmp_path / f"cadence-{cadence}"
        report = write_durable_tree(
            _config(partitions=1, snapshot_every=cadence), tree
        )
        # Drop the final checkpoint written by snapshot_all so recovery
        # exercises the *cadence* checkpoints, not the shutdown one.
        snaps = sorted(
            (tree / "partition-00" / "snapshots").glob("*.json")
        )
        if snaps:
            snaps[-1].unlink()
        seconds, replayed, digests = _timed_recovery(tree, 1)
        assert digests == report.victim_digests
        suffixes[cadence] = replayed
        kept = len(snaps) - 1 if snaps else 0
        rows.append(
            f"  every={cadence or 'off':>4}: {kept} cadence checkpoints, "
            f"recovery replayed {replayed:>6d} events "
            f"in {seconds * 1e3:6.1f} ms"
        )
    # Bar 3: tighter cadence never replays more, and beats cadence-off.
    assert suffixes[50] <= suffixes[100] <= suffixes[200] <= suffixes[0]
    assert suffixes[50] < suffixes[0]
    rows.append(
        "cadence bar: replayed suffix shrinks monotonically "
        f"({suffixes[0]} -> {suffixes[200]} -> {suffixes[100]} -> "
        f"{suffixes[50]} events), digests unchanged"
    )

    # Telemetry made it to the shared registry ------------------------
    names = set(metrics.names())
    for family in (
        "repro_wal_appends_total",
        "repro_wal_replayed_events_total",
        "repro_snapshot_writes_total",
        "repro_durable_worker_crashes_total",
        "repro_durable_recoveries_total",
    ):
        assert family in names, family
    crash_records = log.records(event="durable.worker_crash")
    assert crash_records and all(r.trace_id for r in crash_records)
    rows.append(
        f"flight recorder: {len(crash_records)} worker crash(es) logged, "
        "trace-stamped; wal/snapshot/durable metric families registered"
    )

    report_out(
        "E23_durable",
        rows,
        summary={
            "scale": SCALE,
            "checkins": CHECKINS,
            "events_published_n1": storms[1].events_published,
            "events_published_n4": storms[4].events_published,
            "parity_ok_n1": storms[1].parity_ok,
            "parity_ok_n4": storms[4].parity_ok,
            "cold_replay_peak_events_per_s": round(max(curve_throughputs)),
            "replay_suffix_cadence_off": suffixes[0],
            "replay_suffix_cadence_50": suffixes[50],
        },
    )
