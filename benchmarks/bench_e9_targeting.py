"""E9 — §3.4: venue-profile-analysis targeting and the mayorship harvest.

"Around 1000 venues fall into this category" (mayor-only specials with no
mayor); plus the mayorship-denial attack against a victim user.
"""

import pytest

from repro.attack.campaign import CheatingCampaign
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import VenueProfileAnalyzer
from repro.crawler import crawl_full_site
from repro.workload import build_web_stack, build_world


@pytest.fixture(scope="module")
def raid_world():
    world = build_world(scale=0.001, seed=55)
    stack = build_web_stack(world, seed=5)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress() for _ in range(2)]
    )
    return world, database


def test_e9_target_catalogue(raid_world, report_out, benchmark):
    world, database = raid_world
    analyzer = VenueProfileAnalyzer(database)

    def analyze():
        return (
            analyzer.easy_mayor_specials(),
            analyzer.uncontested_mayor_specials(),
            analyzer.no_mayorship_specials(),
            analyzer.suspected_mayor_farmers(min_mayorships=30),
        )

    easy, uncontested, open_specials, farmers = benchmark(analyze)
    rows = [
        f"venues with mayor-only specials and no mayor: {len(easy)} of "
        f"{world.service.store.venue_count()} venues "
        "(paper: 'around 1000' of 5.6M; the simulator plants specials ~50x "
        "more densely than 2010 Foursquare so small worlds still have "
        "targets — the query and its exploitation are what is reproduced)",
        f"mayor-only specials at venues with <=1 visitor: {len(uncontested)}",
        f"specials needing no mayorship: {len(open_specials)}",
        f"suspected mayor farmers (>=30 mayorships): {farmers}",
    ]
    report_out("E9_targets", rows)
    assert easy
    assert world.roster.mayor_farmer.user_id in farmers


def test_e9_harvest_and_denial(raid_world, report_out, benchmark):
    world, database = raid_world
    analyzer = VenueProfileAnalyzer(database)

    def raid():
        service = world.service
        _, _, channel = build_emulator_attacker(service)
        campaign = CheatingCampaign(service.clock, channel)
        targets = analyzer.easy_mayor_specials()[:15]
        harvest = campaign.harvest(targets)

        victim = world.roster.mayor_farmer.user_id
        before = service.mayorship_count(victim)
        victim_venues = analyzer.mayorships_of_victim(victim)[:10]
        denial = campaign.mayorship_denial(victim_venues, days=3)
        after = service.mayorship_count(victim)
        return harvest, denial, before, after

    harvest, denial, before, after = benchmark.pedantic(
        raid, rounds=1, iterations=1
    )
    rows = [
        "mayorship harvest over 15 crawl-selected venues:",
        f"  attempts={harvest.attempts} rewarded={harvest.rewarded} "
        f"detected={harvest.detected}",
        f"  mayorships won={harvest.mayorships_won} "
        f"specials unlocked={len(harvest.specials)}",
        "",
        "mayorship-denial attack on the mayor farmer (10 venues, 3 days):",
        f"  attempts={denial.attempts} detected={denial.detected}",
        f"  victim mayorships: {before} -> {after}",
        f"  crowns captured by attacker: {denial.mayorships_won}",
    ]
    report_out("E9_harvest", rows)
    assert harvest.detected == 0
    assert harvest.mayorships_won >= 12
    assert after <= before - 8
