"""Shared benchmark fixtures.

A single session-scoped world serves the read-only experiments (crawl,
analyses, defense evaluation); mutating experiments (spoofing, tours,
harvests) build their own small worlds so results stay order-independent.

Every experiment writes its paper-style output rows to
``benchmarks/out/E<n>_<name>.txt`` and echoes them to stdout, so
``pytest benchmarks/ --benchmark-only`` regenerates the full set of
figures/tables alongside the timing numbers.

Each write also emits a machine-readable twin,
``benchmarks/out/E<n>_<name>_summary.json``: the headline numbers
(either the bench's explicit ``summary=`` dict or key/value pairs
auto-extracted from the text rows), plus the world scale, seed, and git
revision — the perf trajectory across commits, greppable without
parsing prose.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from pathlib import Path

import pytest

from repro.crawler import crawl_full_site
from repro.workload import build_web_stack, build_world

#: 0.002 of the paper's corpus: ~3,800 users, ~11,200 venues.  Override
#: with REPRO_BENCH_SCALE for bigger runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))
BENCH_SEED = 20_100_801  # the crawl month, 2010-08

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_world():
    """The shared, read-only benchmark world."""
    return build_world(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_stack(bench_world):
    """Its web stack (non-blocking transport: analyses, not throughput)."""
    return build_web_stack(bench_world, seed=3)


@pytest.fixture(scope="session")
def bench_crawl(bench_world, bench_stack):
    """A completed crawl of the shared world."""
    machines = [bench_stack.network.create_egress() for _ in range(3)]
    database, user_stats, venue_stats = crawl_full_site(
        bench_stack.transport, machines
    )
    return database, user_stats, venue_stats


def _git_rev() -> str:
    """The short commit hash, or ``"unknown"`` outside a work tree."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


#: ``label: 123`` / ``label=1.5`` pairs inside a prose row.  Labels are
#: word-ish runs; values may carry thousands separators or a sign.
_HEADLINE_PAIR = re.compile(
    r"([A-Za-z][A-Za-z0-9 _./%()+-]*?)\s*[=:]\s*\+?(-?\d[\d,]*(?:\.\d+)?)"
)


def _headline_from_rows(rows) -> dict:
    """Fallback headline: numeric key/value pairs scraped from the rows.

    Benches with an explicit ``summary=`` dict skip this; for the rest
    this still yields a useful machine-readable digest of the text
    report (first occurrence of each key wins, capped at 24 entries).
    """
    headline: dict = {}
    for row in rows:
        for label, value in _HEADLINE_PAIR.findall(str(row)):
            key = re.sub(r"[^a-z0-9]+", "_", label.strip().lower()).strip("_")
            if not key or key in headline:
                continue
            number = float(value.replace(",", ""))
            headline[key] = int(number) if number.is_integer() else number
            if len(headline) >= 24:
                return headline
    return headline


@pytest.fixture(scope="session")
def report_out():
    """Writer for experiment outputs: report_out(exp_id, rows, summary=...).

    Writes the paper-style text report and its ``*_summary.json`` twin;
    ``summary`` (optional) becomes the JSON ``headline`` verbatim,
    otherwise the headline is auto-extracted from the rows.
    """
    OUT_DIR.mkdir(exist_ok=True)
    git_rev = _git_rev()

    def write(exp_id: str, rows, summary=None):
        text = "\n".join(str(row) for row in rows) + "\n"
        (OUT_DIR / f"{exp_id}.txt").write_text(text)
        doc = {
            "experiment": exp_id,
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "git_rev": git_rev,
            "output": f"{exp_id}.txt",
            "rows": len(rows),
            "headline": dict(summary) if summary else _headline_from_rows(
                rows
            ),
        }
        (OUT_DIR / f"{exp_id}_summary.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"\n===== {exp_id} =====")
        print(text)

    return write


def ascii_scatter(points, width=72, height=24, bbox=None):
    """Render (longitude, latitude) pairs as an ASCII scatter plot.

    Used for the map figures (3.4, 3.5, 4.3, 4.4): the output is a crude
    but recognisable reproduction of the thesis's matplotlib scatters.
    """
    if not points:
        return ["(no points)"]
    lons = [p[0] for p in points]
    lats = [p[1] for p in points]
    if bbox is None:
        west, east = min(lons), max(lons)
        south, north = min(lats), max(lats)
    else:
        south, west, north, east = bbox
    lon_span = max(1e-9, east - west)
    lat_span = max(1e-9, north - south)
    grid = [[" "] * width for _ in range(height)]
    for lon, lat in points:
        col = int((lon - west) / lon_span * (width - 1))
        row = int((north - lat) / lat_span * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(
        f"lon [{west:.2f}, {east:.2f}]  lat [{south:.2f}, {north:.2f}]  "
        f"n={len(points)}"
    )
    return lines
