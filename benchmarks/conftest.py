"""Shared benchmark fixtures.

A single session-scoped world serves the read-only experiments (crawl,
analyses, defense evaluation); mutating experiments (spoofing, tours,
harvests) build their own small worlds so results stay order-independent.

Every experiment writes its paper-style output rows to
``benchmarks/out/E<n>_<name>.txt`` and echoes them to stdout, so
``pytest benchmarks/ --benchmark-only`` regenerates the full set of
figures/tables alongside the timing numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.crawler import crawl_full_site
from repro.workload import build_web_stack, build_world

#: 0.002 of the paper's corpus: ~3,800 users, ~11,200 venues.  Override
#: with REPRO_BENCH_SCALE for bigger runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))
BENCH_SEED = 20_100_801  # the crawl month, 2010-08

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_world():
    """The shared, read-only benchmark world."""
    return build_world(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_stack(bench_world):
    """Its web stack (non-blocking transport: analyses, not throughput)."""
    return build_web_stack(bench_world, seed=3)


@pytest.fixture(scope="session")
def bench_crawl(bench_world, bench_stack):
    """A completed crawl of the shared world."""
    machines = [bench_stack.network.create_egress() for _ in range(3)]
    database, user_stats, venue_stats = crawl_full_site(
        bench_stack.transport, machines
    )
    return database, user_stats, venue_stats


@pytest.fixture(scope="session")
def report_out():
    """Writer for experiment outputs: report_out(exp_id, rows)."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(exp_id: str, rows):
        text = "\n".join(str(row) for row in rows) + "\n"
        (OUT_DIR / f"{exp_id}.txt").write_text(text)
        print(f"\n===== {exp_id} =====")
        print(text)

    return write


def ascii_scatter(points, width=72, height=24, bbox=None):
    """Render (longitude, latitude) pairs as an ASCII scatter plot.

    Used for the map figures (3.4, 3.5, 4.3, 4.4): the output is a crude
    but recognisable reproduction of the thesis's matplotlib scatters.
    """
    if not points:
        return ["(no points)"]
    lons = [p[0] for p in points]
    lats = [p[1] for p in points]
    if bbox is None:
        west, east = min(lons), max(lons)
        south, north = min(lats), max(lats)
    else:
        south, west, north, east = bbox
    lon_span = max(1e-9, east - west)
    lat_span = max(1e-9, north - south)
    grid = [[" "] * width for _ in range(height)]
    for lon, lat in points:
        col = int((lon - west) / lon_span * (width - 1))
        row = int((north - lat) / lat_span * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(
        f"lon [{west:.2f}, {east:.2f}]  lat [{south:.2f}, {north:.2f}]  "
        f"n={len(points)}"
    )
    return lines
