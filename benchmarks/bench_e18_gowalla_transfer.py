"""E18 (extension) — §1.1: "The methods may also apply to other similar LBSs."

Bolts a Gowalla-style item economy onto the same substrate and runs the
UNCHANGED spoofing + scheduler stack against it: the attack transfers with
zero code changes, only the loot differs.  Also checks the ID-clock
account-age inference (§4.3) the analyses share across services.
"""

import pytest

from repro.analysis.growth import growth_model_from_crawl
from repro.attack.scheduler import CheckInScheduler
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.tour import TourPlanner, VenueCatalog
from repro.lbsn.items import ItemRarity, ItemSystem, farm_items
from repro.simnet.clock import SECONDS_PER_DAY
from repro.workload import build_world


def test_e18_item_farming_transfer(report_out, benchmark):
    def raid():
        world = build_world(scale=0.0005, seed=140)
        service = world.service
        system = ItemSystem(service, seed=7, seeded_fraction=0.3)
        _, _, channel = build_emulator_attacker(service)
        scheduler = CheckInScheduler(service.clock)
        planner = TourPlanner(VenueCatalog.from_service(service))
        summary = farm_items(
            system, channel, scheduler, planner, max_targets=25
        )
        return world, summary

    world, summary = benchmark.pedantic(raid, rounds=1, iterations=1)
    by_rarity = {}
    for item in summary["items"]:
        by_rarity[item.rarity.name] = by_rarity.get(item.rarity.name, 0) + 1
    rows = [
        "Gowalla-style item farm with the unchanged Foursquare attack stack:",
        f"  check-in attempts: {summary['attempts']}",
        f"  detections: {summary['detected']}",
        f"  items collected: {len(summary['items'])} "
        f"({', '.join(f'{k}:{v}' for k, v in sorted(by_rarity.items()))})",
        f"  collection score: {summary['score']}",
        "(same spoofing channel, same T = D x 5 min scheduler, different "
        "reward economy — the paper's cross-LBS claim, demonstrated)",
    ]
    report_out("E18_gowalla_transfer", rows)
    assert summary["detected"] == 0
    assert len(summary["items"]) == summary["attempts"]


def test_e18_id_clock_ages(bench_world, bench_crawl, report_out, benchmark):
    database, _, _ = bench_crawl

    def infer():
        service_age = bench_world.horizon_s / SECONDS_PER_DAY
        model = growth_model_from_crawl(database, service_age_days=service_age)
        mega = bench_world.roster.mega_cheater.user_id
        organic_old = min(u.user_id for u in database.users())
        return model, mega, organic_old, service_age

    model, mega, oldest, service_age = benchmark(infer)
    rows = [
        "the §4.3 ID clock (user IDs as registration dates):",
        f"  service age: {service_age:.0f} days, max user id "
        f"{model.max_user_id}",
        f"  oldest account (id {oldest}): "
        f"~{model.registration_age_days(oldest):.0f} days old",
        f"  mega cheater (id {mega}): "
        f"~{model.registration_age_days(mega):.0f} days old "
        "-> 'used the service for less than one year' (§4.3's inference)",
    ]
    report_out("E18_id_clock", rows)
    assert model.account_younger_than(mega, days=365.0)
