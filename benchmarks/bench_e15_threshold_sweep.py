"""E15 (extension) — cheater-code parameter sensitivity.

The thesis reverse-engineers Foursquare's thresholds but never asks how
they were chosen.  This sweep shows the operator's tradeoff: the
super-human-speed threshold trades teleporter detection against false
flags on honest air travelers, and the rapid-fire window trades mall-blitz
detection against false flags on genuine mall-crawlers.
"""

import pytest

from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.geo.regions import US_CITIES
from repro.lbsn.cheater_code import CheaterCode, CheaterCodeConfig
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

#: Cruise speed of a commercial flight, m/s (~550 mph).
FLIGHT_SPEED_MPS = 246.0


def run_traveler(service, legs, speed_mps):
    """An honest traveler: checks in, travels at ``speed_mps``, repeats."""
    user = service.register_user("Traveler")
    flagged = 0
    timestamp = 0.0
    previous = None
    for venue in legs:
        if previous is not None:
            distance = haversine_m(previous.location, venue.location)
            timestamp += distance / speed_mps + 1_800.0  # +boarding etc.
        result = service.check_in(
            user.user_id, venue.venue_id, venue.location, timestamp=timestamp
        )
        if result.checkin.status is not CheckInStatus.VALID:
            flagged += 1
        previous = venue
    return flagged


def run_teleporter(service, legs, interval_s=600.0):
    """A spoofing teleporter: same venues, ten minutes apart."""
    user = service.register_user("Teleporter")
    flagged = 0
    timestamp = 0.0
    for venue in legs:
        timestamp += interval_s
        result = service.check_in(
            user.user_id, venue.venue_id, venue.location, timestamp=timestamp
        )
        if result.checkin.status is not CheckInStatus.VALID:
            flagged += 1
    return flagged


def test_e15_speed_threshold_sweep(report_out, benchmark):
    def sweep():
        results = []
        for max_speed in (30.0, 67.0, 150.0, 300.0, 500.0):
            service = LbsnService()
            service.cheater_code = CheaterCode(
                CheaterCodeConfig(
                    max_speed_mps=max_speed, shadow_ban_threshold=0
                )
            )
            legs = [
                service.create_venue(f"Airport {i}", city.center)
                for i, city in enumerate(US_CITIES[:8])
            ]
            honest_flags = run_traveler(service, legs, FLIGHT_SPEED_MPS)
            cheat_flags = run_teleporter(service, legs)
            results.append((max_speed, cheat_flags, honest_flags, len(legs)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        "max speed (m/s)  teleporter flagged  honest flyer flagged  (of 8)"
    ]
    for max_speed, cheat, honest, n in results:
        rows.append(
            f"{max_speed:>15.0f}  {cheat:>18}  {honest:>20}"
        )
    rows.append(
        "(below flight speed the rule flags genuine air travel — real "
        "Foursquare was notorious for this; far above it, teleporting at "
        "longer hops starts slipping through)"
    )
    report_out("E15_speed_threshold", rows)
    # At the default 67 m/s: teleport hops flagged, but most flights too
    # (short hops with generous ground time stay under the threshold).
    default = next(r for r in results if r[0] == 67.0)
    assert default[1] >= 6
    assert default[2] >= 4
    # At 500 m/s the honest flyer is clean but the cheater mostly escapes
    # slower-looking hops (short city pairs pass).
    fast = next(r for r in results if r[0] == 500.0)
    assert fast[2] == 0
    assert fast[1] <= default[1]


def test_e15_rapid_fire_window_sweep(report_out, benchmark):
    anchor = GeoPoint(40.75, -73.98)

    def mall_user(service, count, gap_s):
        user = service.register_user(f"Mall {gap_s}")
        flagged = 0
        timestamp = 0.0
        for index in range(count):
            venue = service.create_venue(
                f"Shop {gap_s}-{index}",
                destination_point(anchor, index * 31.0, 70.0),
            )
            timestamp += gap_s
            result = service.check_in(
                user.user_id, venue.venue_id, venue.location, timestamp=timestamp
            )
            if result.checkin.status is not CheckInStatus.VALID:
                flagged += 1
        return flagged

    def sweep():
        results = []
        for interval in (30.0, 60.0, 120.0, 300.0):
            service = LbsnService()
            service.cheater_code = CheaterCode(
                CheaterCodeConfig(
                    rapid_fire_interval_s=interval, shadow_ban_threshold=0
                )
            )
            bot_flags = mall_user(service, 10, gap_s=40.0)
            # A genuine mall crawl: a shop every 6 minutes.
            honest_flags = mall_user(service, 10, gap_s=360.0)
            results.append((interval, bot_flags, honest_flags))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["rapid-fire window (s)  40s-bot flagged  6-min shopper flagged"]
    for interval, bot, honest in results:
        rows.append(f"{interval:>21.0f}  {bot:>15}  {honest:>21}")
    rows.append(
        "(the published 60 s window catches the bot and spares the "
        "shopper; stretch it to 5 minutes and genuine mall visits flag)"
    )
    report_out("E15_rapid_fire_window", rows)
    default = next(r for r in results if r[0] == 60.0)
    assert default[1] > 0
    assert default[2] == 0
    widest = next(r for r in results if r[0] == 300.0)
    assert widest[2] > 0
