"""E22 (extension) — §3.2 resilience: the seeded fault storm.

The thesis's crawler ran for days against a live service that rate
limited, banned, and failed it; surviving that weather *was* the
methodology. This experiment turns the weather on deliberately: the
standard storm (**20% fetch failure / 5% bus-subscriber failure**, light
commit contention, injected web 5xx, network latency shaping) blows
through every layer while the four-phase chaos workload
(:func:`repro.workload.chaos.run_chaos`) measures what survives.

Acceptance bars (all asserted):

1. **Determinism** — replaying the same seeds reproduces a
   byte-identical fault sequence digest *and* end-state digest.
2. **No lost committed check-ins** — every check-in in the storm run
   lands (retries recover all injected commit contention; zero retry
   budgets exhausted).
3. **Fault/no-fault parity** — the committed end state (rows, pipeline
   counters, ledger suspects) of the faulted run equals the fault-free
   control run's, digest for digest.
4. **The frontier drains** — the crawl completes (no abort) under the
   20% fetch storm, with circuit breakers and simulated-time backoff.
5. **Breaker lifecycle** — opens at its threshold, short-circuits,
   half-opens on schedule, re-opens on a probe failure, closes on a
   probe success.
6. **Observability** — injected faults and recoveries are visible in
   the metrics registry and the JSONL log ring, trace ids attached;
   ``/metrics`` and ``/debug/*`` stay correct while the public surface
   serves injected 5xx.

Everything runs on the simulated clock — zero wall-clock sleeps; the
whole storm finishes in interactive time.

Environment knobs (CI smoke mode shrinks the first two):

* ``REPRO_E22_SCALE`` — world scale (default 0.0005, ~950 users).
* ``REPRO_E22_CHECKINS`` — check-in storm size (default 300).
* ``REPRO_E22_FETCH_FAILURE`` — crawler fetch failure rate (default 0.2).
* ``REPRO_E22_SUBSCRIBER_FAILURE`` — victim-subscriber failure rate
  (default 0.05).
"""

import os

from repro.obs import LogHub, MetricsRegistry
from repro.workload.chaos import ChaosConfig, run_chaos

SCALE = float(os.environ.get("REPRO_E22_SCALE", "0.0005"))
CHECKINS = int(os.environ.get("REPRO_E22_CHECKINS", "300"))
FETCH_FAILURE = float(os.environ.get("REPRO_E22_FETCH_FAILURE", "0.2"))
SUBSCRIBER_FAILURE = float(
    os.environ.get("REPRO_E22_SUBSCRIBER_FAILURE", "0.05")
)

SEED = 42
FAULT_SEED = 1337


def _config(**overrides) -> ChaosConfig:
    base = dict(
        scale=SCALE,
        seed=SEED,
        fault_seed=FAULT_SEED,
        checkins=CHECKINS,
        fetch_failure=FETCH_FAILURE,
        subscriber_failure=SUBSCRIBER_FAILURE,
    )
    base.update(overrides)
    return ChaosConfig(**base)


def test_e22_fault_storm(report_out, benchmark):
    """One storm, one replay, one fault-free control; all bars asserted."""
    metrics = MetricsRegistry()
    log = LogHub(ring_size=65_536, metrics=metrics)

    storm = benchmark.pedantic(
        lambda: run_chaos(_config(), metrics=metrics, log=log),
        rounds=1,
        iterations=1,
    )
    replay = run_chaos(_config())
    clean = run_chaos(_config(faults_enabled=False))

    # 1. Determinism.
    assert storm.fault_sequence_digest == replay.fault_sequence_digest
    assert storm.committed_state_digest == replay.committed_state_digest

    # 2. No lost committed check-ins.
    assert storm.checkins_returned == storm.checkins_attempted == CHECKINS
    assert storm.commit_exhausted == 0
    assert storm.commit_retries > 0  # the storm really bit

    # 3. Fault/no-fault parity.
    assert storm.committed_state_digest == clean.committed_state_digest
    assert storm.ledger_suspects == clean.ledger_suspects

    # 4. The frontier drains under 20% fetch failure.
    assert not storm.crawl_aborted
    assert storm.crawl.hits > 0
    assert storm.faults_fired.get("crawler.fetch", 0) > 0

    # 5. Breaker lifecycle.
    assert storm.breaker_short_circuited
    assert storm.breaker_half_opened
    assert storm.breaker_reopened_on_probe_failure
    assert storm.breaker_closed_after_probe

    # 6. Observability: metrics + flight recorder + exempt routes.
    names = set(metrics.names())
    assert "repro_faults_injected_total" in names
    assert "repro_retry_recoveries_total" in names
    assert "repro_breaker_transitions_total" in names
    fault_records = log.records(event="fault.injected")
    assert fault_records
    commit_traced = [
        r
        for r in fault_records
        if r.fields["point"] == "store.commit" and r.trace_id
    ]
    assert commit_traced
    assert storm.metrics_route_ok and storm.debug_vars_route_ok
    assert storm.debug_logs_route_ok

    total_fired = sum(storm.faults_fired.values())
    injected_5xx = sum(
        count
        for status, count in storm.web_statuses.items()
        if status >= 500
    )
    rows = [
        f"world: scale {storm.config.scale} "
        f"(~{storm.crawl.hits} users crawled), seed {SEED}, "
        f"fault seed {FAULT_SEED}",
        f"storm: {FETCH_FAILURE:.0%} fetch failure, "
        f"{SUBSCRIBER_FAILURE:.0%} subscriber failure, "
        f"{storm.config.commit_failure:.0%} commit contention, "
        f"{storm.config.web_failure:.0%} web 5xx; "
        f"{total_fired} faults fired",
        f"crawl under fire: {storm.crawl.hits} hits / "
        f"{storm.crawl.misses} misses / {storm.crawl.failures} residual "
        f"failures ({storm.crawl.transient_failures} transient); "
        f"aborted={storm.crawl_aborted}; "
        f"breaker opens={storm.crawler_breaker_opens}",
        f"check-in storm: {storm.checkins_returned}/"
        f"{storm.checkins_attempted} committed, "
        f"{storm.commit_retries} retries, "
        f"{storm.commit_exhausted} exhausted (bar: 0)",
        f"bus isolation: victim saw {storm.victim_delivered} events, "
        f"absorbed {storm.victim_errors} injected errors; "
        f"ledger suspects {storm.ledger_suspects} "
        f"(== fault-free run: {storm.ledger_suspects == clean.ledger_suspects})",
        f"breaker drill: opened after "
        f"{storm.breaker_failures_to_open} failures, "
        f"short-circuited={storm.breaker_short_circuited}, "
        f"half-opened={storm.breaker_half_opened}, "
        f"reopened-on-probe-failure={storm.breaker_reopened_on_probe_failure}, "
        f"closed-after-probe={storm.breaker_closed_after_probe}",
        f"web probe: {storm.web_statuses.get(200, 0)} ok / "
        f"{injected_5xx} injected 5xx over "
        f"{sum(storm.web_statuses.values())} requests; "
        f"/metrics ok={storm.metrics_route_ok}, "
        f"/debug/vars ok={storm.debug_vars_route_ok}, "
        f"/debug/logs ok={storm.debug_logs_route_ok}",
        f"determinism: replay fault digest identical="
        f"{storm.fault_sequence_digest == replay.fault_sequence_digest}, "
        f"replay state digest identical="
        f"{storm.committed_state_digest == replay.committed_state_digest}",
        "parity: faulted committed-state digest == fault-free digest: "
        + str(
            storm.committed_state_digest == clean.committed_state_digest
        ),
        f"fault sequence digest: {storm.fault_sequence_digest[:16]}…",
        f"committed state digest: {storm.committed_state_digest[:16]}…",
        f"flight recorder: {log.emitted} records, "
        f"{len(fault_records)} fault.injected "
        f"({len(commit_traced)} commit faults trace-stamped)",
        f"wall time (simulated clocks only): {storm.wall_seconds:.2f} s "
        f"storm / {clean.wall_seconds:.2f} s control",
    ]
    report_out(
        "E22_fault_storm",
        rows,
        summary={
            "scale": SCALE,
            "checkins": CHECKINS,
            "injected_5xx": injected_5xx,
            "replay_digest_identical": storm.fault_sequence_digest
            == replay.fault_sequence_digest,
            "state_parity_with_fault_free": storm.committed_state_digest
            == clean.committed_state_digest,
            "log_records": log.emitted,
            "storm_wall_seconds": round(storm.wall_seconds, 3),
        },
    )
