"""E19 (extension) — §4.3 + Ch. 5: the streaming detection pipeline.

Three measurements on the ``repro.stream`` subsystem:

1. **Bus fan-out throughput** — synchronous publish to 4 subscribers must
   sustain >= 50,000 events/s with zero drops (the acceptance bar for
   running the ledger inline with the check-in pipeline).
2. **Backpressure accounting** — a background subscriber under ``BLOCK``
   loses nothing; under ``DROP_OLDEST`` every event is accounted for
   (``delivered + dropped == published``) and the drop counter is exact.
3. **Online/offline parity** — a full seeded world streamed through the
   live :class:`SuspicionLedger` flags >= 90% of the users the offline
   :class:`CheaterDetector` flags on a crawl of the *same* world with the
   *same* :class:`DetectorConfig`.
"""

import time

from repro.analysis.detection import CheaterDetector, DetectorConfig
from repro.crawler import crawl_full_site
from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.stream import (
    BackpressurePolicy,
    CheckInAccepted,
    EventBus,
    SuspicionLedger,
)
from repro.workload import build_web_stack, build_world

from conftest import BENCH_SCALE, BENCH_SEED

SOMEWHERE = GeoPoint(40.8136, -96.7026)  # Lincoln, NE

FANOUT_EVENTS = 100_000
FANOUT_SUBSCRIBERS = 4
THROUGHPUT_FLOOR = 50_000  # events/s, the acceptance bar


def _event(i: int) -> CheckInAccepted:
    return CheckInAccepted(
        seq=-1,
        timestamp=float(i),
        user_id=i % 997,
        venue_id=i % 4999,
        venue_location=SOMEWHERE,
        reported_location=SOMEWHERE,
    )


def test_e19_bus_fanout_throughput(report_out, benchmark):
    """Sync fan-out to 4 subscribers: >= 50k events/s, zero drops."""
    events = [_event(i) for i in range(FANOUT_EVENTS)]

    def sink(event):
        pass

    def fan_out():
        bus = EventBus()
        for k in range(FANOUT_SUBSCRIBERS):
            bus.subscribe(f"sink-{k}", sink)
        start = time.perf_counter()
        for event in events:
            event.seq = -1  # re-arm for repeated benchmark rounds
            bus.publish(event)
        elapsed = time.perf_counter() - start
        stats = [bus.stats_of(f"sink-{k}") for k in range(FANOUT_SUBSCRIBERS)]
        bus.close()
        return elapsed, stats

    elapsed, stats = benchmark.pedantic(fan_out, rounds=3, iterations=1)
    rate = FANOUT_EVENTS / elapsed
    rows = [
        f"published {FANOUT_EVENTS} events to {FANOUT_SUBSCRIBERS} "
        f"synchronous subscribers in {elapsed:.3f} s",
        f"fan-out throughput: {rate:,.0f} events/s "
        f"({rate * FANOUT_SUBSCRIBERS:,.0f} deliveries/s)",
        "per-subscriber: "
        + ", ".join(
            f"delivered={s.delivered} dropped={s.dropped}" for s in stats
        ),
    ]
    report_out("E19_bus_throughput", rows)
    for s in stats:
        assert s.delivered == FANOUT_EVENTS
        assert s.dropped == 0
        assert s.errors == 0
    assert rate >= THROUGHPUT_FLOOR, f"{rate:,.0f} events/s < 50k floor"


def test_e19_backpressure_accounting(report_out, benchmark):
    """BLOCK loses nothing; DROP_OLDEST accounts for every event."""
    total = 5_000
    rows = []

    # BLOCK: a slow consumer behind a tiny queue — the producer waits,
    # nothing is lost.
    def block_run():
        seen = []
        bus = EventBus()
        bus.subscribe(
            "slow-block",
            lambda e: seen.append(e.seq),
            background=True,
            queue_size=64,
            policy=BackpressurePolicy.BLOCK,
        )
        for i in range(total):
            bus.publish(_event(i))
        drained = bus.drain(timeout=30.0)
        stats = bus.stats_of("slow-block")
        bus.close()
        return seen, stats, drained

    seen_block, block_stats, drained = benchmark.pedantic(
        block_run, rounds=1, iterations=1
    )
    assert drained
    rows.append(
        f"BLOCK      queue=64: published={total} "
        f"delivered={block_stats.delivered} dropped={block_stats.dropped}"
    )
    assert block_stats.delivered == total
    assert block_stats.dropped == 0
    assert seen_block == sorted(seen_block)  # order preserved

    # DROP_OLDEST: a stalled consumer behind a tiny queue — old events are
    # evicted, and the counters account for every single publish.
    import threading

    gate = threading.Event()
    bus = EventBus()
    bus.subscribe(
        "stalled-drop",
        lambda e: gate.wait(0.001),
        background=True,
        queue_size=32,
        policy=BackpressurePolicy.DROP_OLDEST,
    )
    for i in range(total):
        bus.publish(_event(i))
    gate.set()
    assert bus.drain(timeout=30.0)
    drop_stats = bus.stats_of("stalled-drop")
    bus.close()
    rows.append(
        f"DROP_OLDEST queue=32: published={total} "
        f"delivered={drop_stats.delivered} dropped={drop_stats.dropped} "
        f"(accounted: {drop_stats.delivered + drop_stats.dropped})"
    )
    assert drop_stats.dropped > 0
    assert drop_stats.delivered + drop_stats.dropped == total
    report_out("E19_backpressure", rows)


def test_e19_online_offline_parity(report_out, benchmark):
    """The live ledger flags >= 90% of the offline detector's suspects."""
    config = DetectorConfig(min_total_checkins=150)

    def stream_world():
        bus = EventBus()
        ledger = SuspicionLedger(config=config).attach(bus)
        service = LbsnService(event_bus=bus)
        start = time.perf_counter()
        world = build_world(
            scale=BENCH_SCALE, seed=BENCH_SEED, service=service
        )
        elapsed = time.perf_counter() - start
        return world, bus, ledger, elapsed

    world, bus, ledger, elapsed = benchmark.pedantic(
        stream_world, rounds=1, iterations=1
    )
    live_rate = ledger.events_processed / elapsed

    stack = build_web_stack(world, seed=7)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress()]
    )
    offline = CheaterDetector(database, config).find_suspects()
    offline_ids = {r.user_id for r in offline}
    online_ids = set(ledger.suspect_ids())
    overlap = offline_ids & online_ids
    parity = len(overlap) / len(offline_ids) if offline_ids else 1.0

    planted = {world.roster.mega_cheater.user_id} | {
        c.user_id for c in world.roster.caught_cheaters
    }
    rows = [
        f"world scale={BENCH_SCALE} seed={BENCH_SEED}: "
        f"{ledger.events_processed} check-in events through the bus "
        f"({live_rate:,.0f} events/s incl. full service pipeline)",
        f"offline suspects (crawl + CheaterDetector): {len(offline_ids)}",
        f"online suspects (live SuspicionLedger):     {len(online_ids)}",
        f"overlap: {len(overlap)}/{len(offline_ids)} "
        f"-> parity {parity:.0%} (bar: 90%)",
        f"planted cheaters flagged online: "
        f"{len(planted & online_ids)}/{len(planted)}",
        "(same DetectorConfig on both sides: the ledger is the offline "
        "Chapter-4 detector recomputed incrementally at check-in time)",
    ]
    report_out("E19_stream_detect", rows)
    assert bus.published > 0
    assert offline_ids, "bench world must contain offline suspects"
    assert parity >= 0.9
    assert world.roster.mega_cheater.user_id in online_ids
