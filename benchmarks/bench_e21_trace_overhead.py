"""E21 (extension) — the trace + structured-log tax on the check-in path.

E20 priced the metrics layer; this experiment prices the *rest* of the
observability stack added on top of it: per-check-in
:class:`~repro.obs.context.TraceContext` minting, contextvar propagation,
structured ``checkin`` / ``store.commit`` log records into the
:class:`~repro.obs.log.LogHub` ring, and trace-id stamping on every
published stream event.

Both sides of the comparison carry a :class:`MetricsRegistry`, so the
measured delta is purely the logging + tracing increment — the honest
number an operator weighs when turning on the flight recorder in
production.  The skeleton is E20's (interleaved rounds, GC paused over
the timed region), but the increment under test is single-digit
microseconds per check-in — an order of magnitude below the scheduler
noise of a shared single-vCPU runner — so the estimator is sturdier:

* Each round runs in **ABBA order** (base, traced, traced, base), so
  every traced run has a temporally adjacent base run.
* Every run is timed in **sectors** (batches of consecutive check-ins),
  and the overhead is the **median over per-sector adjacent-pair
  ratios** ``traced[k] / base[k]``.  The two failure modes of a shared
  VM are both neutralised: *sustained* slowdowns (host frequency /
  steal periods lasting seconds) are multiplicative and cancel inside
  an adjacent pair, while *spikes* (a preemption landing on one ~25 ms
  sector) poison single ratios that the median discards.  (Sector-wise
  pairing is essential: per-check-in cost grows with history —
  mayorship and badge scans — so a sector is only comparable to the
  *same* sector of the paired run.)
* Only **steady-state sectors** (the second half of each run) enter the
  median.  The first sectors run against near-empty venue history, so
  their check-ins are artificially cheap — a denominator no live
  service has.  By mid-run every venue carries a realistic 60-day
  mayorship window and the per-check-in cost has flattened; that is the
  regime an operator's 5% budget refers to.
* Acceptance bar: **< 5% median overhead**.

Environment knobs (CI smoke mode uses the first and last):

* ``REPRO_E21_CHECKINS`` — check-ins per round (default 4000, matching
  E20 so the per-check-in baseline carries the same mayorship/badge
  history cost — a shorter run would *flatter the numerator* by
  cheapening the denominator).
* ``REPRO_E21_ROUNDS`` — ABBA rounds, i.e. 2 runs per side per round
  (default 8 → 16 runs per side, 256 sector pairs).
* ``REPRO_E21_MAX_OVERHEAD`` — acceptance bar (default 0.05).  Shared CI
  runners are noisy; the smoke job loosens this rather than asserting a
  tight bound on unreliable hardware.
"""

import gc
import os
import statistics
import time

from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.obs import LogHub, MetricsRegistry

CHECKINS = int(os.environ.get("REPRO_E21_CHECKINS", "4000"))
ROUNDS = int(os.environ.get("REPRO_E21_ROUNDS", "8"))
MAX_OVERHEAD = float(os.environ.get("REPRO_E21_MAX_OVERHEAD", "0.05"))

#: Check-ins per timed sector (~25 ms each at seed throughput).
SECTOR = 250

USERS = 10
VENUES_PER_USER = 3  # rotated so the same-venue gap beats the 1-hour rule
BASE_TS = 1_280_000_000.0  # 2010-07, the thesis's crawl summer
CHECKIN_SPACING_S = 1_800.0  # one check-in per user per half hour


def _build_service(metrics, log):
    """The E20 micro-city, optionally with the log/trace layer attached."""
    service = LbsnService(metrics=metrics, log=log)
    venues = []
    for i in range(USERS):
        service.register_user(f"bench-user-{i}")
        cluster = []
        for j in range(VENUES_PER_USER):
            cluster.append(
                service.create_venue(
                    f"bench-venue-{i}-{j}",
                    GeoPoint(40.0 + i * 0.05 + j * 0.003, -96.0),
                )
            )
        venues.append(cluster)
    return service, venues


def _run_checkins(service, venues):
    """Drive the deterministic workload; returns per-sector wall times."""
    gc.collect()
    gc.disable()
    sectors = []
    try:
        for sector_start in range(0, CHECKINS, SECTOR):
            start = time.perf_counter()
            for i in range(sector_start, min(sector_start + SECTOR, CHECKINS)):
                user_index = i % USERS
                round_index = i // USERS
                venue = venues[user_index][round_index % VENUES_PER_USER]
                service.check_in(
                    user_id=user_index + 1,
                    venue_id=venue.venue_id,
                    reported_location=venue.location,
                    timestamp=BASE_TS
                    + round_index * CHECKIN_SPACING_S
                    + user_index,
                )
            sectors.append(time.perf_counter() - start)
        return sectors
    finally:
        gc.enable()


def _clean_lap(runs):
    """Sum of per-sector minima across runs — the reconstructed clean lap."""
    return sum(min(times) for times in zip(*runs))


def test_e21_trace_overhead(report_out, benchmark):
    """Trace-minting + structured logging stays within 5% of metrics-only.

    ``ROUNDS`` ABBA-ordered (metrics-only, metrics+log+trace) rounds;
    the overhead is the median over all per-sector adjacent-pair time
    ratios, which survives both spike and sustained-slowdown noise on
    shared runners (see module docstring).
    """

    def one_side(log):
        service, venues = _build_service(metrics=MetricsRegistry(), log=log)
        return _run_checkins(service, venues), service

    def compare():
        base_runs, traced_runs, sector_ratios = [], [], []
        hub = None
        service = None
        # Warmup: both code paths once, untimed, so allocator/bytecode
        # warmup lands on neither measured side.
        one_side(None)
        one_side(LogHub(ring_size=8192))
        for _ in range(ROUNDS):
            base_1, _ = one_side(None)
            hub = LogHub(ring_size=8192)
            traced_1, service = one_side(hub)
            traced_2, _ = one_side(LogHub(ring_size=8192))
            base_2, _ = one_side(None)
            base_runs += [base_1, base_2]
            traced_runs += [traced_1, traced_2]
            # Adjacent pairs: (base_1, traced_1) and (traced_2, base_2);
            # only steady-state sectors (second half) enter the median.
            warm = len(base_1) // 2
            for base_run, traced_run in (
                (base_1, traced_1),
                (base_2, traced_2),
            ):
                sector_ratios.extend(
                    traced_s / base_s
                    for base_s, traced_s in zip(
                        base_run[warm:], traced_run[warm:]
                    )
                )
        return base_runs, traced_runs, sector_ratios, hub, service

    base_runs, traced_runs, sector_ratios, hub, service = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    clean_base = _clean_lap(base_runs)
    clean_traced = _clean_lap(traced_runs)
    base_rate = CHECKINS / clean_base
    traced_rate = CHECKINS / clean_traced
    overhead = statistics.median(sector_ratios) - 1.0
    clean_lap_ratio = clean_traced / clean_base - 1.0
    quartiles = statistics.quantiles(sector_ratios, n=4)

    # Every check-in of the last traced round minted a trace and logged.
    ring = hub.records(logger="lbsn.service", event="checkin")
    traced = sum(1 for record in ring if record.trace_id)
    span_traces = sum(
        1 for span in service.tracer.recent_slow() if span.trace_id
    )
    rows = [
        f"workload: {CHECKINS} check-ins across {USERS} users "
        f"x {VENUES_PER_USER} venues, {ROUNDS} ABBA rounds, "
        f"sectors of {SECTOR}",
        f"metrics-only service:      {base_rate:,.0f} check-ins/s "
        f"(clean lap {clean_base:.3f} s over {len(base_runs)} runs)",
        f"metrics+log+trace service: {traced_rate:,.0f} check-ins/s "
        f"(clean lap {clean_traced:.3f} s over {len(traced_runs)} runs)",
        f"steady-state sector-pair ratios: n={len(sector_ratios)}, "
        "quartiles "
        + "/".join(f"{q:.3f}" for q in quartiles)
        + f"; clean-lap ratio {clean_lap_ratio:+.1%} (diagnostic)",
        f"trace+log overhead (median of sector-pair ratios): "
        f"{overhead:+.1%} (bar: < {MAX_OVERHEAD:.0%})",
        f"log records emitted: {hub.emitted} "
        f"(ring holds {len(hub)}, dropped {hub.dropped})",
        f"checkin records carrying a trace_id: {traced}/{len(ring)}",
        f"slow spans carrying a trace_id: {span_traces}",
    ]
    report_out(
        "E21_trace_overhead",
        rows,
        summary={
            "checkins": CHECKINS,
            "rounds": ROUNDS,
            "metrics_only_checkins_per_s": round(base_rate),
            "traced_checkins_per_s": round(traced_rate),
            "overhead_median_sector_ratio": round(overhead, 4),
            "max_overhead_bar": MAX_OVERHEAD,
            "log_records_emitted": hub.emitted,
            "trace_stamped_checkin_records": traced,
        },
    )

    assert hub.emitted >= CHECKINS  # one "checkin" record per check-in
    assert ring, "ring retained no checkin records"
    assert traced == len(ring), "a checkin record lost its trace_id"
    assert overhead < MAX_OVERHEAD, (
        f"trace+log median overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} bar"
    )
