"""E24 (extension) — the profiler's own tax, and the health surface.

Three claims, one experiment:

1. **Overhead** — running the sampling profiler at its default rate
   (97 Hz) while the check-in hot path executes costs **< 5%**
   throughput, measured with the E20 methodology: interleaved
   (bare, profiled) rounds, GC paused in the timed region, overhead =
   median of the per-pair time ratios.
2. **Attribution** — a planted hot function with a distinctive name
   burns CPU on a worker thread; the profiler must name it in the top-3
   of the hotspot table (ranked by self samples) and in the collapsed
   export.
3. **Health parity** — ``/debug/health`` served over the simnet stack
   returns exactly the health score an offline
   :class:`~repro.obs.slo.SloEngine` computes from the same registry
   state (the acceptance bar ISSUE 8 pins).

Environment knobs (CI smoke mode uses the first and last):

* ``REPRO_E24_CHECKINS`` — check-ins per round (default 4000).
* ``REPRO_E24_ROUNDS`` — interleaved rounds per side (default 5).
* ``REPRO_E24_MAX_OVERHEAD`` — acceptance bar (default 0.05).  Shared
  CI runners are noisy; the smoke job loosens this rather than
  asserting a tight bound on unreliable hardware.
"""

import gc
import json
import os
import statistics
import threading
import time

from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import LbsnWebServer
from repro.obs import (
    MetricsRegistry,
    SamplingProfiler,
    SloEngine,
    default_slos,
)
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

CHECKINS = int(os.environ.get("REPRO_E24_CHECKINS", "4000"))
ROUNDS = int(os.environ.get("REPRO_E24_ROUNDS", "5"))
MAX_OVERHEAD = float(os.environ.get("REPRO_E24_MAX_OVERHEAD", "0.05"))

USERS = 10
VENUES_PER_USER = 3
BASE_TS = 1_280_000_000.0  # 2010-07, the thesis's crawl summer
CHECKIN_SPACING_S = 1_800.0
ATTRIBUTION_SAMPLES = 300


def _build_service(metrics):
    """The E20 tiny city: every check-in lands on the valid/reward path."""
    service = LbsnService(metrics=metrics)
    venues = []
    for i in range(USERS):
        service.register_user(f"bench-user-{i}")
        cluster = []
        for j in range(VENUES_PER_USER):
            cluster.append(
                service.create_venue(
                    f"bench-venue-{i}-{j}",
                    GeoPoint(40.0 + i * 0.05 + j * 0.003, -96.0),
                )
            )
        venues.append(cluster)
    return service, venues


def _run_checkins(service, venues) -> float:
    """The timed region (GC paused; identical on both sides)."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for i in range(CHECKINS):
            user_index = i % USERS
            round_index = i // USERS
            venue = venues[user_index][round_index % VENUES_PER_USER]
            service.check_in(
                user_id=user_index + 1,
                venue_id=venue.venue_id,
                reported_location=venue.location,
                timestamp=BASE_TS
                + round_index * CHECKIN_SPACING_S
                + user_index,
            )
        return time.perf_counter() - start
    finally:
        gc.enable()


def _e24_planted_hotspot(release: threading.Event) -> int:
    """The needle the profiler must find: a pure-CPU spin, no builtin
    frames between the loop and the arithmetic, so samples leaf here."""
    acc = 1
    while not release.is_set():
        for i in range(4096):
            acc = (acc * 31 + i) % 1_000_003
    return acc


def test_e24_profiler_overhead_and_health(report_out, benchmark):
    # -- 1. overhead: interleaved bare/profiled pairs -----------------
    def compare():
        pair_ratios, bare_times, prof_times = [], [], []
        for _ in range(ROUNDS):
            service, venues = _build_service(metrics=None)
            bare_s = _run_checkins(service, venues)
            service, venues = _build_service(metrics=None)
            profiler = SamplingProfiler()  # default 97 Hz
            profiler.start()
            try:
                prof_s = _run_checkins(service, venues)
            finally:
                profiler.stop()
            bare_times.append(bare_s)
            prof_times.append(prof_s)
            pair_ratios.append(prof_s / bare_s)
        return pair_ratios, bare_times, prof_times, profiler

    pair_ratios, bare_times, prof_times, profiler = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    bare_rate = CHECKINS / min(bare_times)
    prof_rate = CHECKINS / min(prof_times)
    overhead = statistics.median(pair_ratios) - 1.0
    last_round = profiler.snapshot()

    # -- 2. attribution: the planted hot function ---------------------
    hotspot_profiler = SamplingProfiler()
    release = threading.Event()
    ready = threading.Event()

    def burn():
        ready.set()
        _e24_planted_hotspot(release)

    worker = threading.Thread(target=burn, name="e24-hot", daemon=True)
    worker.start()
    assert ready.wait(timeout=10.0)
    try:
        for _ in range(ATTRIBUTION_SAMPLES):
            hotspot_profiler.sample_once()
    finally:
        release.set()
        worker.join(timeout=10.0)
    snapshot = hotspot_profiler.snapshot()
    top3 = snapshot.top(3)
    top3_names = [name for name, _, _ in top3]
    planted_rank = next(
        (
            rank
            for rank, name in enumerate(top3_names, start=1)
            if "_e24_planted_hotspot" in name
        ),
        None,
    )
    collapsed = snapshot.collapsed()

    # -- 3. health parity: /debug/health vs the offline engine --------
    registry = MetricsRegistry()
    service, venues = _build_service(metrics=registry)
    for i in range(min(CHECKINS, 500)):
        user_index = i % USERS
        round_index = i // USERS
        venue = venues[user_index][round_index % VENUES_PER_USER]
        service.check_in(
            user_id=user_index + 1,
            venue_id=venue.venue_id,
            reported_location=venue.location,
            timestamp=BASE_TS + round_index * CHECKIN_SPACING_S + user_index,
        )
    engine = SloEngine(registry, default_slos(), metrics=registry)
    engine.evaluate()
    offline = engine.evaluate().health_dict()

    webserver = LbsnWebServer(service, slo=engine)
    router = Router()
    webserver.install_routes(router)
    network = Network(seed=0)
    transport = HttpTransport(router, network)
    response = transport.get("/debug/health", network.create_egress())
    assert response.ok
    served = json.loads(response.body)
    parity = served["health_score"] == offline["health_score"]

    rows = [
        f"workload: {CHECKINS} check-ins across {USERS} users "
        f"x {VENUES_PER_USER} venues, {ROUNDS} paired rounds, "
        f"profiler at default {profiler.hz:g} Hz",
        f"bare service:     {bare_rate:,.0f} check-ins/s "
        f"(best {min(bare_times):.3f} s)",
        f"profiled service: {prof_rate:,.0f} check-ins/s "
        f"(best {min(prof_times):.3f} s)",
        "per-pair ratios: "
        + ", ".join(f"{ratio:.3f}" for ratio in pair_ratios),
        f"profiler overhead (median of pair ratios): {overhead:+.1%} "
        f"(bar: < {MAX_OVERHEAD:.0%})",
        f"last profiled round: {last_round.samples} sampling passes, "
        f"{len(last_round.stacks)} unique stacks, "
        f"{last_round.dropped} dropped",
        f"planted-hotspot attribution: {ATTRIBUTION_SAMPLES} passes, "
        f"top-3 by self samples: {top3_names}",
        f"planted function rank: {planted_rank} "
        f"(self={top3[planted_rank - 1][1] if planted_rank else 0} samples)",
        f"collapsed export: {len(collapsed.splitlines())} folded stacks, "
        f"planted frame present: {'_e24_planted_hotspot' in collapsed}",
        f"health parity: /debug/health {served['health_score']:.4f} == "
        f"offline {offline['health_score']:.4f}: {parity} "
        f"(worst: {served['worst_objective']})",
    ]
    report_out(
        "E24_profiler_slo",
        rows,
        summary={
            "checkins": CHECKINS,
            "rounds": ROUNDS,
            "profiler_hz": profiler.hz,
            "bare_checkins_per_s": round(bare_rate),
            "profiled_checkins_per_s": round(prof_rate),
            "overhead_median_pair_ratio": round(overhead, 4),
            "max_overhead_bar": MAX_OVERHEAD,
            "planted_hotspot_rank": planted_rank,
            "health_score": served["health_score"],
            "health_parity": parity,
        },
    )

    assert last_round.samples > 0, "profiler never sampled the workload"
    assert planted_rank is not None and planted_rank <= 3, (
        f"planted hot function missing from top-3: {top3_names}"
    )
    assert "_e24_planted_hotspot" in collapsed
    assert parity, (
        f"/debug/health {served['health_score']} != "
        f"offline {offline['health_score']}"
    )
    assert overhead < MAX_OVERHEAD, (
        f"profiler overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} bar"
    )
