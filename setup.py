"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path via
``--no-use-pep517`` when PEP 660 wheels cannot be built offline.
"""

from setuptools import setup

setup()
